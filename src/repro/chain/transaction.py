"""Typed, signable transactions.

A transaction is the unit every higher layer reduces to: a provenance
record anchor, a contract invocation, a cross-chain transfer leg — all are
transactions of a particular :class:`TxKind` with a structured payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..crypto.hashing import DOMAIN_TX, hash_canonical
from ..crypto.signatures import KeyPair, PublicKey, verify
from ..errors import InvalidTransaction


class TxKind(str, Enum):
    """Payload discriminator.

    The set is open-ended in spirit; these cover every use in the library.
    """

    TRANSFER = "transfer"             # value transfer between accounts
    DATA = "data"                     # opaque data blob (on-chain storage)
    PROVENANCE = "provenance"         # a provenance record or batch anchor
    CONTRACT_DEPLOY = "contract_deploy"
    CONTRACT_CALL = "contract_call"
    CROSS_CHAIN = "cross_chain"       # bridge / relay / notary messages
    GOVERNANCE = "governance"         # validator-set & policy changes


@dataclass
class Transaction:
    """An immutable-once-signed ledger transaction.

    ``payload`` must be canonically encodable (see
    :mod:`repro.serialization`); its schema is defined by ``kind``.
    """

    sender: str
    kind: TxKind
    payload: Mapping[str, Any]
    nonce: int = 0
    timestamp: int = 0
    fee: int = 0
    signature: bytes | None = field(default=None, compare=False)
    signer: PublicKey | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def signing_body(self) -> dict:
        """The canonical content covered by the hash and signature."""
        return {
            "sender": self.sender,
            "kind": self.kind.value,
            "payload": dict(self.payload),
            "nonce": self.nonce,
            "timestamp": self.timestamp,
            "fee": self.fee,
        }

    @property
    def tx_hash(self) -> bytes:
        return hash_canonical(self.signing_body(), DOMAIN_TX)

    @property
    def tx_id(self) -> str:
        """Hex transaction id (prefix of the hash, collision-safe enough
        for in-process simulation sizes)."""
        return self.tx_hash.hex()

    def to_canonical(self) -> dict:
        return self.signing_body()

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign_with(self, keypair: KeyPair) -> "Transaction":
        """Attach a signature; the sender must match the key's address."""
        if self.sender != keypair.address:
            raise InvalidTransaction(
                f"sender {self.sender!r} does not match signing key "
                f"address {keypair.address!r}"
            )
        self.signature = keypair.sign(self.signing_body())
        self.signer = keypair.public
        return self

    def verify_signature(self) -> bool:
        """True iff the transaction carries a valid signature."""
        if self.signature is None or self.signer is None:
            return False
        if self.signer.address != self.sender:
            return False
        return verify(self.signing_body(), self.signature, self.signer)

    def validate(self, require_signature: bool = False) -> None:
        """Structural validation; raises :class:`InvalidTransaction`."""
        if not self.sender:
            raise InvalidTransaction("transaction has no sender")
        if self.fee < 0:
            raise InvalidTransaction("negative fee")
        if self.nonce < 0:
            raise InvalidTransaction("negative nonce")
        if require_signature and not self.verify_signature():
            raise InvalidTransaction(
                f"transaction {self.tx_id[:12]} is unsigned or badly signed"
            )

    # ------------------------------------------------------------------
    # Size accounting (storage-overhead benches)
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        from ..serialization import canonical_encode

        base = len(canonical_encode(self.signing_body()))
        if self.signature is not None:
            base += len(self.signature) + 32
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.kind.value}, sender={self.sender[:8]}…, "
            f"id={self.tx_id[:10]}…)"
        )
