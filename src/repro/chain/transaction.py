"""Typed, signable transactions.

A transaction is the unit every higher layer reduces to: a provenance
record anchor, a contract invocation, a cross-chain transfer leg — all are
transactions of a particular :class:`TxKind` with a structured payload.

Caching / seal invariants (the hot-path contract)
-------------------------------------------------

``tx_hash`` / ``tx_id`` / ``size_bytes`` and the canonical encoding of the
signing body are computed **once** and cached on the instance.  The caches
are kept honest two ways:

* **Invalidate-on-assign** — assigning any hash-covered field (``sender``,
  ``kind``, ``payload``, ``nonce``, ``timestamp``, ``fee``) drops every
  cache, so a mutated transaction always re-hashes to its *current*
  content.  This is what keeps tamper detection intact: overwriting a
  committed transaction's payload changes its ``tx_hash`` on the next
  read, which breaks the block's Merkle root.
* **Seal discipline** — :meth:`seal` freezes the transaction: the payload
  is snapshotted behind a read-only mapping proxy, the canonical encoding
  is pinned (shared by signing, hashing, and size accounting via the
  identity-keyed encode cache in :mod:`repro.serialization`), and any
  further assignment to a hash-covered field raises
  :class:`~repro.errors.SealedMutation`.

The one hole left open by design: mutating the payload *dict in place* on
an **unsealed** transaction after its hash was read is not detected by the
cached fast path — sealed transactions make that impossible, and the
auditor paths (``Blockchain.verify(deep=True)``) recompute from scratch.

``HASH_CACHING_ENABLED`` is a module-level switch the hot-path benchmark
flips off to measure the recompute-every-read baseline; leave it on.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from enum import Enum
from types import MappingProxyType
from typing import Any, Mapping

from ..crypto.hashing import DOMAIN_TX, hash_bytes
from ..crypto.signatures import (
    KeyPair,
    PublicKey,
    sign_encoded,
    verify_encoded,
)
from ..errors import InvalidTransaction, SealedMutation
from ..serialization import canonical_encode

# Benchmark lever: when False, every hash/encode read recomputes from
# scratch (the seed's behavior).  Production code never touches this.
HASH_CACHING_ENABLED = True

# Fields covered by the transaction hash and signature.  Assigning any of
# them invalidates the caches (or raises, once sealed).
_HASH_FIELDS = frozenset(
    {"sender", "kind", "payload", "nonce", "timestamp", "fee"}
)

# LRU of signature checks that already passed, keyed by
# (tx_id, signer key bytes, tag).  A sealed transaction is re-validated
# at queue admission, mempool admission, and block seal; the first check
# pays the HMAC, the rest pay one dict probe.  Only sealed transactions
# are cached — their tx_id provably pins the signed content.  Guarded by
# a lock: the parallel sealing round validates from worker threads.
_VERIFIED_SIGNATURES: OrderedDict[tuple[str, bytes, bytes], bool] = \
    OrderedDict()
_VERIFIED_SIGNATURES_MAX = 8192
_VERIFIED_SIGNATURES_LOCK = threading.Lock()

# Hit/miss counters are registry-backed (see repro.obs); the accessor
# below keeps its historical shape.  Handles are cached per default-
# telemetry instance, same pattern as repro.crypto.signatures.
_COUNTER_HANDLES: tuple | None = None


def _signature_cache_counters():
    global _COUNTER_HANDLES
    from ..obs.runtime import telemetry

    tel = telemetry()
    handles = _COUNTER_HANDLES
    if handles is None or handles[0] is not tel:
        registry = tel.registry
        handles = (
            tel,
            registry.counter("sig_verify_cache_hits_total",
                             cache="verify_signature"),
            registry.counter("sig_verify_cache_misses_total",
                             cache="verify_signature"),
        )
        _COUNTER_HANDLES = handles
    return handles


def _signature_cache_stats() -> dict:
    """Counters for :func:`repro.crypto.signatures.cache_stats`."""
    _, hits, misses = _signature_cache_counters()
    with _VERIFIED_SIGNATURES_LOCK:
        return {
            "hits": hits.value,
            "misses": misses.value,
            "size": len(_VERIFIED_SIGNATURES),
            "capacity": _VERIFIED_SIGNATURES_MAX,
        }


def _reset_signature_cache_stats() -> None:
    _, hits, misses = _signature_cache_counters()
    with _VERIFIED_SIGNATURES_LOCK:
        hits.reset()
        misses.reset()


class TxKind(str, Enum):
    """Payload discriminator.

    The set is open-ended in spirit; these cover every use in the library.
    """

    TRANSFER = "transfer"             # value transfer between accounts
    DATA = "data"                     # opaque data blob (on-chain storage)
    PROVENANCE = "provenance"         # a provenance record or batch anchor
    CONTRACT_DEPLOY = "contract_deploy"
    CONTRACT_CALL = "contract_call"
    CROSS_CHAIN = "cross_chain"       # bridge / relay / notary messages
    GOVERNANCE = "governance"         # validator-set & policy changes


@dataclass
class Transaction:
    """An immutable-once-signed ledger transaction.

    ``payload`` must be canonically encodable (see
    :mod:`repro.serialization`); its schema is defined by ``kind``.
    """

    sender: str
    kind: TxKind
    payload: Mapping[str, Any]
    nonce: int = 0
    timestamp: int = 0
    fee: int = 0
    signature: bytes | None = field(default=None, compare=False)
    signer: PublicKey | None = field(default=None, compare=False)

    # ------------------------------------------------------------------
    # Cache discipline
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if name in _HASH_FIELDS:
            d = self.__dict__
            if d.get("_sealed", False):
                raise SealedMutation(
                    f"transaction {d.get('_cache_id', '?')[:12]} is sealed; "
                    f"cannot assign {name!r}"
                )
            d.pop("_cache_encoded", None)
            d.pop("_cache_hash", None)
            d.pop("_cache_id", None)
        object.__setattr__(self, name, value)

    @property
    def is_sealed(self) -> bool:
        return self.__dict__.get("_sealed", False)

    def seal(self) -> "Transaction":
        """Freeze the transaction and pin its caches.

        The payload is snapshotted behind a read-only proxy (in-place
        mutation through ``self.payload`` becomes impossible), the
        canonical encoding and hash are precomputed, and later assignment
        to hash-covered fields raises :class:`SealedMutation`.  Idempotent.
        """
        d = self.__dict__
        if d.get("_sealed", False):
            return self
        # Snapshot the payload so a caller-held reference to the original
        # dict can no longer reach the sealed content.
        d["payload"] = MappingProxyType(dict(self.payload))
        d.pop("_cache_encoded", None)
        d.pop("_cache_hash", None)
        d.pop("_cache_id", None)
        encoded = self._encoded_body()
        _ = self.tx_id  # populate hash caches
        d["_sealed"] = True
        # Identity-keyed encode cache hook (see repro.serialization): a
        # sealed transaction embedded in a larger structure encodes from
        # these pinned bytes.
        d["_canonical_cache"] = encoded
        return self

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def signing_body(self) -> dict:
        """The canonical content covered by the hash and signature."""
        return {
            "sender": self.sender,
            "kind": self.kind.value,
            "payload": dict(self.payload),
            "nonce": self.nonce,
            "timestamp": self.timestamp,
            "fee": self.fee,
        }

    def _encoded_body(self) -> bytes:
        """Canonical encoding of the signing body, computed once.

        Shared by hashing (``tx_hash``), signing (:meth:`sign_with` /
        :meth:`verify_signature`), and size accounting (``size_bytes``).
        """
        encoded = self.__dict__.get("_cache_encoded")
        if encoded is None or not HASH_CACHING_ENABLED:
            encoded = canonical_encode(self.signing_body())
            self.__dict__["_cache_encoded"] = encoded
        return encoded

    @property
    def tx_hash(self) -> bytes:
        h = self.__dict__.get("_cache_hash")
        if h is None or not HASH_CACHING_ENABLED:
            h = hash_bytes(self._encoded_body(), DOMAIN_TX)
            self.__dict__["_cache_hash"] = h
        return h

    @property
    def tx_id(self) -> str:
        """Hex transaction id (prefix of the hash, collision-safe enough
        for in-process simulation sizes)."""
        i = self.__dict__.get("_cache_id")
        if i is None or not HASH_CACHING_ENABLED:
            i = self.tx_hash.hex()
            self.__dict__["_cache_id"] = i
        return i

    def compute_tx_hash(self) -> bytes:
        """Recompute the hash of the *current* content, bypassing caches.

        This is the auditor primitive: ``Blockchain.verify(deep=True)``
        uses it so even in-place payload mutation cannot hide behind a
        stale cache.  Does not touch the caches.
        """
        return hash_bytes(canonical_encode(self.signing_body()), DOMAIN_TX)

    def to_canonical(self) -> dict:
        return self.signing_body()

    # ------------------------------------------------------------------
    # Signing
    # ------------------------------------------------------------------
    def sign_with(self, keypair: KeyPair) -> "Transaction":
        """Attach a signature; the sender must match the key's address."""
        if self.sender != keypair.address:
            raise InvalidTransaction(
                f"sender {self.sender!r} does not match signing key "
                f"address {keypair.address!r}"
            )
        self.signature = sign_encoded(self._encoded_body(), keypair.private)
        self.signer = keypair.public
        return self

    def verify_signature(self) -> bool:
        """True iff the transaction carries a valid signature.

        Routes through :func:`~repro.crypto.signatures.verify_encoded`
        with the seal-time pinned encoding (never a re-encode), and
        memoizes passing checks per ``(tx_id, signer, tag)`` so
        re-validation along the ingest path costs one dict probe.
        """
        if self.signature is None or self.signer is None:
            return False
        if self.signer.address != self.sender:
            return False
        sealed = self.is_sealed and HASH_CACHING_ENABLED
        if sealed:
            _, cache_hits, cache_misses = _signature_cache_counters()
            key = (self.tx_id, self.signer.key_bytes, self.signature)
            with _VERIFIED_SIGNATURES_LOCK:
                if _VERIFIED_SIGNATURES.get(key):
                    _VERIFIED_SIGNATURES.move_to_end(key)
                    cache_hits.inc()
                    return True
                cache_misses.inc()
        ok = verify_encoded(self._encoded_body(), self.signature,
                            self.signer)
        if ok and sealed:
            with _VERIFIED_SIGNATURES_LOCK:
                _VERIFIED_SIGNATURES[key] = True
                _VERIFIED_SIGNATURES.move_to_end(key)
                while len(_VERIFIED_SIGNATURES) > _VERIFIED_SIGNATURES_MAX:
                    _VERIFIED_SIGNATURES.popitem(last=False)
        return ok

    def validate(self, require_signature: bool = False) -> None:
        """Structural validation; raises :class:`InvalidTransaction`."""
        if not self.sender:
            raise InvalidTransaction("transaction has no sender")
        if self.fee < 0:
            raise InvalidTransaction("negative fee")
        if self.nonce < 0:
            raise InvalidTransaction("negative nonce")
        if require_signature and not self.verify_signature():
            raise InvalidTransaction(
                f"transaction {self.tx_id[:12]} is unsigned or badly signed"
            )

    # ------------------------------------------------------------------
    # Size accounting (storage-overhead benches)
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        base = len(self._encoded_body())
        if self.signature is not None:
            base += len(self.signature) + 32
        return base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transaction({self.kind.value}, sender={self.sender[:8]}…, "
            f"id={self.tx_id[:10]}…)"
        )
