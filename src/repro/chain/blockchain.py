"""The blockchain: an append-only, tamper-evident ledger of blocks.

Responsibilities:

* maintain the canonical chain (genesis → head) and a transaction index,
* validate every appended block (structure, linkage, height, signatures),
* execute transactions against the :class:`~repro.chain.state.StateStore`
  through a pluggable executor, collecting receipts and events,
* verify the whole chain after the fact (:meth:`verify`), which is the
  operation that *detects* the Figure-2 tampering scenario,
* support longest-chain reorganizations for the consensus sims — O(delta)
  via a per-block state undo journal, falling back to genesis replay only
  when the fork is deeper than the journal window.

Hot-path vs auditor split: :meth:`append_block` trusts the Merkle tree the
block built at construction (builder and appender are the same process),
while :meth:`verify` / :meth:`first_broken_height` always rebuild the tree
from the transaction hashes — and with ``deep=True`` recompute even those
from raw payload bytes, defeating any stale cache.

Storage split (ISSUE 3): the chain no longer owns a block list.  All
block, transaction-index, and receipt access goes through a pluggable
:class:`~repro.persist.stores.BlockStore` — in-memory by default (the
seed's exact data structures), or the sqlite-indexed segment-log backend
from :mod:`repro.persist.durable`.  With a durable store plus a
:class:`~repro.persist.stores.StateSnapshotStore`, a chain reopened on an
existing directory resumes from its checkpointed state and re-executes
only the blocks above the snapshot (``blocks_replayed_on_open``), instead
of replaying from genesis.  Reorg truncation is store-aware: replaced
blocks are physically removed from the log and index.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from ..crypto.merkle import MerkleProof, verify_proof
from ..errors import ForkError, InvalidBlock, StorageError, TamperDetected
from ..persist.stores import (
    BlockSequenceView,
    BlockStore,
    MemoryBlockStore,
    StateSnapshotStore,
)
from .block import Block, GENESIS_PREV_HASH
from .receipts import Event, TransactionReceipt
from .state import StateStore
from . import transaction as _tx_mod
from .transaction import Transaction, TxKind

# An executor applies one transaction to state, returning a receipt.
Executor = Callable[[Transaction, StateStore, "Blockchain"], TransactionReceipt]


@dataclass
class ChainParams:
    """Static parameters of a chain instance."""

    chain_id: str = "chain-0"
    max_block_txs: int = 256
    require_signatures: bool = False
    genesis_timestamp: int = 0
    # Free-form descriptors used by cross-chain compatibility checks.
    visibility: str = "private"          # "public" | "private" | "consortium"
    extra: Mapping[str, Any] = field(default_factory=dict)
    # How many recent blocks keep a state undo journal for O(delta)
    # reorgs.  Deeper forks fall back to replay-from-genesis; 0 disables
    # journaling entirely (the replay-only baseline).
    reorg_journal_depth: int = 64


def default_executor(
    tx: Transaction, state: StateStore, chain: "Blockchain"
) -> TransactionReceipt:
    """Built-in executor for plain value/data transactions.

    Contract transactions are handled when a
    :class:`~repro.contracts.runtime.ContractRuntime` is attached to the
    chain; without one they fail cleanly.
    """
    receipt = TransactionReceipt(tx_id=tx.tx_id, success=True, gas_used=1)
    try:
        if tx.kind == TxKind.TRANSFER:
            amount = int(tx.payload["amount"])
            state.transfer(tx.sender, str(tx.payload["to"]), amount)
            receipt.events.append(
                Event("transfer", "chain", {"from": tx.sender,
                                            "to": tx.payload["to"],
                                            "amount": amount})
            )
        elif tx.kind == TxKind.DATA:
            key = str(tx.payload.get("key", tx.tx_id))
            state.set("data", key, tx.payload.get("value"))
            receipt.gas_used = 1 + tx.size_bytes // 64
        elif tx.kind == TxKind.PROVENANCE:
            key = str(tx.payload.get("anchor_id", tx.tx_id))
            state.set("provenance", key, dict(tx.payload))
            receipt.gas_used = 2
            receipt.events.append(
                Event("provenance_anchored", "chain", {"anchor_id": key})
            )
        elif tx.kind in (TxKind.CONTRACT_DEPLOY, TxKind.CONTRACT_CALL):
            runtime = chain.contract_runtime
            if runtime is None:
                raise InvalidBlock("no contract runtime attached to chain")
            return runtime.execute(tx, state)
        elif tx.kind == TxKind.CROSS_CHAIN:
            key = str(tx.payload.get("message_id", tx.tx_id))
            state.set("crosschain", key, dict(tx.payload))
            receipt.events.append(
                Event("cross_chain_message", "chain", {"message_id": key})
            )
        elif tx.kind == TxKind.GOVERNANCE:
            key = str(tx.payload.get("param", tx.tx_id))
            state.set("governance", key, tx.payload.get("value"))
        else:  # pragma: no cover - enum is closed
            raise InvalidBlock(f"unknown tx kind {tx.kind}")
    except Exception as exc:  # noqa: BLE001 - receipts capture failures
        receipt.success = False
        receipt.error = str(exc)
    return receipt


class Blockchain:
    """A single chain instance (one per organization / per node copy)."""

    def __init__(
        self,
        params: ChainParams | None = None,
        executor: Executor | None = None,
        store: BlockStore | None = None,
        snapshot_store: StateSnapshotStore | None = None,
        snapshot_interval: int = 0,
        contract_runtime=None,
    ) -> None:
        self.params = params or ChainParams()
        self.executor: Executor = executor or default_executor
        self.state = StateStore()
        self._store: BlockStore = store if store is not None \
            else MemoryBlockStore()
        self._snapshot_store = snapshot_store
        self._snapshot_interval = snapshot_interval
        self._blocks_view = BlockSequenceView(self._store)
        # Snapshot handles for the journaled tail of the chain; entry i
        # (from the right) undoes block `height - i`.
        self._block_snaps: deque[int] = deque()
        # Normally set post-construction by ContractRuntime.attach(); a
        # durable chain that replays contract blocks on reopen must get
        # the runtime *here*, before the restore replay runs.
        self.contract_runtime = contract_runtime
        self._subscribers: list[Callable[[Block, list[TransactionReceipt]], None]] = []
        # Blocks re-executed while adopting a non-empty store (0 after a
        # clean close+checkpoint: the snapshot already covers the head).
        self.blocks_replayed_on_open = 0
        if len(self._store) == 0:
            genesis = Block(
                height=0,
                prev_hash=GENESIS_PREV_HASH,
                transactions=[],
                timestamp=self.params.genesis_timestamp,
                proposer="genesis",
                consensus_meta={"chain_id": self.params.chain_id},
            )
            self._store.append_block(genesis, [])
        else:
            self._restore_from_store()

    def _restore_from_store(self) -> None:
        """Adopt an existing (reopened) store: restore the checkpointed
        state image and re-execute only the blocks above it."""
        replay_from = 1
        if self._snapshot_store is not None:
            snap_height = self._snapshot_store.snapshot_height()
            if snap_height is not None:
                snap_hash = self._snapshot_store.snapshot_block_hash()
                usable = (
                    snap_height <= self._store.height()
                    and (snap_hash == b"" or snap_hash ==
                         self._store.block_at(snap_height).block_hash)
                )
                if usable:
                    self.state.load_entries(self._snapshot_store.load()[1])
                    replay_from = snap_height + 1
                else:
                    # Recovery truncated the chain below the checkpoint,
                    # or the image was taken on a branch that has since
                    # been reorged away — fall back to full replay.
                    self._snapshot_store.clear()
        for block in self._store.iter_blocks(replay_from):
            if self.contract_runtime is None and any(
                tx.kind in (TxKind.CONTRACT_DEPLOY, TxKind.CONTRACT_CALL)
                for tx in block.transactions
            ):
                # Without the runtime the executor would turn every
                # contract tx into a failed receipt and the replayed
                # state would silently diverge from the pre-crash chain.
                raise StorageError(
                    f"stored block {block.height} holds contract "
                    "transactions; reopen the chain with "
                    "contract_runtime= so the restore replay can "
                    "re-execute them"
                )
            self._execute_restored(block)
            self.blocks_replayed_on_open += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def chain_id(self) -> str:
        return self.params.chain_id

    @property
    def store(self) -> BlockStore:
        return self._store

    @property
    def blocks(self) -> BlockSequenceView:
        """Read-only sequence view over the block store (the former
        in-memory list; all access now routes through store calls)."""
        return self._blocks_view

    @blocks.setter
    def blocks(self, new_blocks) -> None:
        # Tamper/bench hook: wholesale replacement is only meaningful on
        # the in-memory backend (probe chains built from copied blocks).
        if not isinstance(self._store, MemoryBlockStore):
            raise StorageError(
                "cannot wholesale-assign blocks on a durable store"
            )
        self._store.reset(list(new_blocks))

    @property
    def receipts(self) -> Mapping[str, TransactionReceipt]:
        """Mapping view tx_id → receipt, served by the store."""
        return self._store.receipts_map()

    @property
    def head(self) -> Block:
        return self._store.head_block()

    @property
    def height(self) -> int:
        return self._store.height()

    def __len__(self) -> int:
        return len(self._store)

    def __iter__(self) -> Iterator[Block]:
        return self._store.iter_blocks()

    def block_at(self, height: int) -> Block:
        if not 0 <= height <= self._store.height():
            raise InvalidBlock(f"no block at height {height}")
        return self._store.block_at(height)

    def find_transaction(self, tx_id: str) -> tuple[Block, Transaction] | None:
        """Locate a committed transaction by id via the index."""
        loc = self._store.tx_location(tx_id)
        if loc is None:
            return None
        height, pos = loc
        block = self._store.block_at(height)
        return block, block.transactions[pos]

    def receipt_for(self, tx_id: str) -> TransactionReceipt | None:
        return self._store.receipt_for(tx_id)

    def subscribe(
        self, callback: Callable[[Block, list[TransactionReceipt]], None]
    ) -> None:
        """Register a hook invoked after each block commit (capture layer)."""
        self._subscribers.append(callback)

    # ------------------------------------------------------------------
    # Building and appending blocks
    # ------------------------------------------------------------------
    def build_block(
        self,
        transactions: list[Transaction],
        timestamp: int = 0,
        proposer: str = "",
        consensus_meta: Mapping[str, Any] | None = None,
        nonce: int = 0,
    ) -> Block:
        """Assemble (but do not append) the next block."""
        if len(transactions) > self.params.max_block_txs:
            raise InvalidBlock(
                f"block would carry {len(transactions)} txs; "
                f"limit is {self.params.max_block_txs}"
            )
        return Block(
            height=self.height + 1,
            prev_hash=self.head.block_hash,
            transactions=transactions,
            timestamp=timestamp,
            proposer=proposer,
            consensus_meta=consensus_meta,
            nonce=nonce,
        )

    def append_block(self, block: Block) -> list[TransactionReceipt]:
        """Validate, execute, and commit ``block``; returns its receipts."""
        self._validate_linkage(block, expected_height=self.height + 1)
        # Hot path: trust the tree the block built at construction — the
        # auditor paths (verify / first_broken_height) rebuild it.  When
        # the benchmark lever disables caching, fall back to the seed's
        # full rebuild so the baseline is faithful.
        block.verify_structure(use_cached_tree=_tx_mod.HASH_CACHING_ENABLED)
        for tx in block.transactions:
            tx.validate(require_signature=self.params.require_signatures)
        receipts = self._commit_block(block)
        for callback in self._subscribers:
            callback(block, receipts)
        # Interval checkpoints run only after the block is fully
        # committed and announced — a checkpoint failure (disk full) must
        # not masquerade as a failed append of a block that landed.
        if (self._snapshot_interval > 0
                and block.height % self._snapshot_interval == 0):
            self.checkpoint()
        return receipts

    def append_blocks(
        self, blocks: list[Block]
    ) -> list[list[TransactionReceipt]]:
        """Validate, execute, and **group-commit** consecutive blocks.

        The sealing path's batch surface: every block is validated and
        executed exactly as :meth:`append_block` would, but the store
        commit happens once for the whole group — on the durable backend
        that is one buffered log write, one fsync, and one sqlite
        transaction instead of one of each per block.  The group is
        atomic on backends with a native batch commit: a failure while
        executing or committing unwinds every block's state changes and
        commits nothing.  A backend riding the ``append_blocks`` loop
        fallback may keep a committed prefix when it fails mid-group —
        state is unwound only for the blocks the store did *not* commit,
        so chain and state stay aligned either way.
        """
        if not blocks:
            return []
        prev = self.head
        start_height = prev.height
        for block in blocks:
            if block.height != prev.height + 1:
                raise InvalidBlock(
                    f"expected height {prev.height + 1}, got {block.height}"
                )
            if block.header.prev_hash != prev.block_hash:
                raise InvalidBlock(
                    f"block {block.height} does not link to "
                    f"{prev.block_id[:10]}…"
                )
            block.verify_structure(
                use_cached_tree=_tx_mod.HASH_CACHING_ENABLED
            )
            for tx in block.transactions:
                tx.validate(require_signature=self.params.require_signatures)
            prev = block
        depth = self.params.reorg_journal_depth
        all_receipts: list[list[TransactionReceipt]] = []
        # Per-block snapshots are taken even with journaling disabled —
        # the group unwind needs them; they are committed away (folded/
        # discarded) after the store commit when depth == 0.
        group_snaps: list[int] = []
        try:
            for block in blocks:
                group_snaps.append(self.state.snapshot())
                all_receipts.append(self._run_executor(block))
            self._store.append_blocks(list(zip(blocks, all_receipts)))
        except BaseException:
            # Unwind only what the store did not commit: 0 blocks on a
            # batch-native backend (all-or-nothing), possibly a prefix
            # on a loop-fallback backend.
            committed = max(0, self._store.height() - start_height)
            while len(group_snaps) > committed:
                self.state.rollback(group_snaps.pop())
            if depth > 0:
                self._block_snaps.extend(group_snaps)
            else:
                for handle in reversed(group_snaps):
                    self.state.commit_snapshot(handle)
            raise
        if depth > 0:
            self._block_snaps.extend(group_snaps)
            while len(self._block_snaps) > depth:
                self.state.prune_oldest_snapshot()
                self._block_snaps.popleft()
        else:
            for handle in reversed(group_snaps):
                self.state.commit_snapshot(handle)
        for block, receipts in zip(blocks, all_receipts):
            for callback in self._subscribers:
                callback(block, receipts)
        if (self._snapshot_interval > 0
                and any(block.height % self._snapshot_interval == 0
                        for block in blocks)):
            self.checkpoint()
        return all_receipts

    def apply_executed_blocks(
        self,
        blocks: list[Block],
        deltas: list[list],
        receipts_lists: list[list[TransactionReceipt]] | None = None,
        raw_items: list[dict] | None = None,
        expected_state_root: bytes | None = None,
    ) -> None:
        """Commit blocks that were validated and executed *elsewhere*
        (an exec worker process), applying their state deltas instead of
        re-running transactions.

        ``deltas[i]`` is block ``i``'s :meth:`StateStore.drain_snapshot_delta`
        change set.  The store commit uses ``raw_items`` (pre-encoded
        frames for :meth:`~repro.persist.durable.DurableBlockStore.install_raw`)
        when given and supported, avoiding a parent-side re-encode;
        otherwise it group-commits ``receipts_lists`` through the normal
        store surface.  Subscribers need decoded receipts, so callers
        with subscribers must pass ``receipts_lists`` even on the raw
        path.

        ``expected_state_root`` is the executing worker's post-group
        root: when it does not match the parent's root after applying the
        deltas, everything is unwound and :class:`TamperDetected` is
        raised *before* any store commit — a diverging worker can never
        seal state the parent did not reproduce.

        Snapshot journaling, pruning, subscriber fan-out, and interval
        checkpoints mirror :meth:`append_blocks` exactly, so serial and
        process-pool sealing leave identical chain/state/journal shape.
        """
        if not blocks:
            return
        if len(deltas) != len(blocks):
            raise InvalidBlock("need one state delta per block")
        prev = self.head
        start_height = prev.height
        for block in blocks:
            if block.height != prev.height + 1:
                raise InvalidBlock(
                    f"expected height {prev.height + 1}, got {block.height}"
                )
            if block.header.prev_hash != prev.block_hash:
                raise InvalidBlock(
                    f"block {block.height} does not link to "
                    f"{prev.block_id[:10]}…"
                )
            prev = block
        use_raw = raw_items is not None and hasattr(self._store, "install_raw")
        if self._subscribers and receipts_lists is None:
            raise StorageError(
                "chain has subscribers; apply_executed_blocks needs "
                "decoded receipts_lists to fan out"
            )
        if not use_raw and receipts_lists is None:
            raise StorageError(
                "store lacks install_raw; pass receipts_lists for the "
                "group-commit fallback"
            )
        depth = self.params.reorg_journal_depth
        group_snaps: list[int] = []
        try:
            for delta in deltas:
                group_snaps.append(self.state.snapshot())
                self.state.apply_delta(delta)
            if expected_state_root is not None \
                    and self.state.state_root() != expected_state_root:
                raise TamperDetected(
                    f"chain {self.chain_id}: worker-reported state root "
                    "does not match the parent's delta replay"
                )
            if use_raw:
                self._store.install_raw(raw_items)
            else:
                self._store.append_blocks(
                    list(zip(blocks, receipts_lists))
                )
        except BaseException:
            committed = max(0, self._store.height() - start_height)
            while len(group_snaps) > committed:
                self.state.rollback(group_snaps.pop())
            if depth > 0:
                self._block_snaps.extend(group_snaps)
            else:
                for handle in reversed(group_snaps):
                    self.state.commit_snapshot(handle)
            raise
        if use_raw:
            cache_decoded = getattr(self._store, "cache_decoded", None)
            if cache_decoded is not None:
                cache_decoded(blocks)
        if depth > 0:
            self._block_snaps.extend(group_snaps)
            while len(self._block_snaps) > depth:
                self.state.prune_oldest_snapshot()
                self._block_snaps.popleft()
        else:
            for handle in reversed(group_snaps):
                self.state.commit_snapshot(handle)
        if receipts_lists is not None:
            for block, receipts in zip(blocks, receipts_lists):
                for callback in self._subscribers:
                    callback(block, receipts)
        if (self._snapshot_interval > 0
                and any(block.height % self._snapshot_interval == 0
                        for block in blocks)):
            self.checkpoint()

    def _run_executor(self, block: Block) -> list[TransactionReceipt]:
        receipts = []
        for tx in block.transactions:
            receipt = self.executor(tx, self.state, self)
            receipt.block_height = block.height
            receipts.append(receipt)
        return receipts

    def _commit_block(self, block: Block) -> list[TransactionReceipt]:
        """Execute and attach an already-validated block (shared by
        append, reorg, and replay; fires no subscribers)."""
        depth = self.params.reorg_journal_depth
        if depth > 0:
            self._block_snaps.append(self.state.snapshot())
        try:
            receipts = self._run_executor(block)
            self._store.append_block(block, receipts)
        except BaseException:
            # A raising (custom) executor — or a store that failed the
            # append — must not leave a half-applied block behind: unwind
            # state so the journal stays aligned with committed blocks.
            if depth > 0:
                self.state.rollback(self._block_snaps.pop())
            raise
        if depth > 0 and len(self._block_snaps) > depth:
            self.state.prune_oldest_snapshot()
            self._block_snaps.popleft()
        return receipts

    def _execute_restored(self, block: Block) -> list[TransactionReceipt]:
        """Re-execute a block the store already holds (reopen replay and
        the deep-fork fallback); journaled exactly like a fresh commit."""
        depth = self.params.reorg_journal_depth
        if depth > 0:
            self._block_snaps.append(self.state.snapshot())
        try:
            receipts = self._run_executor(block)
        except BaseException:
            if depth > 0:
                self.state.rollback(self._block_snaps.pop())
            raise
        if depth > 0 and len(self._block_snaps) > depth:
            self.state.prune_oldest_snapshot()
            self._block_snaps.popleft()
        return receipts

    def _validate_linkage(self, block: Block, expected_height: int) -> None:
        if block.height != expected_height:
            raise InvalidBlock(
                f"expected height {expected_height}, got {block.height}"
            )
        if block.header.prev_hash != self.head.block_hash:
            raise InvalidBlock(
                f"block {block.height} does not link to current head "
                f"{self.head.block_id[:10]}…"
            )

    # ------------------------------------------------------------------
    # Durability (checkpoints; no-ops on the in-memory backend)
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Persist the current state image at the head height and fsync
        the store, so a reopen resumes here instead of replaying."""
        if self._snapshot_store is not None:
            self._snapshot_store.save(self.height,
                                      self.state.dump_entries(),
                                      block_hash=self.head.block_hash)
        self._store.sync()

    def close(self) -> None:
        """Checkpoint and release the store (reopenable afterwards)."""
        self.checkpoint()
        self._store.close()

    # ------------------------------------------------------------------
    # Whole-chain verification (tamper detection)
    # ------------------------------------------------------------------
    def verify(self, deep: bool = False) -> None:
        """Re-verify every block and link; raises :class:`TamperDetected`.

        This is the auditor's operation: it detects any post-hoc mutation
        of a committed transaction or header, and reports *where* the
        chain breaks.  Merkle trees are always rebuilt (cached roots are
        never trusted here); ``deep=True`` additionally recomputes every
        transaction and header hash from raw bytes, which also catches
        in-place mutation of an unsealed payload mapping.
        """
        prev_hash = GENESIS_PREV_HASH
        for block in self._store.iter_blocks():
            if block.header.prev_hash != prev_hash:
                raise TamperDetected(
                    f"chain broken at height {block.height}: prev-hash "
                    "does not match preceding block"
                )
            try:
                block.verify_structure(deep=deep)
            except InvalidBlock as exc:
                raise TamperDetected(str(exc)) from exc
            prev_hash = (block.header.compute_block_hash() if deep
                         else block.header.block_hash)

    def is_intact(self, deep: bool = False) -> bool:
        """Boolean form of :meth:`verify`."""
        try:
            self.verify(deep=deep)
        except TamperDetected:
            return False
        return True

    def first_broken_height(self, deep: bool = False) -> int | None:
        """Height of the first integrity violation, or ``None`` if intact."""
        prev_hash = GENESIS_PREV_HASH
        for block in self._store.iter_blocks():
            if block.header.prev_hash != prev_hash:
                return block.height
            if block.recompute_merkle_root(deep=deep) != \
                    block.header.merkle_root:
                return block.height
            prev_hash = (block.header.compute_block_hash() if deep
                         else block.header.block_hash)
        return None

    # ------------------------------------------------------------------
    # Light-client style proofs
    # ------------------------------------------------------------------
    def prove_transaction(self, tx_id: str) -> tuple[Block, MerkleProof] | None:
        """Inclusion proof usable by a holder of just the block header."""
        loc = self._store.tx_location(tx_id)
        if loc is None:
            return None
        height, pos = loc
        block = self._store.block_at(height)
        return block, block.prove_inclusion(pos)

    @staticmethod
    def verify_transaction_proof(
        header_merkle_root: bytes, tx: Transaction, proof: MerkleProof
    ) -> bool:
        """Check an inclusion proof against a known header root."""
        return verify_proof(header_merkle_root, tx.tx_hash, proof)

    # ------------------------------------------------------------------
    # Reorganization (longest-chain consensus support)
    # ------------------------------------------------------------------
    def reorg_to(self, new_suffix: list[Block], fork_height: int) -> None:
        """Replace blocks above ``fork_height`` with ``new_suffix``.

        Only accepts strictly longer chains (longest-chain rule).
        Candidate validation starts at the fork point — the kept prefix
        was validated when it was committed.  State is rewound with the
        per-block undo journal when the fork is within the journal window
        (O(delta) in the number of replaced + new blocks), and only falls
        back to a full replay from genesis for deeper forks.  Replaced
        blocks are truncated out of the store — on the durable backend
        that physically cuts the segment log and index, so the on-disk
        chain always matches the in-memory head.

        Caveat: the journal path rewinds to the exact fork-point state,
        while the replay fallback rebuilds from a fresh
        :class:`StateStore` and therefore discards state written
        *outside* block execution (direct ``state.set``/``credit`` calls,
        a test-fixture convenience).  Chains whose state comes entirely
        from executed transactions — every production flow — get
        identical results from both paths.
        """
        if fork_height < 0 or fork_height > self.height:
            raise ForkError(f"fork height {fork_height} out of range")
        if fork_height + len(new_suffix) <= self.height:
            raise ForkError("refusing reorg: new chain is not longer")
        # Validate the new suffix against the kept prefix only.
        prev = self._store.block_at(fork_height)
        for i, block in enumerate(new_suffix):
            if block.header.prev_hash != prev.block_hash:
                raise ForkError(f"candidate chain broken at index {i}")
            if block.height != fork_height + 1 + i:
                raise ForkError(
                    f"candidate block at index {i} has height "
                    f"{block.height}, expected {fork_height + 1 + i}"
                )
            block.verify_structure()
            prev = block
        delta = self.height - fork_height
        if delta <= len(self._block_snaps):
            for _ in range(delta):
                self._rollback_head_block()
            # Discard a checkpoint of the orphaned branch *before*
            # committing the suffix — a checkpoint the suffix commits may
            # take (snapshot_interval) describes the winning branch and
            # must survive.
            self._discard_snapshot_above(fork_height)
            for block in new_suffix:
                self._commit_block(block)
        else:
            self._replay_reorg(fork_height, new_suffix)
        if self._snapshot_interval > 0:
            # Re-checkpoint promptly on the winning branch so the on-disk
            # image never lags a whole interval behind a reorg.
            self.checkpoint()

    def _rollback_head_block(self) -> None:
        """Undo the head block: state, receipts, and index (O(block))."""
        height = self._store.height()
        self.state.rollback(self._block_snaps.pop())
        self._store.truncate_above(height - 1)

    def _replay_reorg(self, fork_height: int, new_suffix: list[Block]) -> None:
        """Rebuild chain state from scratch (deep-fork fallback)."""
        self.state = StateStore()
        self._block_snaps.clear()
        self._store.truncate_above(fork_height)
        self._discard_snapshot_above(fork_height)
        for height in range(1, fork_height + 1):
            # Re-execute without re-validating signatures (already done).
            self._execute_restored(self._store.block_at(height))
        for block in new_suffix:
            self._commit_block(block)

    def _discard_snapshot_above(self, fork_height: int) -> None:
        """A checkpoint above the fork point describes the *orphaned*
        branch's state; it must never be restored from."""
        if self._snapshot_store is not None:
            snap_height = self._snapshot_store.snapshot_height()
            if snap_height is not None and snap_height > fork_height:
                self._snapshot_store.clear()

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------
    @property
    def total_size_bytes(self) -> int:
        return sum(block.size_bytes for block in self._store.iter_blocks())
