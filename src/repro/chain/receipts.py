"""Execution receipts and event logs.

Every transaction applied to a chain produces a receipt recording whether
it succeeded, how much gas it burned, and which contract events it
emitted.  Receipts are how provenance capture hooks observe on-chain
activity without re-executing it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class Event:
    """A structured event emitted during transaction execution."""

    name: str
    source: str                      # contract address or subsystem name
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_canonical(self) -> dict:
        return {"name": self.name, "source": self.source, "data": dict(self.data)}


@dataclass
class TransactionReceipt:
    """Outcome of applying one transaction."""

    tx_id: str
    success: bool
    gas_used: int = 0
    output: Any = None
    error: str | None = None
    events: list[Event] = field(default_factory=list)
    block_height: int | None = None

    def to_canonical(self) -> dict:
        return {
            "tx_id": self.tx_id,
            "success": self.success,
            "gas_used": self.gas_used,
            "error": self.error or "",
            "events": [e.to_canonical() for e in self.events],
            "block_height": -1 if self.block_height is None else self.block_height,
        }
