"""Transaction mempool.

Pending transactions wait here until a consensus engine selects a batch
for the next block.  Ordering is by fee (descending) then arrival (FIFO),
which matches the "highest fee first" policy of public chains while
degenerating to FIFO on permissioned chains where fees are zero.
"""

from __future__ import annotations

import heapq
from typing import Iterable

from ..errors import QueueFull
from .transaction import Transaction


class Mempool:
    """A bounded, deduplicating, fee-prioritized transaction pool.

    Dedup and ordering key on ``tx.tx_id``, which the transaction caches
    after first computation — admission is one hash for a fresh
    transaction and a dict probe for a duplicate.  Removed transactions
    leave stale heap entries that are skipped lazily; a stale counter
    keeps :meth:`peek_batch` from sorting the whole heap.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._heap: list[tuple[int, int, str]] = []  # (-fee, seq, tx_id)
        self._by_id: dict[str, Transaction] = {}
        self._seq = 0
        self._stale = 0  # heap entries whose tx was removed
        self.total_accepted = 0
        self.total_rejected = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, tx_id: str) -> bool:
        return tx_id in self._by_id

    # ------------------------------------------------------------------
    @property
    def free_capacity(self) -> int:
        return self.capacity - len(self._by_id)

    def _raise_full(self, rejected_count: int = 1) -> None:
        self.total_rejected += rejected_count
        raise QueueFull(
            "mempool full",
            depth=len(self._by_id),
            capacity=self.capacity,
            high_watermark=self.capacity,
        )

    def add(self, tx: Transaction) -> bool:
        """Add ``tx``; returns ``False`` for duplicates.

        A full pool raises :class:`~repro.errors.QueueFull` — a
        structured backpressure signal carrying depth and capacity, not
        a verdict on the transaction (it still subclasses
        ``InvalidTransaction`` for older callers).
        """
        tx.validate()
        tx_id = tx.tx_id
        if tx_id in self._by_id:
            self.total_rejected += 1
            return False
        if len(self._by_id) >= self.capacity:
            self._raise_full()
        self._by_id[tx_id] = tx
        heapq.heappush(self._heap, (-tx.fee, self._seq, tx_id))
        self._seq += 1
        self.total_accepted += 1
        return True

    def add_many(self, txs: Iterable[Transaction]) -> int:
        """Add several transactions; returns how many were new."""
        return sum(1 for tx in txs if self.add(tx))

    def add_batch(self, txs: Iterable[Transaction]) -> tuple[int, int]:
        """One admission call for a whole batch.

        Returns ``(accepted, duplicates)``.  The batch surface the
        ingest pipeline drains through: validation, dedup, and heap
        pushes run in one pass with the bookkeeping counters updated
        once, instead of one full :meth:`add` round-trip per
        transaction.  Raises :class:`~repro.errors.QueueFull` *before*
        admitting anything if the genuinely-new transactions (duplicates
        take no space) cannot all fit — batched admission is
        all-or-nothing so the caller's queue keeps the overflow.
        """
        by_id = self._by_id
        novel: list[Transaction] = []
        novel_ids: set[str] = set()
        duplicates = 0
        for tx in txs:
            tx.validate()
            tx_id = tx.tx_id
            if tx_id in by_id or tx_id in novel_ids:
                duplicates += 1
                continue
            novel_ids.add(tx_id)
            novel.append(tx)
        if len(by_id) + len(novel) > self.capacity:
            self._raise_full(rejected_count=len(novel))
        heap = self._heap
        seq = self._seq
        for tx in novel:
            by_id[tx.tx_id] = tx
            heapq.heappush(heap, (-tx.fee, seq, tx.tx_id))
            seq += 1
        self._seq = seq
        self.total_accepted += len(novel)
        self.total_rejected += duplicates
        return len(novel), duplicates

    def pop_batch(self, max_count: int) -> list[Transaction]:
        """Remove and return up to ``max_count`` transactions in priority
        order (fee desc, then FIFO)."""
        batch: list[Transaction] = []
        while self._heap and len(batch) < max_count:
            _, _, tx_id = heapq.heappop(self._heap)
            tx = self._by_id.pop(tx_id, None)
            if tx is not None:  # skip entries removed via `remove`
                batch.append(tx)
            else:
                self._stale -= 1
        return batch

    def peek_batch(self, max_count: int) -> list[Transaction]:
        """Return (without removing) the next batch in priority order.

        O(n + k log n) via a partial selection over the heap — at most
        ``max_count`` plus the known number of stale entries are sorted,
        not the whole pool.
        """
        want = max_count + self._stale
        batch = []
        for _, _, tx_id in heapq.nsmallest(want, self._heap):
            tx = self._by_id.get(tx_id)
            if tx is not None:
                batch.append(tx)
                if len(batch) >= max_count:
                    break
        return batch

    def remove(self, tx_ids: Iterable[str]) -> int:
        """Drop transactions (e.g., already committed by a peer's block)."""
        removed = 0
        for tx_id in tx_ids:
            if self._by_id.pop(tx_id, None) is not None:
                removed += 1
        # Stale heap entries are lazily skipped in pop_batch.
        self._stale += removed
        return removed

    def clear(self) -> None:
        self._heap.clear()
        self._by_id.clear()
        self._stale = 0
