"""Header-only light client.

RQ1 raises "issues such as online or offline querying and determining
who can query and verify the provenance" (§1).  A light client answers
the *offline verifier* case: it syncs only block headers (32-byte-ish
each), yet can verify

* that a transaction was committed (header Merkle root + inclusion
  proof), and
* that a provenance record was anchored (record → batch root via the
  record proof, batch root → anchor transaction, anchor transaction →
  header via the transaction proof),

without trusting the full node that served the proofs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.merkle import MerkleProof, verify_proof
from ..errors import ChainError, TamperDetected
from .block import BlockHeader, GENESIS_PREV_HASH
from .transaction import Transaction


@dataclass(frozen=True)
class LightAnchorBundle:
    """Everything a light client needs to verify one anchored record."""

    record_proof: MerkleProof       # record digest -> batch merkle root
    batch_root: bytes
    anchor_tx: Transaction          # carries the batch root on-chain
    tx_proof: MerkleProof           # anchor tx -> header merkle root
    block_height: int


class LightClient:
    """Tracks a chain's headers and verifies proofs against them."""

    def __init__(self, chain_id: str) -> None:
        self.chain_id = chain_id
        self._headers: list[BlockHeader] = []
        # Hash of the current head, computed once per accepted header so
        # linkage checks never re-hash history (headers may be shared
        # with a full node whose own caches we do not rely on).
        self._head_hash: bytes | None = None

    # ------------------------------------------------------------------
    # Header sync
    # ------------------------------------------------------------------
    def submit_header(self, header: BlockHeader) -> None:
        """Accept the next header; linkage is verified on arrival, so a
        forged or out-of-order header is rejected immediately."""
        if not self._headers:
            if header.height != 0 or header.prev_hash != GENESIS_PREV_HASH:
                raise ChainError("first header must be a genesis header")
        else:
            head = self._headers[-1]
            if header.height != head.height + 1:
                raise ChainError(
                    f"expected header height {head.height + 1}, "
                    f"got {header.height}"
                )
            if header.prev_hash != self._head_hash:
                raise TamperDetected(
                    f"header {header.height} does not link to our head"
                )
        self._headers.append(header)
        self._head_hash = header.block_hash

    def sync_from(self, chain) -> int:
        """Pull any headers we are missing from a full node."""
        pulled = 0
        for block in chain.blocks[len(self._headers):]:
            self.submit_header(block.header)
            pulled += 1
        return pulled

    @property
    def height(self) -> int:
        return len(self._headers) - 1

    def header_at(self, height: int) -> BlockHeader:
        if not 0 <= height < len(self._headers):
            raise ChainError(f"light client has no header at {height}")
        return self._headers[height]

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify_transaction(self, tx: Transaction, proof: MerkleProof,
                           height: int) -> bool:
        """Was ``tx`` committed at ``height``?  Needs only the header."""
        header = self.header_at(height)
        return verify_proof(header.merkle_root, tx.tx_hash, proof)

    def verify_anchored_record(self, record: dict,
                               bundle: LightAnchorBundle) -> bool:
        """Three-hop verification of an anchored provenance record.

        1. the record digest is under the bundle's batch root;
        2. the anchor transaction commits exactly that batch root;
        3. the anchor transaction is in the header we hold for the
           claimed height.
        """
        from ..provenance.records import record_digest
        from ..crypto.merkle import leaf_hash

        digest = record_digest(record)
        if bundle.record_proof.root_from(leaf_hash(digest)) != \
                bundle.batch_root:
            return False
        if bundle.anchor_tx.payload.get("merkle_root") != bundle.batch_root:
            return False
        return self.verify_transaction(bundle.anchor_tx, bundle.tx_proof,
                                       bundle.block_height)
