"""Blockchain substrate: transactions, blocks, the chain, and state.

This package implements the structure of the paper's Figure 2 — blocks
carrying a Merkle root over their transactions, chained by previous-block
hashes — plus the supporting machinery every surveyed system assumes:
a mempool, a deterministic state machine, and execution receipts.
"""

from .transaction import Transaction, TxKind
from .block import Block, BlockHeader, GENESIS_PREV_HASH
from .blockchain import Blockchain, ChainParams
from .mempool import Mempool
from .state import StateStore
from .receipts import Event, TransactionReceipt
from .lightclient import LightAnchorBundle, LightClient

__all__ = [
    "Transaction",
    "TxKind",
    "Block",
    "BlockHeader",
    "GENESIS_PREV_HASH",
    "Blockchain",
    "ChainParams",
    "Mempool",
    "StateStore",
    "Event",
    "TransactionReceipt",
    "LightAnchorBundle",
    "LightClient",
]
