"""Deterministic key-value state machine with snapshots.

The chain's *state* is what transactions mutate: account balances, contract
storage, registered provenance anchors.  A flat namespaced key-value store
is enough for every system in the library, and keeping it simple makes
determinism easy to audit.

Snapshots support two distinct users:

* contract revert semantics — the runtime snapshots before each call and
  rolls back on :class:`~repro.errors.ContractReverted`;
* O(delta) reorgs — :class:`~repro.chain.blockchain.Blockchain` opens one
  snapshot per committed block and rolls the stack back to the fork point
  instead of replaying from genesis.  :meth:`prune_oldest_snapshot` lets
  it bound the journal to a reorg window.

Performance notes: a per-namespace index makes :meth:`items` O(|namespace|)
instead of a full-store scan, and :meth:`state_root` is maintained
incrementally — writes mark keys dirty, and the root call folds only the
dirty keys into an order-independent accumulator (O(changes since the last
root), not O(state)).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ChainError


class StateStore:
    """Namespaced key-value state with copy-on-write snapshots.

    Keys are ``(namespace, key)`` string pairs.  Balances live in the
    ``"balance"`` namespace as ints.

    >>> state = StateStore()
    >>> state.credit("alice", 100)
    >>> snap = state.snapshot()
    >>> state.debit("alice", 30)
    >>> state.balance("alice")
    70
    >>> state.rollback(snap)
    >>> state.balance("alice")
    100
    """

    BALANCE_NS = "balance"

    def __init__(self) -> None:
        self._data: dict[tuple[str, str], Any] = {}
        # Per-namespace index: namespace -> {key: value} (values shared
        # with _data, never copied).
        self._ns: dict[str, dict[str, Any]] = {}
        # Undo journal: stack of (snapshot_id, [(key, had, old), ...]).
        # Ids are monotonic so pruning the bottom frame never renumbers
        # the handles still on the stack.
        self._journal: list[tuple[int, list[tuple[tuple[str, str], bool, Any]]]] = []
        self._next_snapshot_id = 0
        # Incremental state-root bookkeeping: per-entry digest
        # contributions XOR-folded into an accumulator, refreshed lazily
        # for dirty keys at state_root() time.
        self._root_acc = 0
        self._entry_digests: dict[tuple[str, str], int] = {}
        self._dirty: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._data.get((namespace, key), default)

    def set(self, namespace: str, key: str, value: Any) -> None:
        full_key = (namespace, key)
        if self._journal:
            had = full_key in self._data
            self._journal[-1][1].append(
                (full_key, had, self._data.get(full_key))
            )
        self._write(full_key, value)

    def delete(self, namespace: str, key: str) -> None:
        full_key = (namespace, key)
        if full_key in self._data:
            if self._journal:
                self._journal[-1][1].append(
                    (full_key, True, self._data[full_key])
                )
            self._erase(full_key)

    def contains(self, namespace: str, key: str) -> bool:
        return (namespace, key) in self._data

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs within a namespace (sorted).

        Served from the per-namespace index: O(|namespace| log) rather
        than a scan over the whole store.
        """
        bucket = self._ns.get(namespace)
        if not bucket:
            return iter(())
        return iter(sorted(bucket.items()))

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Internal single mutation path (keeps index + root bookkeeping
    # consistent for sets, deletes, and rollback restores alike)
    # ------------------------------------------------------------------
    def _write(self, full_key: tuple[str, str], value: Any) -> None:
        self._data[full_key] = value
        self._ns.setdefault(full_key[0], {})[full_key[1]] = value
        self._dirty.add(full_key)

    def _erase(self, full_key: tuple[str, str]) -> None:
        if full_key not in self._data:
            return
        del self._data[full_key]
        bucket = self._ns.get(full_key[0])
        if bucket is not None:
            bucket.pop(full_key[1], None)
            if not bucket:
                del self._ns[full_key[0]]
        self._dirty.add(full_key)

    # ------------------------------------------------------------------
    # Bulk export / import (state snapshots for durable storage)
    # ------------------------------------------------------------------
    def dump_entries(self) -> list[tuple[str, str, Any]]:
        """Every entry as ``(namespace, key, value)``, sorted — the
        materialized image a :class:`~repro.persist.stores.StateSnapshotStore`
        checkpoints.  Values are shared, not copied; treat as read-only."""
        return [(ns, key, value)
                for (ns, key), value in sorted(self._data.items())]

    def load_entries(self, entries) -> None:
        """Reset the store to exactly ``entries`` (restores a snapshot).

        Drops any open snapshot journal — a restored store starts a fresh
        undo history, the same as a process restart.
        """
        self._data.clear()
        self._ns.clear()
        self._journal.clear()
        self._root_acc = 0
        self._entry_digests.clear()
        self._dirty.clear()
        for namespace, key, value in entries:
            self._write((namespace, key), value)

    # ------------------------------------------------------------------
    # Balances
    # ------------------------------------------------------------------
    def balance(self, account: str) -> int:
        return int(self.get(self.BALANCE_NS, account, 0))

    def credit(self, account: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        self.set(self.BALANCE_NS, account, self.balance(account) + amount)

    def debit(self, account: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        current = self.balance(account)
        if current < amount:
            raise ChainError(
                f"insufficient balance: {account} has {current}, needs {amount}"
            )
        self.set(self.BALANCE_NS, account, current - amount)

    def transfer(self, src: str, dst: str, amount: int) -> None:
        self.debit(src, amount)
        self.credit(dst, amount)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Open a snapshot; returns a handle for :meth:`rollback`."""
        handle = self._next_snapshot_id
        self._next_snapshot_id += 1
        self._journal.append((handle, []))
        return handle

    def commit_snapshot(self, handle: int) -> None:
        """Discard the undo log for ``handle`` (changes become permanent
        relative to that snapshot), folding it into the parent if any."""
        self._check_handle(handle)
        _, entries = self._journal.pop()
        if self._journal:
            # Parent snapshot must still be able to undo these changes.
            self._journal[-1][1].extend(entries)

    def rollback(self, handle: int) -> None:
        """Undo every change made since ``handle`` was taken."""
        self._check_handle(handle)
        _, entries = self._journal.pop()
        for full_key, had, old in reversed(entries):
            if had:
                self._write(full_key, old)
            else:
                self._erase(full_key)

    def drain_snapshot_delta(
        self, handle: int
    ) -> list[tuple[str, str, bool, Any]]:
        """Commit the top snapshot, returning the *net* change set made
        under it as ``(namespace, key, present, value)`` ops — one op per
        touched key, in first-touch order, with ``present=False`` marking
        a deletion.  Feeding the ops to :meth:`apply_delta` on a store
        holding the pre-snapshot content reproduces this store's content
        exactly (and therefore its :meth:`state_root`) — the wire format
        the process-pool executor ships instead of re-executing blocks
        in the parent.
        """
        self._check_handle(handle)
        delta: list[tuple[str, str, bool, Any]] = []
        seen: set[tuple[str, str]] = set()
        for full_key, _, _ in self._journal[-1][1]:
            if full_key in seen:
                continue
            seen.add(full_key)
            if full_key in self._data:
                delta.append(
                    (full_key[0], full_key[1], True, self._data[full_key])
                )
            else:
                delta.append((full_key[0], full_key[1], False, None))
        self.commit_snapshot(handle)
        return delta

    def apply_delta(self, delta) -> None:
        """Apply a :meth:`drain_snapshot_delta` change set.  Journaled
        like any other mutation, so a snapshot taken before the apply
        rolls the whole delta back."""
        for namespace, key, present, value in delta:
            if present:
                self.set(namespace, key, value)
            else:
                self.delete(namespace, key)

    def prune_oldest_snapshot(self) -> None:
        """Drop the *bottom* journal frame, abandoning its undo info.

        Used by the chain to bound the reorg journal: state older than the
        reorg window becomes permanent.  Handles of frames still on the
        stack are unaffected (ids are monotonic, not positional).
        """
        if not self._journal:
            raise ChainError("no snapshot to prune")
        del self._journal[0]

    @property
    def open_snapshots(self) -> int:
        return len(self._journal)

    def _check_handle(self, handle: int) -> None:
        if not self._journal or handle != self._journal[-1][0]:
            top = self._journal[-1][0] if self._journal else None
            raise ChainError(
                f"snapshot handles must nest: got {handle}, expected {top}"
            )

    # ------------------------------------------------------------------
    # Hashing (state commitments)
    # ------------------------------------------------------------------
    def state_root(self) -> bytes:
        """Deterministic digest over the full state (cheap state anchor).

        Incrementally maintained: each entry contributes
        ``H(namespace, key, value)`` XOR-folded into an accumulator;
        writes only mark keys dirty and this call refreshes the dirty
        contributions, so the cost is O(changes since the last call).
        The digest is order-independent but content-determined: two
        stores holding the same entries produce the same root however
        they got there.  (An XOR set-hash is not collision-resistant
        against adversarial *entry* choice — acceptable for a simulation
        anchor; entries here are produced by deterministic executors.)
        """
        from ..crypto.hashing import hash_bytes, hash_canonical

        if self._dirty:
            acc = self._root_acc
            digests = self._entry_digests
            for full_key in self._dirty:
                old = digests.pop(full_key, 0)
                acc ^= old
                if full_key in self._data:
                    new = int.from_bytes(
                        hash_canonical(
                            [full_key[0], full_key[1],
                             self._data[full_key]]
                        ),
                        "big",
                    )
                    digests[full_key] = new
                    acc ^= new
            self._root_acc = acc
            self._dirty.clear()
        body = (
            len(self._data).to_bytes(8, "big")
            + self._root_acc.to_bytes(32, "big")
        )
        return hash_bytes(body, b"state-root-v2:")
