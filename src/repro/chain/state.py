"""Deterministic key-value state machine with snapshots.

The chain's *state* is what transactions mutate: account balances, contract
storage, registered provenance anchors.  A flat namespaced key-value store
is enough for every system in the library, and keeping it simple makes
determinism easy to audit.

Snapshots support contract revert semantics: the runtime snapshots before
each call and rolls back on :class:`~repro.errors.ContractReverted`.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import ChainError


class StateStore:
    """Namespaced key-value state with copy-on-write snapshots.

    Keys are ``(namespace, key)`` string pairs.  Balances live in the
    ``"balance"`` namespace as ints.

    >>> state = StateStore()
    >>> state.credit("alice", 100)
    >>> snap = state.snapshot()
    >>> state.debit("alice", 30)
    >>> state.balance("alice")
    70
    >>> state.rollback(snap)
    >>> state.balance("alice")
    100
    """

    BALANCE_NS = "balance"

    def __init__(self) -> None:
        self._data: dict[tuple[str, str], Any] = {}
        # Undo journal: list of (key, had_value, old_value) per snapshot.
        self._journal: list[list[tuple[tuple[str, str], bool, Any]]] = []

    # ------------------------------------------------------------------
    # Raw access
    # ------------------------------------------------------------------
    def get(self, namespace: str, key: str, default: Any = None) -> Any:
        return self._data.get((namespace, key), default)

    def set(self, namespace: str, key: str, value: Any) -> None:
        full_key = (namespace, key)
        if self._journal:
            had = full_key in self._data
            self._journal[-1].append((full_key, had, self._data.get(full_key)))
        self._data[full_key] = value

    def delete(self, namespace: str, key: str) -> None:
        full_key = (namespace, key)
        if full_key in self._data:
            if self._journal:
                self._journal[-1].append((full_key, True, self._data[full_key]))
            del self._data[full_key]

    def contains(self, namespace: str, key: str) -> bool:
        return (namespace, key) in self._data

    def items(self, namespace: str) -> Iterator[tuple[str, Any]]:
        """Iterate ``(key, value)`` pairs within a namespace (sorted)."""
        selected = [
            (k[1], v) for k, v in self._data.items() if k[0] == namespace
        ]
        selected.sort(key=lambda kv: kv[0])
        return iter(selected)

    def __len__(self) -> int:
        return len(self._data)

    # ------------------------------------------------------------------
    # Balances
    # ------------------------------------------------------------------
    def balance(self, account: str) -> int:
        return int(self.get(self.BALANCE_NS, account, 0))

    def credit(self, account: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("credit amount must be non-negative")
        self.set(self.BALANCE_NS, account, self.balance(account) + amount)

    def debit(self, account: str, amount: int) -> None:
        if amount < 0:
            raise ChainError("debit amount must be non-negative")
        current = self.balance(account)
        if current < amount:
            raise ChainError(
                f"insufficient balance: {account} has {current}, needs {amount}"
            )
        self.set(self.BALANCE_NS, account, current - amount)

    def transfer(self, src: str, dst: str, amount: int) -> None:
        self.debit(src, amount)
        self.credit(dst, amount)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """Open a snapshot; returns a handle for :meth:`rollback`."""
        self._journal.append([])
        return len(self._journal) - 1

    def commit_snapshot(self, handle: int) -> None:
        """Discard the undo log for ``handle`` (changes become permanent
        relative to that snapshot), folding it into the parent if any."""
        self._check_handle(handle)
        entries = self._journal.pop()
        if self._journal:
            # Parent snapshot must still be able to undo these changes.
            self._journal[-1].extend(entries)

    def rollback(self, handle: int) -> None:
        """Undo every change made since ``handle`` was taken."""
        self._check_handle(handle)
        entries = self._journal.pop()
        for full_key, had, old in reversed(entries):
            if had:
                self._data[full_key] = old
            else:
                self._data.pop(full_key, None)

    def _check_handle(self, handle: int) -> None:
        if handle != len(self._journal) - 1:
            raise ChainError(
                f"snapshot handles must nest: got {handle}, "
                f"expected {len(self._journal) - 1}"
            )

    # ------------------------------------------------------------------
    # Hashing (state commitments)
    # ------------------------------------------------------------------
    def state_root(self) -> bytes:
        """Deterministic digest over the full state (cheap state anchor)."""
        from ..crypto.hashing import hash_canonical

        flat = {
            f"{ns}\x00{key}": value for (ns, key), value in self._data.items()
        }
        return hash_canonical(flat)
