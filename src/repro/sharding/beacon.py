"""Beacon chain: one root of trust over N independent shard chains.

Each sealing round, the per-shard block hashes produced in that round are
batched into a Merkle tree and the root is committed in a single beacon
transaction (the :class:`~repro.provenance.anchor.AnchorService` receipt
idiom, applied one level up: shards anchor records, the beacon anchors
shards).  A verifier holding only the *beacon* headers can then check any
shard block with a :class:`BeaconLightBundle` — shard block hash → round
root → beacon anchor transaction → beacon header — without trusting any
shard full node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..chain import Blockchain, BlockHeader, ChainParams, Transaction, TxKind
from ..crypto.merkle import MerkleProof, MerkleTree, leaf_hash, verify_proof
from ..errors import ShardError


def shard_block_leaf(shard_id: int, height: int, block_hash: bytes,
                     state_root: bytes = b"") -> dict:
    """Canonical leaf content committing one shard block to the beacon.

    ``state_root`` commits the shard's post-execution state at this
    block when known (sealing rounds tag the shard's head block with
    it); ``b""`` means "not committed".  Snapshot sync relies on this:
    a state image downloaded from an untrusted peer is accepted only if
    its recomputed root matches the beacon-anchored commitment.

    The key is *omitted* when there is no commitment, so leaves anchored
    before state roots existed keep their exact hash — rounds persisted
    by older deployments still verify after restore.  (The two forms
    cannot be confused: the key set is part of the canonical encoding.)
    """
    leaf = {"shard": shard_id, "height": height, "block_hash": block_hash}
    if state_root:
        leaf["state_root"] = state_root
    return leaf


def _normalize_entries(
    entries: Sequence[tuple],
) -> list[tuple[int, int, bytes, bytes]]:
    """Accept ``(shard, height, hash)`` or ``(..., state_root)`` tuples."""
    out = []
    for entry in entries:
        if len(entry) == 3:
            sid, h, bh = entry
            out.append((int(sid), int(h), bh, b""))
        else:
            sid, h, bh, sr = entry
            out.append((int(sid), int(h), bh, sr))
    return out


@dataclass(frozen=True)
class BeaconReceipt:
    """Where one round's shard-root commitment landed on the beacon."""

    round_no: int
    merkle_root: bytes
    block_height: int           # beacon chain height of the anchor tx
    tx_id: str
    leaf_count: int


@dataclass(frozen=True)
class ShardBlockProof:
    """Full-node proof that a shard block is anchored in the beacon."""

    shard_id: int
    height: int                 # shard chain height
    block_hash: bytes
    merkle_proof: MerkleProof   # leaf → round root
    round_root: bytes
    round_no: int
    beacon_height: int
    beacon_tx_id: str
    state_root: bytes = b""     # anchored state commitment (b"" = none)

    @property
    def leaf(self) -> dict:
        return shard_block_leaf(self.shard_id, self.height,
                                self.block_hash, self.state_root)


@dataclass(frozen=True)
class BeaconLightBundle:
    """Header-only verification of one shard block.

    Mirrors :class:`~repro.chain.lightclient.LightAnchorBundle`, one
    level up: the "record" is a shard block hash and the "batch" is a
    sealing round.
    """

    shard_proof: ShardBlockProof
    anchor_tx: Transaction      # beacon tx carrying the round root
    tx_proof: MerkleProof       # anchor tx → beacon header merkle root

    def verify(self, beacon_header: BlockHeader) -> bool:
        """Three-hop check against a beacon block header.

        1. the shard block leaf is under the round root;
        2. the beacon anchor transaction commits exactly that root;
        3. the anchor transaction is in the given beacon header.
        """
        proof = self.shard_proof
        if proof.merkle_proof.root_from(
            leaf_hash(proof.leaf)
        ) != proof.round_root:
            return False
        if self.anchor_tx.payload.get("merkle_root") != proof.round_root:
            return False
        if beacon_header.height != proof.beacon_height:
            return False
        return verify_proof(beacon_header.merkle_root,
                            self.anchor_tx.tx_hash, self.tx_proof)


class BeaconChain:
    """A :class:`Blockchain` whose payload is shard-root commitments."""

    def __init__(self, params: ChainParams | None = None,
                 sender: str = "beacon-sealer",
                 store=None, snapshot_store=None) -> None:
        self.chain = Blockchain(params or ChainParams(chain_id="beacon"),
                                store=store, snapshot_store=snapshot_store)
        self.sender = sender
        self.receipts: list[BeaconReceipt] = []
        self._trees: list[MerkleTree] = []
        # (shard_id, shard height) -> (round index, leaf index)
        self._locator: dict[tuple[int, int], tuple[int, int]] = {}
        # Per-round (shard_id, height, block_hash, state_root) entries,
        # kept so the round trees can be dumped/rebuilt across a restart.
        self._round_entries: list[list[tuple[int, int, bytes, bytes]]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self.chain.height

    @property
    def rounds_anchored(self) -> int:
        return len(self.receipts)

    def is_anchored(self, shard_id: int, height: int) -> bool:
        return (shard_id, height) in self._locator

    def receipt_for(self, shard_id: int, height: int) -> BeaconReceipt | None:
        loc = self._locator.get((shard_id, height))
        return self.receipts[loc[0]] if loc else None

    def anchored_entry(
        self, shard_id: int, height: int
    ) -> tuple[int, int, bytes, bytes] | None:
        """The committed ``(shard, height, block_hash, state_root)``
        entry for one shard block, or ``None`` when not anchored."""
        loc = self._locator.get((shard_id, height))
        if loc is None:
            return None
        return self._round_entries[loc[0]][loc[1]]

    # ------------------------------------------------------------------
    # Anchoring
    # ------------------------------------------------------------------
    def anchor_round(
        self,
        entries: Sequence[tuple],
        timestamp: int = 0,
    ) -> BeaconReceipt:
        """Commit one round's shard blocks: ``(shard_id, height, hash)``
        or ``(shard_id, height, hash, state_root)`` tuples.

        One beacon transaction per round, regardless of shard count —
        the beacon's load grows with *rounds*, not with traffic.
        """
        if not entries:
            raise ShardError("cannot anchor an empty round")
        entries = _normalize_entries(entries)
        round_no = len(self.receipts)
        leaves = [shard_block_leaf(sid, h, bh, sr)
                  for sid, h, bh, sr in entries]
        in_batch: set[tuple[int, int]] = set()
        for sid, h, _, _ in entries:
            if (sid, h) in self._locator or (sid, h) in in_batch:
                raise ShardError(
                    f"shard {sid} block {h} is already beacon-anchored"
                )
            in_batch.add((sid, h))
        tree = MerkleTree(leaves)
        tx = Transaction(
            sender=self.sender,
            kind=TxKind.PROVENANCE,
            payload={
                "anchor_id": f"beacon-round-{round_no:06d}",
                "merkle_root": tree.root,
                "round": round_no,
                "leaf_count": len(leaves),
                "mode": "shard_roots",
            },
            timestamp=timestamp,
        ).seal()
        self.chain.append_block(
            self.chain.build_block([tx], timestamp=timestamp,
                                   proposer=self.sender)
        )
        receipt = BeaconReceipt(
            round_no=round_no,
            merkle_root=tree.root,
            block_height=self.chain.height,
            tx_id=tx.tx_id,
            leaf_count=len(leaves),
        )
        self.receipts.append(receipt)
        self._trees.append(tree)
        self._round_entries.append(list(entries))
        for index, (sid, h, _, _) in enumerate(entries):
            self._locator[(sid, h)] = (round_no, index)
        return receipt

    # ------------------------------------------------------------------
    # Durability (state dump/restore for persistent deployments)
    # ------------------------------------------------------------------
    def dump_state(self) -> dict:
        """Round commitments as a canonical-encodable mapping.  The
        beacon *chain* persists through its own block store; this covers
        the derived proof state (trees, locator, receipts)."""
        return {
            "receipts": [
                {
                    "round_no": r.round_no,
                    "merkle_root": r.merkle_root,
                    "block_height": r.block_height,
                    "tx_id": r.tx_id,
                    "leaf_count": r.leaf_count,
                }
                for r in self.receipts
            ],
            "rounds": [
                [[sid, h, bh, sr] for sid, h, bh, sr in entries]
                for entries in self._round_entries
            ],
        }

    def restore_state(self, state) -> None:
        """Inverse of :meth:`dump_state`; replaces all derived state.

        3-element round entries (written before state roots were
        committed) restore with an empty commitment; their leaves omit
        the ``state_root`` key entirely, so they re-hash to exactly the
        roots their anchor transactions sealed."""
        self.receipts = [
            BeaconReceipt(
                round_no=r["round_no"],
                merkle_root=r["merkle_root"],
                block_height=r["block_height"],
                tx_id=r["tx_id"],
                leaf_count=r["leaf_count"],
            )
            for r in state["receipts"]
        ]
        self._trees = []
        self._round_entries = []
        self._locator = {}
        for round_no, entries in enumerate(state["rounds"]):
            entries = _normalize_entries(entries)
            self._round_entries.append(entries)
            self._trees.append(MerkleTree(
                [shard_block_leaf(sid, h, bh, sr)
                 for sid, h, bh, sr in entries]
            ))
            for index, (sid, h, _, _) in enumerate(entries):
                self._locator[(sid, h)] = (round_no, index)

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove_shard_block(self, shard_id: int, height: int,
                          block_hash: bytes) -> ShardBlockProof:
        loc = self._locator.get((shard_id, height))
        if loc is None:
            raise ShardError(
                f"shard {shard_id} block {height} is not beacon-anchored"
            )
        round_no, index = loc
        receipt = self.receipts[round_no]
        tree = self._trees[round_no]
        state_root = self._round_entries[round_no][index][3]
        leaf = shard_block_leaf(shard_id, height, block_hash, state_root)
        if tree.leaf(index) != leaf_hash(leaf):
            raise ShardError(
                f"shard {shard_id} block {height}: supplied hash does not "
                "match the anchored commitment"
            )
        return ShardBlockProof(
            shard_id=shard_id,
            height=height,
            block_hash=block_hash,
            merkle_proof=tree.prove(index),
            round_root=receipt.merkle_root,
            round_no=round_no,
            beacon_height=receipt.block_height,
            beacon_tx_id=receipt.tx_id,
            state_root=state_root,
        )

    def verify_shard_block(self, proof: ShardBlockProof) -> bool:
        """Full-node verification against the live beacon chain."""
        if proof.merkle_proof.root_from(
            leaf_hash(proof.leaf)
        ) != proof.round_root:
            return False
        found = self.chain.find_transaction(proof.beacon_tx_id)
        if found is None:
            return False
        block, tx = found
        if block.height != proof.beacon_height:
            return False
        return tx.payload.get("merkle_root") == proof.round_root

    def light_bundle(self, shard_id: int, height: int,
                     block_hash: bytes) -> BeaconLightBundle:
        """Everything a beacon-header-only verifier needs for one shard
        block (check with :meth:`BeaconLightBundle.verify`)."""
        proof = self.prove_shard_block(shard_id, height, block_hash)
        located = self.chain.prove_transaction(proof.beacon_tx_id)
        if located is None:  # pragma: no cover - receipts imply presence
            raise ShardError(
                f"beacon anchor tx {proof.beacon_tx_id[:12]} not on chain"
            )
        block, tx_proof = located
        anchor_tx = block.find_transaction(proof.beacon_tx_id)[1]
        return BeaconLightBundle(
            shard_proof=proof, anchor_tx=anchor_tx, tx_proof=tx_proof
        )
