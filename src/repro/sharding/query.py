"""Federated provenance queries over a sharded chain.

Scatter-gathers the per-shard :class:`ProvenanceQueryEngine`\\ s and
merges the results into one answer.  Verified queries compound three
layers of evidence per record:

1. the record's anchored Merkle proof on its home shard (the existing
   :class:`~repro.provenance.anchor.AnchoredProof` machinery),
2. a beacon proof that the shard block holding the anchor transaction is
   committed under a beacon header
   (:class:`~repro.sharding.beacon.ShardBlockProof`),
3. for offline verifiers, :meth:`federated_proof` packages both hops
   into a :class:`FederatedProof` checkable against a **single beacon
   block header** — the verifier needs no shard state at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..chain import BlockHeader
from ..chain.lightclient import LightAnchorBundle
from ..crypto.merkle import leaf_hash, verify_proof
from ..errors import QueryError, ShardError
from ..provenance.anchor import AnchoredProof
from ..provenance.records import record_digest
from .beacon import BeaconLightBundle
from .shardchain import Shard, ShardedChain


@dataclass(frozen=True)
class ShardedVerifiedAnswer:
    """A federated query result with per-record, per-shard evidence.

    Parallel tuples: ``records[i]`` came from shard ``shard_ids[i]``,
    carries anchored proof ``proofs[i]``, and its anchor block is
    beacon-committed iff ``beacon_verified[i]``.  ``verified`` is True
    only when every record passed *both* layers.
    """

    records: tuple[dict, ...]
    proofs: tuple[AnchoredProof | None, ...]
    shard_ids: tuple[int, ...]
    beacon_verified: tuple[bool, ...]
    verified: bool
    unanchored: tuple[str, ...] = ()


@dataclass(frozen=True)
class FederatedProof:
    """Offline evidence for one record, rooted in one beacon header.

    ``anchor_bundle`` walks record → batch root → anchor tx → shard
    header; ``beacon_bundle`` walks shard block hash → round root →
    beacon anchor tx → beacon header.  ``shard_header`` is the splice
    point, bound on both sides by hash.
    """

    shard_id: int
    record_id: str
    anchor_bundle: LightAnchorBundle
    shard_header: BlockHeader
    beacon_bundle: BeaconLightBundle

    def verify(self, record: dict, beacon_header: BlockHeader) -> bool:
        """Check ``record`` against a beacon header and nothing else."""
        bundle = self.anchor_bundle
        # Hop 1: record digest under the anchor batch root.
        if bundle.record_proof.root_from(
            leaf_hash(record_digest(record))
        ) != bundle.batch_root:
            return False
        # Hop 2: the anchor transaction commits that batch root and sits
        # in the shard header we were given.
        if bundle.anchor_tx.payload.get("merkle_root") != bundle.batch_root:
            return False
        if self.shard_header.height != bundle.block_height:
            return False
        if not verify_proof(self.shard_header.merkle_root,
                            bundle.anchor_tx.tx_hash, bundle.tx_proof):
            return False
        # Hop 3: that shard header is beacon-committed.
        shard_proof = self.beacon_bundle.shard_proof
        if shard_proof.shard_id != self.shard_id:
            return False
        if shard_proof.height != self.shard_header.height:
            return False
        if shard_proof.block_hash != self.shard_header.block_hash:
            return False
        return self.beacon_bundle.verify(beacon_header)

    @property
    def beacon_height(self) -> int:
        """Which beacon header to fetch for :meth:`verify`."""
        return self.beacon_bundle.shard_proof.beacon_height


class ShardedQueryEngine:
    """Scatter-gather queries across every shard's query engine."""

    def __init__(self, sharded: ShardedChain) -> None:
        self.sharded = sharded
        self.queries = 0
        self.shards_hit = 0

    # ------------------------------------------------------------------
    # Unverified federation
    # ------------------------------------------------------------------
    def _gather(
        self, run: Callable[[Shard], list[dict]]
    ) -> list[tuple[int, dict]]:
        """Run a per-shard query everywhere and merge chronologically.

        Handoffs put records about related subjects on *different*
        shards, so federated queries always fan out; single-shard
        fast paths belong to the per-shard engines.
        """
        self.queries += 1
        merged: list[tuple[int, dict]] = []
        for shard in self.sharded.shards:
            rows = run(shard)
            if rows:
                self.shards_hit += 1
                merged.extend((shard.shard_id, row) for row in rows)
        merged.sort(key=lambda pair: (pair[1].get("timestamp", 0),
                                      str(pair[1].get("record_id", ""))))
        return merged

    def history(self, subject: str) -> list[dict]:
        """All records about ``subject`` across every shard, oldest
        first."""
        return [row for _, row in
                self._gather(lambda s: s.query.history(subject))]

    def by_actor(self, actor: str) -> list[dict]:
        return [row for _, row in
                self._gather(lambda s: s.query.by_actor(actor))]

    def time_range(self, start: int, end: int) -> list[dict]:
        return [row for _, row in
                self._gather(lambda s: s.query.time_range(start, end))]

    def trace(self, *subjects: str) -> list[dict]:
        """Union of the subjects' histories (a cross-shard handoff chain:
        pass every identity the object had along the way)."""
        if not subjects:
            raise QueryError("trace needs at least one subject")
        wanted = set(subjects)
        return [row for _, row in self._gather(
            lambda s: [r for subject in wanted
                       for r in s.query.history(subject)]
        )]

    # ------------------------------------------------------------------
    # Verified federation
    # ------------------------------------------------------------------
    def history_verified(self, subject: str) -> ShardedVerifiedAnswer:
        return self._verified(lambda s: s.query.history(subject))

    def trace_verified(self, *subjects: str) -> ShardedVerifiedAnswer:
        if not subjects:
            raise QueryError("trace needs at least one subject")
        wanted = set(subjects)
        return self._verified(
            lambda s: [r for subject in wanted
                       for r in s.query.history(subject)]
        )

    def _verified(
        self, run: Callable[[Shard], list[dict]]
    ) -> ShardedVerifiedAnswer:
        rows = self._gather(run)
        records: list[dict] = []
        proofs: list[AnchoredProof | None] = []
        shard_ids: list[int] = []
        beacon_ok: list[bool] = []
        unanchored: list[str] = []
        all_good = bool(rows)
        for shard_id, record in rows:
            shard = self.sharded.shard(shard_id)
            record_id = str(record.get("record_id"))
            records.append(record)
            shard_ids.append(shard_id)
            if not shard.anchor.is_anchored(record_id):
                proofs.append(None)
                beacon_ok.append(False)
                unanchored.append(record_id)
                all_good = False
                continue
            proof = shard.anchor.prove(record_id)
            proofs.append(proof)
            if not shard.anchor.verify(record, proof):
                all_good = False
            beacon_ok.append(self._beacon_check(shard, proof))
            if not beacon_ok[-1]:
                all_good = False
        return ShardedVerifiedAnswer(
            records=tuple(records),
            proofs=tuple(proofs),
            shard_ids=tuple(shard_ids),
            beacon_verified=tuple(beacon_ok),
            verified=all_good,
            unanchored=tuple(unanchored),
        )

    def _beacon_check(self, shard: Shard, proof: AnchoredProof) -> bool:
        """Is the shard block holding this anchor beacon-committed?"""
        beacon = self.sharded.beacon
        height = proof.block_height
        try:
            block_hash = shard.chain.block_at(height).block_hash
            shard_proof = beacon.prove_shard_block(
                shard.shard_id, height, block_hash
            )
        except ShardError:
            return False
        return beacon.verify_shard_block(shard_proof)

    # ------------------------------------------------------------------
    # Offline proof packaging
    # ------------------------------------------------------------------
    def federated_proof(self, record_id: str,
                        subject: str | None = None) -> FederatedProof:
        """Package one record's full evidence chain for a verifier that
        holds only beacon headers (e.g. a
        :class:`~repro.chain.lightclient.LightClient` synced to the
        beacon).

        Record ids are unique per shard, not globally; pass the record's
        ``subject`` to resolve it on its home shard when tenants on
        different shards may reuse ids.
        """
        if subject is not None:
            shard = self.sharded.shard_for_subject(subject)
            if not shard.anchor.is_anchored(record_id):
                raise QueryError(
                    f"record {record_id!r} is not anchored on "
                    f"{subject!r}'s home shard"
                )
        else:
            for shard in self.sharded.shards:
                if shard.anchor.is_anchored(record_id):
                    break
            else:
                raise QueryError(f"record {record_id!r} is not anchored "
                                 "on any shard")
        anchor_bundle = shard.anchor.prove_for_light_client(record_id)
        shard_header = shard.chain.block_at(anchor_bundle.block_height).header
        beacon_bundle = self.sharded.beacon.light_bundle(
            shard.shard_id, shard_header.height, shard_header.block_hash
        )
        return FederatedProof(
            shard_id=shard.shard_id,
            record_id=record_id,
            anchor_bundle=anchor_bundle,
            shard_header=shard_header,
            beacon_bundle=beacon_bundle,
        )
