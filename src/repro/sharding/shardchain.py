"""``ShardedChain``: N independent chain stacks behind one facade.

Each shard owns a full vertical slice — :class:`Blockchain`,
:class:`Mempool`, :class:`ProvenanceDatabase`, :class:`AnchorService`,
:class:`ProvenanceQueryEngine` — so shards share *nothing* and, on a real
deployment, run on separate machines.  The facade:

* routes submitted transactions and ingested records to their home shard
  (:class:`~repro.sharding.router.ShardRouter`),
* seals one block per loaded shard per **round** (:meth:`seal_round`) and
  anchors every block produced in the round into the
  :class:`~repro.sharding.beacon.BeaconChain`,
* maintains the cross-shard lock table the two-phase-commit coordinator
  uses (a transaction touching a locked subject is deferred, not lost),
* reports per-shard seal timings so the scaling benchmark can model the
  deployment's critical path (shards seal concurrently; the round takes
  as long as its slowest shard plus the beacon commit).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..chain import Blockchain, ChainParams, Mempool, Transaction
from ..errors import ShardError
from ..provenance.anchor import AnchorReceipt, AnchorService
from ..provenance.query import ProvenanceQueryEngine, QueryCache
from ..storage.provdb import ProvenanceDatabase
from .beacon import BeaconChain, BeaconReceipt
from .router import ShardRouter, namespace_of


class Shard:
    """One shard's full stack (chain, mempool, database, anchors, queries).

    With a :class:`~repro.persist.durable.DurableStorage` attached, the
    chain, record database, and state snapshot live in the shard's store
    directory, and anchor-service state is checkpointed into the store's
    meta table — reopening the same directory restores the whole stack
    without genesis replay.  Mempool contents are deliberately *not*
    persisted: an unsealed transaction was never acknowledged as durable.
    """

    _ANCHOR_META_KEY = "anchor_state"

    def __init__(self, shard_id: int, params: ChainParams,
                 anchor_batch_size: int = 64,
                 storage=None, snapshot_interval: int = 0) -> None:
        self.shard_id = shard_id
        self.storage = storage
        if storage is None:
            self.chain = Blockchain(params)
            self.database = ProvenanceDatabase()
        else:
            self.chain = Blockchain(
                params,
                store=storage.blocks,
                snapshot_store=storage.state,
                snapshot_interval=snapshot_interval,
            )
            self.database = ProvenanceDatabase(store=storage.records)
        self.mempool = Mempool()
        self.anchor = AnchorService(
            self.chain,
            batch_size=anchor_batch_size,
            sender=f"shard-{shard_id}-anchor",
        )
        if storage is not None:
            anchor_state = storage.get_meta(self._ANCHOR_META_KEY)
            if anchor_state is not None:
                self.anchor.restore_state(anchor_state)
        self.query = ProvenanceQueryEngine(
            self.database, anchor_service=self.anchor, cache=QueryCache()
        )

    def checkpoint(self) -> None:
        """Persist anchor state + state snapshot + fsync (durable only)."""
        if self.storage is None:
            return
        self.storage.put_meta(self._ANCHOR_META_KEY,
                              self.anchor.dump_state())
        self.chain.checkpoint()
        self.storage.sync()

    def close(self) -> None:
        if self.storage is None:
            return
        self.checkpoint()
        self.storage.close()


@dataclass(frozen=True)
class ShardSealStats:
    """What one shard did in one sealing round.

    ``duration_s`` covers the shard's whole round of work: admission of
    the transactions routed to it since the previous round (accumulated
    by :meth:`ShardedChain.submit_many`) plus block build and execution.
    """

    txs_sealed: int
    blocks_produced: int
    duration_s: float
    mempool_backlog: int


@dataclass(frozen=True)
class RoundReport:
    """Outcome of one :meth:`ShardedChain.seal_round`."""

    round_no: int
    per_shard: Mapping[int, ShardSealStats]
    beacon_receipt: BeaconReceipt | None
    beacon_duration_s: float

    @property
    def txs_sealed(self) -> int:
        return sum(s.txs_sealed for s in self.per_shard.values())

    @property
    def critical_path_s(self) -> float:
        """Round wall time under the deployment model: shards seal in
        parallel (slowest shard dominates), then the beacon commits."""
        slowest = max(
            (s.duration_s for s in self.per_shard.values()), default=0.0
        )
        return slowest + self.beacon_duration_s

    @property
    def serial_s(self) -> float:
        """Single-machine time: every shard sealed back to back."""
        return (sum(s.duration_s for s in self.per_shard.values())
                + self.beacon_duration_s)


@dataclass
class SubmitReport:
    """Batch-submit outcome: accepted counts and lock-deferred leftovers."""

    accepted: dict[int, int] = field(default_factory=dict)
    deferred: list[Transaction] = field(default_factory=list)
    duplicates: int = 0

    @property
    def accepted_total(self) -> int:
        return sum(self.accepted.values())


class ShardedChain:
    """Facade over N shards, a router, a lock table, and the beacon."""

    _FACADE_META_KEY = "facade_state"
    _BEACON_META_KEY = "beacon_state"
    _LAYOUT_META_KEY = "layout"

    def __init__(
        self,
        n_shards: int,
        max_block_txs: int = 256,
        reorg_journal_depth: int = 64,
        anchor_batch_size: int = 64,
        chain_id_prefix: str = "shard",
        router: ShardRouter | None = None,
        storage_dir: str | None = None,
        snapshot_interval: int = 0,
        checkpoint_every_rounds: int = 0,
    ) -> None:
        if n_shards < 1:
            raise ShardError("need at least one shard")
        self.router = router or ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise ShardError("router shard count does not match")
        self.storage_dir = storage_dir
        self.checkpoint_every_rounds = checkpoint_every_rounds
        shard_storages: list[Any] = [None] * n_shards
        beacon_storage = None
        if storage_dir is not None:
            import os

            from ..persist.durable import DurableStorage

            beacon_storage = DurableStorage(
                os.path.join(storage_dir, "beacon")
            )
            layout = beacon_storage.get_meta(self._LAYOUT_META_KEY)
            if layout is None:
                beacon_storage.put_meta(self._LAYOUT_META_KEY,
                                        {"n_shards": n_shards})
            elif layout.get("n_shards") != n_shards:
                stored = layout.get("n_shards")
                beacon_storage.close()
                raise ShardError(
                    f"store directory was laid out for "
                    f"{stored} shards, not {n_shards}"
                )
            shard_storages = [
                DurableStorage(os.path.join(storage_dir, f"shard-{i}"))
                for i in range(n_shards)
            ]
        self._beacon_storage = beacon_storage
        self.shards = [
            Shard(
                i,
                ChainParams(
                    chain_id=f"{chain_id_prefix}-{i}",
                    max_block_txs=max_block_txs,
                    reorg_journal_depth=reorg_journal_depth,
                ),
                anchor_batch_size=anchor_batch_size,
                storage=shard_storages[i],
                snapshot_interval=snapshot_interval,
            )
            for i in range(n_shards)
        ]
        self.beacon = BeaconChain(
            ChainParams(chain_id=f"{chain_id_prefix}-beacon"),
            store=beacon_storage.blocks if beacon_storage else None,
            snapshot_store=beacon_storage.state if beacon_storage else None,
        )
        # (shard_id, subject) -> owning transfer id.  Guards cross-shard
        # atomicity: while a subject is mid-handoff, conflicting writes
        # are deferred instead of interleaving with the 2PC phases.
        self._locks: dict[tuple[int, str], str] = {}
        # Highest block height per shard already committed to the beacon.
        self._anchored_height = [0] * n_shards
        # Per-shard admission time (hashing + mempool insert) accumulated
        # by submit_many between rounds; seal_round folds it into each
        # shard's round duration — on a real deployment every shard node
        # pays its own admission cost, so the scaling model must too.
        self._pending_ingest_s = [0.0] * n_shards
        self.rounds_sealed = 0
        self._coordinators: list[Any] = []
        if beacon_storage is not None:
            beacon_state = beacon_storage.get_meta(self._BEACON_META_KEY)
            if beacon_state is not None:
                self.beacon.restore_state(beacon_state)
            facade = beacon_storage.get_meta(self._FACADE_META_KEY)
            if facade is not None:
                self.rounds_sealed = int(facade["rounds_sealed"])
                self._anchored_height = [int(h)
                                         for h in facade["anchored_height"]]
                # Presumed-abort: locks checkpointed mid-2PC are NOT
                # restored.  Their owning coordinator (and its timeout
                # machinery) died with the old process, so restoring them
                # would wedge the subjects forever; since handoff records
                # only materialize on full commit, dropping the locks
                # safely aborts the in-flight transfer.  (Durable transfer
                # state machines are the ROADMAP's 2PC-recovery item.)
                self._locks = {}

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every shard, the beacon, and the facade state so a
        reopened :class:`ShardedChain` on the same ``storage_dir`` resumes
        exactly here.  No-op for in-memory deployments."""
        if self._beacon_storage is None:
            return
        for shard in self.shards:
            shard.checkpoint()
        self._beacon_storage.put_meta(self._BEACON_META_KEY,
                                      self.beacon.dump_state())
        self._beacon_storage.put_meta(
            self._FACADE_META_KEY,
            {
                "rounds_sealed": self.rounds_sealed,
                "anchored_height": list(self._anchored_height),
                "locks": [[sid, subject, xid]
                          for (sid, subject), xid in self._locks.items()],
            },
        )
        self.beacon.chain.checkpoint()
        self._beacon_storage.sync()

    def close(self) -> None:
        """Checkpoint and release every store (reopenable afterwards)."""
        if self._beacon_storage is None:
            return
        self.checkpoint()
        for shard in self.shards:
            shard.storage.close()
        self._beacon_storage.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: int) -> Shard:
        if not 0 <= shard_id < len(self.shards):
            raise ShardError(f"no shard {shard_id}")
        return self.shards[shard_id]

    def shard_for_subject(self, subject: str) -> Shard:
        return self.shards[self.router.shard_for_subject(subject)]

    @property
    def total_txs_committed(self) -> int:
        return sum(len(s.chain.receipts) for s in self.shards)

    @property
    def mempool_backlog(self) -> int:
        return sum(len(s.mempool) for s in self.shards)

    def verify_all(self, deep: bool = False) -> None:
        """Audit every shard chain and the beacon (raises on tampering)."""
        for shard in self.shards:
            shard.chain.verify(deep=deep)
        self.beacon.chain.verify(deep=deep)

    # ------------------------------------------------------------------
    # Locks (the 2PC coordinator's table; see sharding.twophase)
    # ------------------------------------------------------------------
    def acquire_lock(self, shard_id: int, subject: str, xid: str) -> bool:
        key = (shard_id, subject)
        owner = self._locks.get(key)
        if owner is not None and owner != xid:
            return False
        self._locks[key] = xid
        return True

    def release_lock(self, shard_id: int, subject: str, xid: str) -> None:
        key = (shard_id, subject)
        if self._locks.get(key) == xid:
            del self._locks[key]

    def lock_owner(self, shard_id: int, subject: str) -> str | None:
        return self._locks.get((shard_id, subject))

    def _blocked_by_lock(self, shard_id: int, tx: Transaction) -> bool:
        subject = self.router.lock_key_for(tx)
        if subject is None:
            return False
        owner = self._locks.get((shard_id, subject))
        return owner is not None and tx.payload.get("xid") != owner

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def submit(self, tx: Transaction) -> int:
        """Route one transaction to its shard's mempool; returns the
        shard id.  Raises :class:`ShardError` on a lock conflict."""
        shard_id = self.router.route(tx)
        if self._blocked_by_lock(shard_id, tx):
            raise ShardError(
                f"subject {self.router.lock_key_for(tx)!r} is locked by a "
                "cross-shard transfer; resubmit after it settles"
            )
        self.shards[shard_id].mempool.add(tx)
        return shard_id

    def submit_to(self, shard_id: int, tx: Transaction) -> None:
        """Protocol-path submit (2PC lock/commit/abort legs): bypasses the
        router but still honors the lock table's xid exemption."""
        if self._blocked_by_lock(shard_id, tx):
            raise ShardError(
                f"shard {shard_id}: transaction conflicts with an active "
                "cross-shard lock"
            )
        self.shards[shard_id].mempool.add(tx)

    def submit_many(self, txs: Iterable[Transaction]) -> SubmitReport:
        """Batched ingest.  Lock-conflicted transactions come back in
        ``deferred`` for the caller to retry once the transfer settles —
        they are never silently dropped."""
        report = SubmitReport()
        for shard_id, bucket in self.router.partition(txs).items():
            mempool = self.shards[shard_id].mempool
            accepted = 0
            t0 = time.perf_counter()
            for tx in bucket:
                if self._blocked_by_lock(shard_id, tx):
                    report.deferred.append(tx)
                    continue
                if mempool.add(tx):
                    accepted += 1
                else:
                    report.duplicates += 1
            self._pending_ingest_s[shard_id] += time.perf_counter() - t0
            if accepted:
                report.accepted[shard_id] = accepted
        return report

    def ingest_record(
        self, record: Mapping[str, Any]
    ) -> tuple[int, AnchorReceipt | None]:
        """Store a provenance record on its home shard and queue it for
        anchoring; returns ``(shard_id, anchor receipt if one flushed)``."""
        subject = str(record.get("subject", ""))
        if not subject:
            raise ShardError("record lacks a subject to route by")
        shard_id = self.router.shard_for(namespace_of(subject))
        owner = self._locks.get((shard_id, subject))
        if owner is not None and record.get("xid") != owner:
            raise ShardError(
                f"subject {subject!r} is locked by a cross-shard "
                "transfer; ingest after it settles"
            )
        shard = self.shards[shard_id]
        shard.database.insert(record)
        receipt = shard.anchor.enqueue(record)
        shard.query.notify_write()
        return shard_id, receipt

    def flush_anchors(self) -> dict[int, AnchorReceipt]:
        """Force-flush every shard's pending anchor batch (anchor blocks
        are beacon-committed by the next :meth:`seal_round`)."""
        receipts: dict[int, AnchorReceipt] = {}
        for shard in self.shards:
            receipt = shard.anchor.flush()
            if receipt is not None:
                receipts[shard.shard_id] = receipt
        return receipts

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def attach_coordinator(self, coordinator: Any) -> None:
        """Register an observer whose ``on_round_sealed(report)`` runs
        after each round (the 2PC coordinator drives its phases there)."""
        self._coordinators.append(coordinator)

    def seal_round(
        self,
        shard_ids: Sequence[int] | None = None,
        timestamp: int | None = None,
    ) -> RoundReport:
        """Seal one block per loaded shard, then beacon-anchor the round.

        ``shard_ids`` restricts sealing to a subset (a stalled shard in
        the tests; a partitioned one in life).  Blocks appended outside
        the round (anchor-service flushes) are picked up and anchored
        too, so every shard block ends up under exactly one beacon
        header.
        """
        selected = (range(len(self.shards)) if shard_ids is None
                    else shard_ids)
        ts = self.rounds_sealed if timestamp is None else timestamp
        per_shard: dict[int, ShardSealStats] = {}
        entries: list[tuple[int, int, bytes]] = []
        for shard_id in selected:
            shard = self.shard(shard_id)
            t0 = time.perf_counter()
            batch = shard.mempool.pop_batch(shard.chain.params.max_block_txs)
            if self._locks:
                # A transaction admitted *before* a lock was taken must
                # not seal mid-2PC: hold it back for a later round (the
                # admission check alone cannot see future locks).
                kept: list[Transaction] = []
                held: list[Transaction] = []
                for tx in batch:
                    (held if self._blocked_by_lock(shard_id, tx)
                     else kept).append(tx)
                if held:
                    batch = kept
                    shard.mempool.add_many(held)
            blocks = 0
            if batch:
                shard.chain.append_block(
                    shard.chain.build_block(
                        batch, timestamp=ts,
                        proposer=f"shard-{shard_id}-sealer",
                    )
                )
            # Commit every block the beacon has not seen yet (includes
            # anchor-service blocks appended between rounds).
            for height in range(self._anchored_height[shard_id] + 1,
                                shard.chain.height + 1):
                entries.append(
                    (shard_id, height,
                     shard.chain.block_at(height).block_hash)
                )
                blocks += 1
            self._anchored_height[shard_id] = shard.chain.height
            per_shard[shard_id] = ShardSealStats(
                txs_sealed=len(batch),
                blocks_produced=blocks,
                duration_s=(time.perf_counter() - t0
                            + self._pending_ingest_s[shard_id]),
                mempool_backlog=len(shard.mempool),
            )
            self._pending_ingest_s[shard_id] = 0.0
        t0 = time.perf_counter()
        beacon_receipt = (self.beacon.anchor_round(entries, timestamp=ts)
                          if entries else None)
        beacon_s = time.perf_counter() - t0
        report = RoundReport(
            round_no=self.rounds_sealed,
            per_shard=per_shard,
            beacon_receipt=beacon_receipt,
            beacon_duration_s=beacon_s,
        )
        self.rounds_sealed += 1
        for coordinator in self._coordinators:
            coordinator.on_round_sealed(report)
        if (self.checkpoint_every_rounds > 0
                and self.rounds_sealed % self.checkpoint_every_rounds == 0):
            self.checkpoint()
        return report

    def seal_until_drained(self, max_rounds: int = 10_000) -> list[RoundReport]:
        """Seal rounds until every mempool is empty (bench/test helper)."""
        reports: list[RoundReport] = []
        while self.mempool_backlog and len(reports) < max_rounds:
            reports.append(self.seal_round())
        if self.mempool_backlog:
            raise ShardError(
                f"mempools not drained after {max_rounds} rounds"
            )
        return reports
