"""``ShardedChain``: N independent chain stacks behind one facade.

Each shard owns a full vertical slice — :class:`Blockchain`,
:class:`Mempool`, :class:`ProvenanceDatabase`, :class:`AnchorService`,
:class:`ProvenanceQueryEngine` — so shards share *nothing* and, on a real
deployment, run on separate machines.  The facade:

* routes submitted transactions and ingested records to their home shard
  (:class:`~repro.sharding.router.ShardRouter`),
* seals one block per loaded shard per **round** (:meth:`seal_round`) and
  anchors every block produced in the round into the
  :class:`~repro.sharding.beacon.BeaconChain`,
* maintains the cross-shard lock table the two-phase-commit coordinator
  uses (a transaction touching a locked subject is deferred, not lost),
* reports per-shard seal timings so the scaling benchmark can model the
  deployment's critical path (shards seal concurrently; the round takes
  as long as its slowest shard plus the beacon commit).
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ThreadPoolExecutor, wait as futures_wait
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from ..chain import Blockchain, ChainParams, Mempool, Transaction
from ..chain.block import Block
from ..errors import (
    QueueFull,
    RETRY_AFTER_FLOOR_S,
    ReproError,
    ShardError,
)
from ..obs.runtime import telemetry as default_telemetry
from ..provenance.anchor import AnchorReceipt, AnchorService
from ..provenance.query import ProvenanceQueryEngine, QueryCache
from ..storage.provdb import ProvenanceDatabase
from .beacon import BeaconChain, BeaconReceipt
from .router import ShardRouter, namespace_of


class Shard:
    """One shard's full stack (chain, mempool, database, anchors, queries).

    With a :class:`~repro.persist.durable.DurableStorage` attached, the
    chain, record database, and state snapshot live in the shard's store
    directory, and anchor-service state is checkpointed into the store's
    meta table — reopening the same directory restores the whole stack
    without genesis replay.  Mempool contents are deliberately *not*
    persisted: an unsealed transaction was never acknowledged as durable.
    """

    _ANCHOR_META_KEY = "anchor_state"

    def __init__(self, shard_id: int, params: ChainParams,
                 anchor_batch_size: int = 64,
                 storage=None, snapshot_interval: int = 0,
                 contract_runtime_factory=None) -> None:
        self.shard_id = shard_id
        self.storage = storage
        runtime = (contract_runtime_factory()
                   if contract_runtime_factory is not None else None)
        if storage is None:
            self.chain = Blockchain(params, contract_runtime=runtime)
            self.database = ProvenanceDatabase()
        else:
            self.chain = Blockchain(
                params,
                store=storage.blocks,
                snapshot_store=storage.state,
                snapshot_interval=snapshot_interval,
                contract_runtime=runtime,
            )
            self.database = ProvenanceDatabase(store=storage.records)
        self.mempool = Mempool()
        self.anchor = AnchorService(
            self.chain,
            batch_size=anchor_batch_size,
            sender=f"shard-{shard_id}-anchor",
        )
        if storage is not None:
            anchor_state = storage.get_meta(self._ANCHOR_META_KEY)
            if anchor_state is not None:
                self.anchor.restore_state(anchor_state)
        self.query = ProvenanceQueryEngine(
            self.database, anchor_service=self.anchor, cache=QueryCache()
        )

    def checkpoint(self) -> None:
        """Persist anchor state + state snapshot + fsync (durable only)."""
        if self.storage is None:
            return
        self.storage.put_meta(self._ANCHOR_META_KEY,
                              self.anchor.dump_state())
        self.chain.checkpoint()
        self.storage.sync()

    def close(self) -> None:
        if self.storage is None:
            return
        self.checkpoint()
        self.storage.close()


@dataclass(frozen=True)
class LockEntry:
    """One cross-shard lock: owner, holder epoch, and lease expiry.

    ``epoch`` is the coordinator generation that took the lock — a
    recovered coordinator (higher epoch) may reclaim entries from dead
    generations, and protocol legs from a fenced (lower) epoch are
    refused at submit time.  ``expires_round`` is the sealing round
    after which the lease is stale: a live coordinator renews its
    leases every round tick, so an expired lease means its holder died
    without unlocking and the facade may drop it.
    """

    xid: str
    epoch: int = 0
    expires_round: int = 0


@dataclass(frozen=True)
class ShardSealStats:
    """What one shard did in one sealing round.

    ``duration_s`` covers the shard's whole round of work: admission of
    the transactions routed to it since the previous round (accumulated
    by :meth:`ShardedChain.submit_many`) plus block build and execution.
    """

    txs_sealed: int
    blocks_produced: int
    duration_s: float
    mempool_backlog: int


@dataclass(frozen=True)
class RoundReport:
    """Outcome of one :meth:`ShardedChain.seal_round`."""

    round_no: int
    per_shard: Mapping[int, ShardSealStats]
    beacon_receipt: BeaconReceipt | None
    beacon_duration_s: float
    #: Shards whose seal failed this round (quarantine mode only):
    #: shard id -> structured error dict (reason / message / streak).
    failed_shards: Mapping[int, dict] = field(default_factory=dict)

    @property
    def txs_sealed(self) -> int:
        return sum(s.txs_sealed for s in self.per_shard.values())

    @property
    def critical_path_s(self) -> float:
        """Round wall time under the deployment model: shards seal in
        parallel (slowest shard dominates), then the beacon commits."""
        slowest = max(
            (s.duration_s for s in self.per_shard.values()), default=0.0
        )
        return slowest + self.beacon_duration_s

    @property
    def serial_s(self) -> float:
        """Single-machine time: every shard sealed back to back."""
        return (sum(s.duration_s for s in self.per_shard.values())
                + self.beacon_duration_s)


@dataclass
class SubmitReport:
    """Batch-submit outcome with per-shard backpressure accounting.

    Every submitted transaction lands in exactly one bucket:

    * ``accepted[shard]`` — admitted into that shard's mempool;
    * ``queued[shard]`` — parked in an ingest-pipeline queue (admission
      will happen at the next pump; only the pipeline fills this);
    * ``deferred`` — bounced off an active cross-shard lock, retry after
      the transfer settles (``deferred_by_shard`` counts them per home
      shard);
    * ``rejected`` — bounced off a *full* queue or mempool, each paired
      with its structured :class:`~repro.errors.QueueFull` signal
      carrying depth, watermark, and retry-after;
    * ``duplicates`` — already known.

    Nothing is ever silently dropped: the four buckets plus duplicates
    partition the input.
    """

    accepted: dict[int, int] = field(default_factory=dict)
    deferred: list[Transaction] = field(default_factory=list)
    duplicates: int = 0
    queued: dict[int, int] = field(default_factory=dict)
    deferred_by_shard: dict[int, int] = field(default_factory=dict)
    rejected: list[tuple[Transaction, QueueFull]] = field(
        default_factory=list
    )

    @property
    def accepted_total(self) -> int:
        return sum(self.accepted.values())

    @property
    def queued_total(self) -> int:
        return sum(self.queued.values())

    @property
    def deferred_total(self) -> int:
        return len(self.deferred)

    @property
    def rejected_total(self) -> int:
        return len(self.rejected)

    @property
    def rejected_by_shard(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for _, signal in self.rejected:
            sid = -1 if signal.shard_id is None else signal.shard_id
            counts[sid] = counts.get(sid, 0) + 1
        return counts

    def min_retry_after_s(self) -> float:
        """Soonest worthwhile retry across every rejection (0.0 if none)."""
        return min((s.retry_after_s for _, s in self.rejected),
                   default=0.0)

    def backpressure_summary(self) -> dict[int, dict[str, int]]:
        """Per-shard ``{accepted, queued, deferred, rejected}`` counters
        — the observable a capture source throttles on."""
        shards = (set(self.accepted) | set(self.queued)
                  | set(self.deferred_by_shard)
                  | set(self.rejected_by_shard))
        return {
            sid: {
                "accepted": self.accepted.get(sid, 0),
                "queued": self.queued.get(sid, 0),
                "deferred": self.deferred_by_shard.get(sid, 0),
                "rejected": self.rejected_by_shard.get(sid, 0),
            }
            for sid in sorted(shards)
        }


class ShardedChain:
    """Facade over N shards, a router, a lock table, and the beacon."""

    _FACADE_META_KEY = "facade_state"
    _BEACON_META_KEY = "beacon_state"
    _LAYOUT_META_KEY = "layout"

    def __init__(
        self,
        n_shards: int,
        max_block_txs: int = 256,
        reorg_journal_depth: int = 64,
        anchor_batch_size: int = 64,
        chain_id_prefix: str = "shard",
        router: ShardRouter | None = None,
        storage_dir: str | None = None,
        snapshot_interval: int = 0,
        checkpoint_every_rounds: int = 0,
        seal_workers: int | None = None,
        executor: str = "auto",
        exec_workers: int | None = None,
        contract_runtime_factory=None,
        telemetry=None,
        lock_lease_rounds: int = 16,
        quarantine_after: int = 0,
        quarantine_probe_every: int = 2,
        retry_floor_s: float = RETRY_AFTER_FLOOR_S,
    ) -> None:
        if n_shards < 1:
            raise ShardError("need at least one shard")
        if retry_floor_s <= 0.0:
            raise ShardError("retry_floor_s must be > 0")
        if lock_lease_rounds < 1:
            raise ShardError("lock_lease_rounds must be >= 1")
        if quarantine_after < 0:
            raise ShardError("quarantine_after must be >= 0")
        if quarantine_probe_every < 1:
            raise ShardError("quarantine_probe_every must be >= 1")
        if seal_workers is not None and seal_workers < 1:
            raise ShardError("seal_workers must be >= 1")
        if executor not in ("auto", "serial", "thread", "process"):
            raise ShardError(f"unknown executor mode {executor!r}")
        if exec_workers is not None and exec_workers < 1:
            raise ShardError("exec_workers must be >= 1")
        self.router = router or ShardRouter(n_shards)
        if self.router.n_shards != n_shards:
            raise ShardError("router shard count does not match")
        self.storage_dir = storage_dir
        self.checkpoint_every_rounds = checkpoint_every_rounds
        shard_storages: list[Any] = [None] * n_shards
        beacon_storage = None
        if storage_dir is not None:
            from ..persist.durable import DurableStorage

            beacon_storage = DurableStorage(
                os.path.join(storage_dir, "beacon")
            )
            layout = beacon_storage.get_meta(self._LAYOUT_META_KEY)
            if layout is None:
                beacon_storage.put_meta(self._LAYOUT_META_KEY,
                                        {"n_shards": n_shards})
            elif layout.get("n_shards") != n_shards:
                stored = layout.get("n_shards")
                beacon_storage.close()
                raise ShardError(
                    f"store directory was laid out for "
                    f"{stored} shards, not {n_shards}"
                )
            shard_storages = [
                DurableStorage(os.path.join(storage_dir, f"shard-{i}"))
                for i in range(n_shards)
            ]
        self._beacon_storage = beacon_storage
        self.shards = [
            Shard(
                i,
                ChainParams(
                    chain_id=f"{chain_id_prefix}-{i}",
                    max_block_txs=max_block_txs,
                    reorg_journal_depth=reorg_journal_depth,
                ),
                anchor_batch_size=anchor_batch_size,
                storage=shard_storages[i],
                snapshot_interval=snapshot_interval,
                contract_runtime_factory=contract_runtime_factory,
            )
            for i in range(n_shards)
        ]
        self.contract_runtime_factory = contract_runtime_factory
        self.beacon = BeaconChain(
            ChainParams(chain_id=f"{chain_id_prefix}-beacon"),
            store=beacon_storage.blocks if beacon_storage else None,
            snapshot_store=beacon_storage.state if beacon_storage else None,
        )
        # (shard_id, subject) -> LockEntry.  Guards cross-shard
        # atomicity: while a subject is mid-handoff, conflicting writes
        # are deferred instead of interleaving with the 2PC phases.
        # Entries carry a holder epoch and a lease round (see
        # LockEntry); seal_round sweeps expired leases.
        self._locks: dict[tuple[int, str], LockEntry] = {}
        self.lock_lease_rounds = lock_lease_rounds
        # Coordinator fencing: the highest coordinator epoch this facade
        # has seen.  Protocol legs stamped with an older epoch are
        # refused at submit time (a zombie coordinator that lost a
        # recovery race cannot drive half a transfer).
        self.coordinator_epoch: int | None = None
        # In-memory meta fallback: the durable 2PC WAL rides the beacon
        # store's meta table when one exists; in-memory deployments get
        # the same surface (so coordinator crash/recovery is testable
        # without disk) backed by this dict of encoded values.
        self._meta_mem: dict[str, bytes] = {}
        # Graceful degradation (quarantine_after > 0): consecutive seal
        # failures per shard, and the quarantine roster with per-shard
        # rounds-skipped counters driving periodic re-admission probes.
        self.quarantine_after = quarantine_after
        self.quarantine_probe_every = quarantine_probe_every
        self._seal_fail_streak: dict[int, int] = {}
        self._quarantined: dict[int, int] = {}
        # Highest block height per shard already committed to the beacon.
        self._anchored_height = [0] * n_shards
        # Per-shard admission time (hashing + mempool insert) accumulated
        # by submit_many between rounds; seal_round folds it into each
        # shard's round duration — on a real deployment every shard node
        # pays its own admission cost, so the scaling model must too.
        self._pending_ingest_s = [0.0] * n_shards
        self.rounds_sealed = 0
        self._coordinators: list[Any] = []
        self._replica_seq = 0
        # Thread-pool sealing: None = auto (parallel iff the deployment
        # is durable, where per-shard fsync/sqlite I/O releases the GIL
        # and overlaps even on one core; a GIL-bound in-memory deployment
        # gains nothing from threads).  Sized to shards, not cores — the
        # waits being overlapped are I/O, not compute.  An explicit int
        # forces that many workers (1 = serial).
        if seal_workers is None:
            seal_workers = (min(n_shards, 8)
                            if storage_dir is not None else 1)
        self.seal_workers = seal_workers
        self._seal_pool: ThreadPoolExecutor | None = None
        # Process-pool sealing (repro.exec): default executor mode for
        # seal_round ("auto" = thread when seal_workers > 1, else
        # serial), pool width, the cached pool itself, and per-shard
        # replica bookkeeping — (worker index, worker epoch, height,
        # state root) last confirmed held by the shard's exec worker.
        # A mismatch at job-build time ships a fresh state image.
        self.executor = executor
        self.exec_workers = (exec_workers if exec_workers is not None
                             else min(4, max(2, n_shards)))
        self._exec_pool = None
        self._worker_shard_state: dict[int, tuple[int, int, int, bytes]] = {}
        # EWMA of recent round wall time; feeds retry-after estimates.
        # retry_floor_s both seeds the estimate before the first seal
        # and clamps every advertised retry-after (hot-loop guard).
        self._round_pace_s = 0.0
        self.retry_floor_s = retry_floor_s
        # Telemetry (ISSUE 7): spans per shard round / beacon commit,
        # latency histograms on the per-round paths (cheap there — one
        # observe per shard per round), and a collector publishing the
        # per-shard load gauges the resharding/autoscaler consumes.
        # The most recent RoundReport backs health_report()'s
        # slowest-shard attribution.
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        registry = self.telemetry.registry
        self._tracer = self.telemetry.tracer
        self._m_seal_shard_s = registry.histogram("seal_shard_seconds")
        self._m_seal_round_s = registry.histogram("seal_round_seconds")
        self._m_beacon_s = registry.histogram("seal_beacon_seconds")
        self._m_txs_sealed = registry.counter("txs_sealed_total")
        self._m_exec_offloaded = registry.counter(
            "exec_rounds_offloaded_total"
        )
        self._m_exec_fallback = registry.counter("exec_fallback_total")
        self._m_leases_expired = registry.counter(
            "xshard_lock_leases_expired_total"
        )
        self._m_quarantined = registry.counter("shard_quarantined_total")
        self._m_readmitted = registry.counter("shard_readmitted_total")
        self._m_seal_failures = registry.counter("shard_seal_failures_total")
        registry.register_collector(self._collect_metrics)
        self._last_round: RoundReport | None = None
        if beacon_storage is not None:
            beacon_state = beacon_storage.get_meta(self._BEACON_META_KEY)
            if beacon_state is not None:
                self.beacon.restore_state(beacon_state)
            facade = beacon_storage.get_meta(self._FACADE_META_KEY)
            if facade is not None:
                self.rounds_sealed = int(facade["rounds_sealed"])
                self._anchored_height = [int(h)
                                         for h in facade["anchored_height"]]
                # Locks checkpointed mid-2PC are NOT restored here: the
                # owning coordinator died with the old process.  The
                # durable transfer WAL (sharding.twophase) is the source
                # of truth — CrossShardCoordinator.recover() re-owns the
                # locks of every in-flight transfer under its new epoch
                # and resolves each one (finalize when all commit legs
                # are on-chain, presumed-abort otherwise), so nothing
                # stays wedged and nothing half-commits.
                self._locks = {}

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def _collect_metrics(self) -> None:
        """Registry collector: publish per-shard load gauges at snapshot
        time.  Nothing here runs on a hot path — the resharding planner
        and ops surfaces read these from ``snapshot()``."""
        registry = self.telemetry.registry
        for shard in self.shards:
            sid = str(shard.shard_id)
            registry.gauge("shard_mempool_backlog", shard=sid).set(
                len(shard.mempool)
            )
            registry.gauge("shard_height", shard=sid).set(
                shard.chain.height
            )
            registry.gauge("shard_anchored_height", shard=sid).set(
                self._anchored_height[shard.shard_id]
            )
        registry.gauge("crossshard_locks_active").set(len(self._locks))
        registry.gauge("round_pace_seconds").set(self._round_pace_s)
        registry.counter("rounds_sealed_total").value = self.rounds_sealed

    def _round_trace_ctx(self, blocks: list[Block]):
        """Resolve the trace context for a shard's round: the context
        bound at ``pipeline.submit`` for the first sealed transaction
        that has one.  Cheap when tracing is idle (one attribute read)."""
        tracer = self._tracer
        if not blocks or not tracer.has_bound_txs:
            return None
        return tracer.take_tx_ctx(
            tx.tx_id for block in blocks for tx in block.transactions
        )

    def health_report(self) -> dict:
        """Operator rollup: per-shard backlog and heights, round pace,
        and slowest-shard attribution for the most recent sealed round.
        Every key is canonical-encodable (shard ids are strings), so the
        gateway's ``ops/metrics`` topic ships it over SimNet verbatim."""
        per_shard: dict[str, dict] = {}
        for shard in self.shards:
            sid = shard.shard_id
            per_shard[str(sid)] = {
                "height": shard.chain.height,
                "anchored_height": self._anchored_height[sid],
                "mempool_backlog": len(shard.mempool),
                "seal_fail_streak": self._seal_fail_streak.get(sid, 0),
                "quarantined": sid in self._quarantined,
            }
        report: dict[str, Any] = {
            "n_shards": len(self.shards),
            "rounds_sealed": self.rounds_sealed,
            "round_pace_s": self._round_pace_s,
            "mempool_backlog_total": self.mempool_backlog,
            "locks_active": len(self._locks),
            "quarantined_shards": sorted(str(sid)
                                         for sid in self._quarantined),
            "per_shard": per_shard,
            "slowest_shard": None,
            "slowest_seal_s": 0.0,
            "critical_path_s": 0.0,
        }
        last = self._last_round
        if last is not None:
            report["last_round_no"] = last.round_no
            report["last_round_txs"] = last.txs_sealed
            report["critical_path_s"] = last.critical_path_s
            slowest_sid = None
            slowest_s = 0.0
            for sid, stats in last.per_shard.items():
                per_shard[str(sid)]["last_seal_s"] = stats.duration_s
                per_shard[str(sid)]["last_txs_sealed"] = stats.txs_sealed
                if stats.duration_s >= slowest_s:
                    slowest_sid, slowest_s = sid, stats.duration_s
            if slowest_sid is not None:
                # String, like the per_shard keys it indexes into.
                report["slowest_shard"] = str(slowest_sid)
                report["slowest_seal_s"] = slowest_s
        return report

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Checkpoint every shard, the beacon, and the facade state so a
        reopened :class:`ShardedChain` on the same ``storage_dir`` resumes
        exactly here.  No-op for in-memory deployments."""
        if self._beacon_storage is None:
            return
        for shard in self.shards:
            shard.checkpoint()
        self._beacon_storage.put_meta(self._BEACON_META_KEY,
                                      self.beacon.dump_state())
        self._beacon_storage.put_meta(
            self._FACADE_META_KEY,
            {
                "rounds_sealed": self.rounds_sealed,
                "anchored_height": list(self._anchored_height),
                "locks": [
                    [sid, subject, entry.xid, entry.epoch,
                     entry.expires_round]
                    for (sid, subject), entry in self._locks.items()
                ],
            },
        )
        self.beacon.chain.checkpoint()
        self._beacon_storage.sync()

    def tier_storage(self, keep_tail: int = 256,
                     compact_records: bool = True) -> dict[int, dict]:
        """Tier every durable shard store: archive cold blocks into the
        store's CAS and compact the segment logs (see
        :meth:`~repro.persist.durable.DurableStorage.tier`).  The hot
        tail is clamped to the reorg journal window — a reorg can never
        need to truncate below the archival boundary.  Returns per-shard
        stats; no-op (empty) for in-memory deployments."""
        stats: dict[int, dict] = {}
        for shard in self.shards:
            if shard.storage is None:
                continue
            floor = shard.chain.params.reorg_journal_depth + 1
            shard.checkpoint()
            stats[shard.shard_id] = shard.storage.tier(
                keep_tail=max(keep_tail, floor),
                compact_records=compact_records,
            )
        return stats

    def close(self) -> None:
        """Checkpoint and release every store (reopenable afterwards)."""
        if self._seal_pool is not None:
            self._seal_pool.shutdown(wait=True)
            self._seal_pool = None
        if self._exec_pool is not None:
            self._exec_pool.shutdown()
            self._exec_pool = None
            self._worker_shard_state.clear()
        if self._beacon_storage is None:
            return
        self.checkpoint()
        for shard in self.shards:
            shard.storage.close()
        self._beacon_storage.close()

    def crash(self) -> None:
        """Fail-stop, for crash testing: release every OS resource
        WITHOUT checkpointing, as if the process died right here.
        Durable state is exactly what the stores already committed —
        sealed block segments, per-write meta commits (the 2PC WAL) —
        while derived facade/beacon meta stays at the last checkpoint,
        which is what a reopened :class:`ShardedChain` plus
        ``CrossShardCoordinator(recover=True)`` must cope with."""
        if self._seal_pool is not None:
            self._seal_pool.shutdown(wait=True, cancel_futures=True)
            self._seal_pool = None
        if self._exec_pool is not None:
            self._exec_pool.shutdown()
            self._exec_pool = None
            self._worker_shard_state.clear()
        self._coordinators.clear()
        if self._beacon_storage is None:
            return
        for shard in self.shards:
            shard.storage.close()
        self._beacon_storage.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def shard(self, shard_id: int) -> Shard:
        if not 0 <= shard_id < len(self.shards):
            raise ShardError(f"no shard {shard_id}")
        return self.shards[shard_id]

    def shard_for_subject(self, subject: str) -> Shard:
        return self.shards[self.router.shard_for_subject(subject)]

    @property
    def total_txs_committed(self) -> int:
        return sum(len(s.chain.receipts) for s in self.shards)

    @property
    def mempool_backlog(self) -> int:
        return sum(len(s.mempool) for s in self.shards)

    def verify_all(self, deep: bool = False) -> None:
        """Audit every shard chain and the beacon (raises on tampering)."""
        for shard in self.shards:
            shard.chain.verify(deep=deep)
        self.beacon.chain.verify(deep=deep)

    # ------------------------------------------------------------------
    # Meta (the 2PC coordinator's WAL surface; see sharding.twophase)
    # ------------------------------------------------------------------
    def put_meta(self, key: str, value: Any) -> None:
        """Persist one canonical-encodable value.  Durable deployments
        write through the beacon store's meta table (each write commits
        before returning — the WAL property the 2PC coordinator relies
        on); in-memory deployments round-trip through the canonical
        codec into a process-local dict, so coordinator crash/recovery
        behaves identically in both."""
        if self._beacon_storage is not None:
            self._beacon_storage.put_meta(key, value)
            return
        from ..serialization import canonical_encode

        self._meta_mem[key] = canonical_encode(value)

    def get_meta(self, key: str, default: Any = None) -> Any:
        if self._beacon_storage is not None:
            return self._beacon_storage.get_meta(key, default)
        encoded = self._meta_mem.get(key)
        if encoded is None:
            return default
        from ..persist.codec import canonical_decode

        return canonical_decode(encoded)

    # ------------------------------------------------------------------
    # Locks (the 2PC coordinator's table; see sharding.twophase)
    # ------------------------------------------------------------------
    def set_coordinator_epoch(self, epoch: int) -> None:
        """Fence every earlier coordinator generation: protocol legs
        stamped with an older epoch are refused from now on."""
        if self.coordinator_epoch is not None \
                and epoch < self.coordinator_epoch:
            raise ShardError(
                f"coordinator epoch {epoch} is behind the fenced epoch "
                f"{self.coordinator_epoch}", reason="fenced_epoch",
            )
        self.coordinator_epoch = epoch

    def acquire_lock(self, shard_id: int, subject: str, xid: str,
                     epoch: int = 0,
                     lease_rounds: int | None = None) -> bool:
        """Take (or renew) the lock on ``(shard_id, subject)``.

        Re-acquiring with the owning ``xid`` renews the lease and
        updates the holder epoch — the coordinator calls this every
        round tick for its in-flight transfers, so a lease that *does*
        expire marks a dead holder."""
        key = (shard_id, subject)
        owner = self._locks.get(key)
        if owner is not None and owner.xid != xid:
            return False
        lease = self.lock_lease_rounds if lease_rounds is None \
            else lease_rounds
        self._locks[key] = LockEntry(
            xid=xid, epoch=epoch,
            expires_round=self.rounds_sealed + lease,
        )
        return True

    def reclaim_lock(self, shard_id: int, subject: str, xid: str,
                     epoch: int) -> None:
        """Recovery-only: forcibly re-own a lock for ``xid`` under a new
        coordinator epoch, whatever entry (if any) a dead generation
        left behind.  Only the WAL-replaying coordinator may call this —
        it knows ``xid`` owned the subject when the old process died."""
        self._locks[(shard_id, subject)] = LockEntry(
            xid=xid, epoch=epoch,
            expires_round=self.rounds_sealed + self.lock_lease_rounds,
        )

    def release_lock(self, shard_id: int, subject: str, xid: str,
                     epoch: int | None = None) -> None:
        """Release iff ``xid`` owns the entry (and, when ``epoch`` is
        given, iff the holder epoch matches — a fenced coordinator
        cannot release the lock its recovered successor re-owns)."""
        key = (shard_id, subject)
        owner = self._locks.get(key)
        if owner is None or owner.xid != xid:
            return
        if epoch is not None and owner.epoch != epoch:
            return
        del self._locks[key]

    def drop_stale_locks(self, current_epoch: int) -> int:
        """Drop every lock held by an older coordinator epoch (recovery
        sweep: the WAL-replaying coordinator re-owns the locks of the
        transfers it is resolving first, then sweeps the rest — entries
        whose transfers already reached a terminal state but whose
        unlock never ran before the crash)."""
        stale = [key for key, entry in self._locks.items()
                 if entry.epoch < current_epoch]
        for key in stale:
            del self._locks[key]
        return len(stale)

    def _expire_stale_locks(self) -> None:
        """Lease sweep (start of every round): entries whose lease round
        passed belong to holders that stopped renewing — a coordinator
        that died without its WAL being replayed.  Dropping them frees
        the subjects; handoff records only materialize on full commit,
        so this is presumed-abort, never data loss."""
        if not self._locks:
            return
        expired = [key for key, entry in self._locks.items()
                   if entry.expires_round < self.rounds_sealed]
        for key in expired:
            del self._locks[key]
        if expired:
            self._m_leases_expired.inc(len(expired))

    def lock_owner(self, shard_id: int, subject: str) -> str | None:
        entry = self._locks.get((shard_id, subject))
        return entry.xid if entry is not None else None

    def lock_entry(self, shard_id: int, subject: str) -> LockEntry | None:
        return self._locks.get((shard_id, subject))

    def _blocked_by_lock(self, shard_id: int, tx: Transaction) -> bool:
        subject = self.router.lock_key_for(tx)
        if subject is None:
            return False
        owner = self._locks.get((shard_id, subject))
        return owner is not None and tx.payload.get("xid") != owner.xid

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def _add_to_mempool(self, shard_id: int, tx: Transaction) -> bool:
        """Admit one transaction, enriching a raw mempool ``QueueFull``
        with the shard id and retry-after estimate."""
        try:
            return self.shards[shard_id].mempool.add(tx)
        except QueueFull as exc:
            raise self.backpressure_signal(
                shard_id, exc.depth, exc.capacity, exc.capacity,
                source="mempool",
            ) from None

    def submit(self, tx: Transaction) -> int:
        """Route one transaction to its shard's mempool; returns the
        shard id.  Raises :class:`ShardError` on a lock conflict and a
        shard-tagged :class:`~repro.errors.QueueFull` (retry-after
        included) on a full mempool."""
        shard_id = self.router.route(tx)
        if self._blocked_by_lock(shard_id, tx):
            raise ShardError(
                f"subject {self.router.lock_key_for(tx)!r} is locked by a "
                "cross-shard transfer; resubmit after it settles"
            )
        self._add_to_mempool(shard_id, tx)
        return shard_id

    def submit_to(self, shard_id: int, tx: Transaction) -> None:
        """Protocol-path submit (2PC lock/commit/abort legs): bypasses the
        router but still honors the lock table's xid exemption.  Legs
        stamped with a fenced (older) coordinator epoch are refused — a
        zombie coordinator that lost a recovery race cannot land half a
        transfer on-chain."""
        payload = tx.payload
        if payload.get("phase") in ("lock", "commit", "abort") \
                and "xid" in payload \
                and self.coordinator_epoch is not None \
                and payload.get("epoch") != self.coordinator_epoch:
            raise ShardError(
                f"shard {shard_id}: protocol leg from fenced coordinator "
                f"epoch {payload.get('epoch')!r} refused "
                f"(current epoch {self.coordinator_epoch})",
                reason="fenced_epoch", shard_id=shard_id,
            )
        if self._blocked_by_lock(shard_id, tx):
            raise ShardError(
                f"shard {shard_id}: transaction conflicts with an active "
                "cross-shard lock"
            )
        self._add_to_mempool(shard_id, tx)

    def backpressure_signal(self, shard_id: int, depth: int,
                            capacity: int, high_watermark: int,
                            source: str = "queue") -> QueueFull:
        """Build the structured retry-after signal for one full shard
        queue, using the facade's recent round pace to convert rounds
        into wall time.

        Before the first seal the EWMA has no sample; the estimate is
        seeded with ``retry_floor_s`` per round instead of advertising
        0.0 — a remote client honoring a zero retry-after verbatim would
        hot-loop the gateway.  The final value is clamped to the same
        floor.
        """
        per_round = max(1, self.shards[shard_id].chain.params.max_block_txs)
        over = depth - high_watermark + 1
        rounds = max(1, math.ceil(over / per_round))
        pace = self._round_pace_s if self._round_pace_s > 0.0 \
            else self.retry_floor_s
        return QueueFull(
            f"shard {shard_id} {source} full "
            f"({depth}/{capacity}); retry in ~{rounds} round(s)",
            shard_id=shard_id,
            depth=depth,
            capacity=capacity,
            high_watermark=high_watermark,
            retry_after_rounds=rounds,
            retry_after_s=rounds * pace,
            min_retry_after_s=self.retry_floor_s,
        )

    def submit_many(self, txs: Iterable[Transaction]) -> SubmitReport:
        """Batched ingest.  Lock-conflicted transactions come back in
        ``deferred`` for the caller to retry once the transfer settles,
        and a shard whose mempool fills mid-batch bounces the rest of
        its bucket into ``rejected`` with a retry-after signal — nothing
        is silently dropped."""
        report = SubmitReport()
        for shard_id, bucket in self.router.partition(txs).items():
            mempool = self.shards[shard_id].mempool
            accepted = 0
            full_signal: QueueFull | None = None
            t0 = time.perf_counter()
            for i, tx in enumerate(bucket):
                if self._blocked_by_lock(shard_id, tx):
                    report.deferred.append(tx)
                    report.deferred_by_shard[shard_id] = \
                        report.deferred_by_shard.get(shard_id, 0) + 1
                    continue
                try:
                    if mempool.add(tx):
                        accepted += 1
                    else:
                        report.duplicates += 1
                except QueueFull as exc:
                    full_signal = self.backpressure_signal(
                        shard_id, exc.depth, exc.capacity, exc.capacity,
                        source="mempool",
                    )
                    for bounced in bucket[i:]:
                        report.rejected.append((bounced, full_signal))
                    break
            self._pending_ingest_s[shard_id] += time.perf_counter() - t0
            if accepted:
                report.accepted[shard_id] = accepted
        return report

    def ingest_record(
        self, record: Mapping[str, Any]
    ) -> tuple[int, AnchorReceipt | None]:
        """Store a provenance record on its home shard and queue it for
        anchoring; returns ``(shard_id, anchor receipt if one flushed)``."""
        subject = str(record.get("subject", ""))
        if not subject:
            raise ShardError("record lacks a subject to route by")
        shard_id = self.router.shard_for(namespace_of(subject))
        owner = self._locks.get((shard_id, subject))
        if owner is not None and record.get("xid") != owner.xid:
            raise ShardError(
                f"subject {subject!r} is locked by a cross-shard "
                "transfer; ingest after it settles"
            )
        shard = self.shards[shard_id]
        shard.database.insert(record)
        receipt = shard.anchor.enqueue(record)
        shard.query.notify_write()
        return shard_id, receipt

    def ingest_records(
        self, records: Sequence[Mapping[str, Any]]
    ) -> dict[int, list[AnchorReceipt]]:
        """Batched record ingest: one routing pass, one group-committed
        database insert per shard (one log write + one index transaction
        on the durable backend), then anchor enqueueing.  Returns the
        anchor receipts flushed per shard.  Lock conflicts, missing
        subjects, and duplicate record ids all raise before anything is
        stored — a batch that fails *validation* commits nothing on any
        shard.  (A storage-layer crash mid-call can still leave the
        shards committed before the failure point durably stored; their
        logs recover independently, and the failed shards' records can
        be re-ingested.)"""
        buckets: dict[int, list[dict]] = {}
        seen_ids: set[str] = set()
        for record in records:
            subject = str(record.get("subject", ""))
            if not subject:
                raise ShardError("record lacks a subject to route by")
            shard_id = self.router.shard_for(namespace_of(subject))
            owner = self._locks.get((shard_id, subject))
            if owner is not None and record.get("xid") != owner.xid:
                raise ShardError(
                    f"subject {subject!r} is locked by a cross-shard "
                    "transfer; ingest after it settles"
                )
            record_id = str(record.get("record_id", ""))
            if not record_id:
                raise ShardError("record lacks a record_id")
            if record_id in seen_ids \
                    or self.shards[shard_id].database.contains(record_id):
                raise ShardError(f"duplicate record_id {record_id!r}")
            seen_ids.add(record_id)
            buckets.setdefault(shard_id, []).append(dict(record))
        receipts: dict[int, list[AnchorReceipt]] = {}
        for shard_id, bucket in buckets.items():
            shard = self.shards[shard_id]
            shard.database.insert_many(bucket)
            flushed = [r for r in (shard.anchor.enqueue(rec)
                                   for rec in bucket) if r is not None]
            if flushed:
                receipts[shard_id] = flushed
            shard.query.notify_write()
        return receipts

    def flush_anchors(self) -> dict[int, AnchorReceipt]:
        """Force-flush every shard's pending anchor batch (anchor blocks
        are beacon-committed by the next :meth:`seal_round`)."""
        receipts: dict[int, AnchorReceipt] = {}
        for shard in self.shards:
            receipt = shard.anchor.flush()
            if receipt is not None:
                receipts[shard.shard_id] = receipt
        return receipts

    # ------------------------------------------------------------------
    # Sealing
    # ------------------------------------------------------------------
    def attach_coordinator(self, coordinator: Any) -> None:
        """Register an observer whose ``on_round_sealed(report)`` runs
        after each round (the 2PC coordinator drives its phases there)."""
        self._coordinators.append(coordinator)

    def detach_coordinator(self, coordinator: Any) -> None:
        """Unregister a round observer (no-op when absent).  The chaos
        harness detaches a 'crashed' coordinator so the zombie instance
        stops being driven while its recovered successor takes over."""
        try:
            self._coordinators.remove(coordinator)
        except ValueError:
            pass

    def _note_seal_failure(self, shard_id: int, exc: Exception) -> dict:
        """Quarantine bookkeeping for one failed shard round: bump the
        failure streak, quarantine at ``quarantine_after`` consecutive
        failures, and return the structured attribution dict that lands
        in :class:`RoundReport.failed_shards`."""
        self._m_seal_failures.inc()
        streak = self._seal_fail_streak.get(shard_id, 0) + 1
        self._seal_fail_streak[shard_id] = streak
        if shard_id not in self._quarantined \
                and streak >= self.quarantine_after:
            self._quarantined[shard_id] = self.rounds_sealed
            self._m_quarantined.inc()
        err = exc if isinstance(exc, ShardError) else ShardError(
            f"shard {shard_id} failed to seal: "
            f"{type(exc).__name__}: {exc}",
            reason="seal_failed", shard_id=shard_id,
        )
        info = err.as_dict()
        info["shard_id"] = shard_id
        info["streak"] = streak
        info["quarantined"] = shard_id in self._quarantined
        return info

    def _note_seal_success(self, shard_id: int) -> None:
        """A clean shard round resets the failure streak and re-admits a
        quarantined shard (its probe round succeeded)."""
        if self._seal_fail_streak.get(shard_id):
            self._seal_fail_streak[shard_id] = 0
        if shard_id in self._quarantined:
            del self._quarantined[shard_id]
            self._m_readmitted.inc()

    def _pop_round_blocks(
        self, shard_id: int, ts: int, blocks_per_shard: int,
    ) -> tuple[list[Block], int]:
        """Drain up to ``blocks_per_shard`` batches from one shard's
        mempool and build (but do not execute) the chained blocks."""
        shard = self.shards[shard_id]
        max_txs = shard.chain.params.max_block_txs
        new_blocks: list[Block] = []
        txs_sealed = 0
        prev = shard.chain.head
        for _ in range(blocks_per_shard):
            batch = shard.mempool.pop_batch(max_txs)
            if self._locks:
                # A transaction admitted *before* a lock was taken must
                # not seal mid-2PC: hold it back for a later round (the
                # admission check alone cannot see future locks).
                kept: list[Transaction] = []
                held: list[Transaction] = []
                for tx in batch:
                    (held if self._blocked_by_lock(shard_id, tx)
                     else kept).append(tx)
                if held:
                    batch = kept
                    shard.mempool.add_many(held)
            if not batch:
                break
            block = Block(
                height=prev.height + 1,
                prev_hash=prev.block_hash,
                transactions=batch,
                timestamp=ts,
                proposer=f"shard-{shard_id}-sealer",
            )
            new_blocks.append(block)
            txs_sealed += len(batch)
            prev = block
        return new_blocks, txs_sealed

    def _append_popped_blocks(self, shard_id: int,
                              new_blocks: list[Block]) -> None:
        """Execute popped blocks in-process (the serial path, and the
        process path's fallback), re-admitting the transactions of every
        uncommitted block on failure — the batch was acknowledged only
        as *queued*, so nothing may be silently lost."""
        shard = self.shards[shard_id]
        pending = [block for block in new_blocks
                   if block.height > shard.chain.height]
        if not pending:
            return
        try:
            shard.chain.append_blocks(pending)
        except BaseException:
            # The chain unwound the group (or kept only what its store
            # committed); re-admit the rest.
            committed_height = shard.chain.height
            for block in pending:
                if block.height > committed_height:
                    shard.mempool.add_many(block.transactions)
            raise

    def _collect_round_entries(
        self, shard_id: int
    ) -> list[tuple[int, int, bytes, bytes]]:
        """Every block the beacon has not seen yet (includes anchor-
        service blocks appended between rounds).  The anchored watermark
        itself is advanced by seal_round only after the beacon commit
        succeeds — a round that fails in another shard must not leave
        this shard's blocks un-anchorable forever."""
        shard = self.shards[shard_id]
        entries: list[tuple[int, int, bytes, bytes]] = []
        for height in range(self._anchored_height[shard_id] + 1,
                            shard.chain.height + 1):
            entries.append(
                (shard_id, height,
                 shard.chain.block_at(height).block_hash, b"")
            )
        if entries:
            # The round's last entry is the shard's current head, and no
            # execution happens between here and the beacon commit — tag
            # it with the post-execution state root so snapshot images
            # taken at this height verify against the beacon.
            sid, height, block_hash, _ = entries[-1]
            entries[-1] = (sid, height, block_hash,
                           shard.chain.state.state_root())
        return entries

    def _seal_shard_round(
        self, shard_id: int, ts: int, blocks_per_shard: int,
    ) -> tuple[ShardSealStats, list[tuple[int, int, bytes, bytes]], int]:
        """One shard's whole round of work: drain up to
        ``blocks_per_shard`` block batches from its mempool, build the
        chained blocks, and commit them through the chain's group-commit
        surface (one log write + one fsync + one index transaction on a
        durable store).  Thread-safe per shard: touches only this
        shard's stack, its slots of the per-shard arrays, and reads of
        the lock table (which never mutates mid-round)."""
        shard = self.shard(shard_id)
        t0 = time.perf_counter()
        new_blocks, txs_sealed = self._pop_round_blocks(
            shard_id, ts, blocks_per_shard
        )
        ctx = self._round_trace_ctx(new_blocks)
        with self._tracer.span("shard.seal_round", parent=ctx) as span:
            span.set_attr("shard", shard_id)
            span.set_attr("txs", txs_sealed)
            self._append_popped_blocks(shard_id, new_blocks)
            entries = self._collect_round_entries(shard_id)
        self._m_seal_shard_s.observe(time.perf_counter() - t0)
        stats = ShardSealStats(
            txs_sealed=txs_sealed,
            blocks_produced=len(entries),
            duration_s=(time.perf_counter() - t0
                        + self._pending_ingest_s[shard_id]),
            mempool_backlog=len(shard.mempool),
        )
        self._pending_ingest_s[shard_id] = 0.0
        return stats, entries, shard.chain.height

    def _get_seal_pool(self) -> ThreadPoolExecutor:
        if self._seal_pool is None:
            self._seal_pool = ThreadPoolExecutor(
                max_workers=self.seal_workers,
                thread_name_prefix="shard-seal",
            )
        return self._seal_pool

    # ------------------------------------------------------------------
    # Process-pool sealing (repro.exec)
    # ------------------------------------------------------------------
    @property
    def exec_pool(self):
        """The cached process pool, or ``None`` before the first
        process-mode round (the ingest pipeline offloads verification
        through this when it exists)."""
        return self._exec_pool

    def _get_exec_pool(self, workers: int | None = None):
        from ..exec.pool import ProcessExecPool

        want = self.exec_workers if workers is None else workers
        pool = self._exec_pool
        if pool is not None and pool.n_workers != want:
            pool.shutdown()
            pool = None
            self._worker_shard_state.clear()
        if pool is None:
            pool = ProcessExecPool(
                want, runtime_factory=self.contract_runtime_factory
            )
            self._exec_pool = pool
        return pool

    def _build_exec_job(self, shard_id: int, blocks: list[Block],
                        frames: list[bytes], widx: int, pool,
                        trace_ctx=None) -> bytes:
        """Encode one shard's round as an exec job, shipping a full
        state image iff the worker's replica cannot be current — wrong
        worker slot, respawned worker (epoch bump), or parent-side state
        changes since the last confirmed round (anchor flushes, reorgs:
        detected by height/root comparison, never assumed away)."""
        from ..crypto.signatures import key_material
        from ..serialization import canonical_encode

        shard = self.shards[shard_id]
        base_height = shard.chain.height
        base_root = shard.chain.state.state_root()
        job: dict[str, Any] = {
            "kind": "exec",
            "chain": shard.chain.chain_id,
            "base_height": base_height,
            "base_root": base_root,
            "blocks": frames,
            "require_signatures": shard.chain.params.require_signatures,
        }
        if trace_ctx is not None and trace_ctx.sampled:
            # Trace context rides the canonical job frame; the worker's
            # exec span re-parents onto it and its rows merge back with
            # the reply (see repro.exec.worker).
            job["trace"] = trace_ctx.to_wire()
        recorded = self._worker_shard_state.get(shard_id)
        if recorded != (widx, pool.epoch(widx), base_height, base_root):
            job["state"] = [
                [ns, key, value]
                for ns, key, value in shard.chain.state.dump_entries()
            ]
        if shard.chain.params.require_signatures:
            # Ship the signers' key material: keys registered after the
            # pool forked would otherwise be unknown in the worker and
            # fail verification spuriously.
            keys: dict[str, bytes] = {}
            for block in blocks:
                for tx in block.transactions:
                    if tx.signer is None:
                        continue
                    secret = key_material(tx.signer)
                    if secret is not None:
                        keys[tx.signer.key_bytes.hex()] = secret
            job["keys"] = keys
        return canonical_encode(job)

    def _apply_exec_response(self, shard_id: int, blocks: list[Block],
                             frames: list[bytes],
                             response: bytes | None, widx: int,
                             pool) -> None:
        """Commit one shard's worker result, falling back to in-process
        execution on any worker failure (death, need_state, execution
        error, or a state-root divergence caught before commit)."""
        from ..persist.codec import canonical_decode, decode_receipt

        shard = self.shards[shard_id]
        reply = None
        if response is not None:
            try:
                reply = canonical_decode(response)
            except Exception:  # noqa: BLE001 - treat as worker failure
                reply = None
        if reply is not None:
            # Merge the worker's telemetry delta whatever the status —
            # an error reply still did (and should account for) work.
            self._merge_worker_telemetry(reply.get("telemetry"))
        if reply is not None and reply.get("status") == "ok":
            try:
                chain = shard.chain
                bodies = reply["receipts"]
                deltas = [
                    [(op[0], op[1], bool(op[2]), op[3]) for op in ops]
                    for ops in reply["deltas"]
                ]
                raw_items = None
                receipts_lists = None
                if hasattr(chain.store, "install_raw"):
                    raw_items = [
                        {
                            "height": block.height,
                            "block_hash": block.block_hash,
                            "frame": frame,
                            "tx_ids": [tx.tx_id
                                       for tx in block.transactions],
                            "receipts": body_list,
                        }
                        for block, frame, body_list
                        in zip(blocks, frames, bodies)
                    ]
                if chain._subscribers or raw_items is None:
                    receipts_lists = [
                        [decode_receipt(body) for body in body_list]
                        for body_list in bodies
                    ]
                chain.apply_executed_blocks(
                    blocks, deltas,
                    receipts_lists=receipts_lists,
                    raw_items=raw_items,
                    expected_state_root=reply["state_root"],
                )
                self._worker_shard_state[shard_id] = (
                    widx, pool.epoch(widx),
                    chain.height, reply["state_root"],
                )
                return
            except Exception:  # noqa: BLE001 - fall back in-process
                pass
        # Worker died, replied need_state/error, or its result failed to
        # apply: forget its replica and run the serial path — identical
        # blocks, identical state transitions, just single-process.
        self._m_exec_fallback.inc()
        self._worker_shard_state.pop(shard_id, None)
        self._append_popped_blocks(shard_id, blocks)

    def _merge_worker_telemetry(self, payload) -> None:
        """Fold a worker reply's ``telemetry`` dict (span rows plus
        counter deltas, both canonical-encodable) into this process's
        registry and tracer.  Absent or malformed payloads are ignored
        — telemetry must never fail a commit."""
        if not isinstance(payload, dict):
            return
        try:
            spans = payload.get("spans")
            if spans:
                self._tracer.ingest_rows(spans)
            deltas = payload.get("counters")
            if deltas:
                self.telemetry.registry.merge_counter_deltas(deltas)
        except Exception:  # noqa: BLE001 - observability is best-effort
            pass

    def _seal_round_process(
        self, selected: list[int], ts: int, blocks_per_shard: int,
        workers: int | None,
        failures: dict[int, dict] | None = None,
    ) -> list[tuple[ShardSealStats, list, int] | None]:
        """Round body for ``executor="process"``: pop + build every
        shard's blocks, encode them once (wire frames double as the
        store frames), fan out to the pool, and commit each shard **as
        its worker finishes** — parent-side durable commits overlap the
        other workers' compute, which is most of the win on small
        machines.  Entries are collected per shard afterwards and merged
        in shard order by seal_round, so the beacon commitment is
        identical to the serial and thread paths."""
        from ..persist.codec import encode_block

        pool = self._get_exec_pool(workers)
        prepared: dict[int, list | None] = {}
        jobs: list[tuple[int, bytes]] = []
        job_shards: list[int] = []
        for shard_id in selected:
            t0 = time.perf_counter()
            try:
                blocks, txs_sealed = self._pop_round_blocks(
                    shard_id, ts, blocks_per_shard
                )
            except ReproError as exc:
                if failures is None:
                    raise
                failures[shard_id] = self._note_seal_failure(shard_id,
                                                             exc)
                prepared[shard_id] = None
                continue
            widx = shard_id % pool.n_workers
            ctx = self._round_trace_ctx(blocks)
            # [blocks, frames, txs_sealed, widx, active_s, trace_ctx]
            entry = [blocks, [], txs_sealed, widx, 0.0, ctx]
            if blocks:
                entry[1] = [encode_block(block) for block in blocks]
                jobs.append(
                    (widx,
                     self._build_exec_job(shard_id, blocks, entry[1],
                                          widx, pool, trace_ctx=ctx))
                )
                job_shards.append(shard_id)
                self._m_exec_offloaded.inc()
            entry[4] = time.perf_counter() - t0
            prepared[shard_id] = entry
        for job_index, response in pool.run(jobs):
            shard_id = job_shards[job_index]
            entry = prepared[shard_id]
            t0 = time.perf_counter()
            try:
                with self._tracer.span("shard.commit",
                                       parent=entry[5]) as span:
                    span.set_attr("shard", shard_id)
                    self._apply_exec_response(
                        shard_id, entry[0], entry[1], response, entry[3],
                        pool,
                    )
            except ReproError as exc:
                if failures is None:
                    raise
                failures[shard_id] = self._note_seal_failure(shard_id,
                                                             exc)
                prepared[shard_id] = None
                continue
            entry[4] += time.perf_counter() - t0
        results: list[tuple[ShardSealStats, list, int] | None] = []
        for shard_id in selected:
            entry = prepared[shard_id]
            if entry is None:
                results.append(None)
                continue
            shard = self.shards[shard_id]
            entries = self._collect_round_entries(shard_id)
            self._m_seal_shard_s.observe(entry[4])
            stats = ShardSealStats(
                txs_sealed=entry[2],
                blocks_produced=len(entries),
                duration_s=entry[4] + self._pending_ingest_s[shard_id],
                mempool_backlog=len(shard.mempool),
            )
            self._pending_ingest_s[shard_id] = 0.0
            results.append((stats, entries, shard.chain.height))
        return results

    def seal_round(
        self,
        shard_ids: Sequence[int] | None = None,
        timestamp: int | None = None,
        parallel: bool | None = None,
        blocks_per_shard: int = 1,
        executor: str | None = None,
        workers: int | None = None,
    ) -> RoundReport:
        """Seal up to ``blocks_per_shard`` blocks per loaded shard, then
        beacon-anchor the round.

        ``shard_ids`` restricts sealing to a subset (a stalled shard in
        the tests; a partitioned one in life).  Blocks appended outside
        the round (anchor-service flushes) are picked up and anchored
        too, so every shard block ends up under exactly one beacon
        header.

        ``executor`` selects the round engine (``None`` = the facade's
        configured default):

        * ``"serial"`` — in-process, one shard after another;
        * ``"thread"`` — the facade's thread pool: overlaps per-shard
          fsync/sqlite I/O (GIL released), execution still serializes;
        * ``"process"`` — the :mod:`repro.exec` pool (``workers`` sets
          its width, cached across rounds): validation and execution run
          in worker processes, the parent applies state deltas and
          commits as each worker finishes, with graceful in-process
          fallback for any worker that dies mid-round.

        The legacy ``parallel`` flag forces thread (True) or serial
        (False) and is ignored when ``executor`` is given explicitly.
        Whatever the engine, results are merged in shard order, so the
        beacon commitment is byte-identical across all three.
        """
        if blocks_per_shard < 1:
            raise ShardError("blocks_per_shard must be >= 1")
        mode = executor
        if mode is None:
            if parallel is not None:
                mode = "thread" if parallel else "serial"
            else:
                mode = self.executor
        if mode == "auto":
            mode = "thread" if self.seal_workers > 1 else "serial"
        if mode not in ("serial", "thread", "process"):
            raise ShardError(f"unknown executor mode {mode!r}")
        self._expire_stale_locks()
        selected = list(range(len(self.shards)) if shard_ids is None
                        else shard_ids)
        if shard_ids is None and self._quarantined:
            # Skip quarantined shards except on their probe rounds — a
            # probe that seals cleanly re-admits the shard below.
            selected = [
                sid for sid in selected
                if sid not in self._quarantined
                or (self.rounds_sealed - self._quarantined[sid])
                % self.quarantine_probe_every == 0
            ]
        ts = self.rounds_sealed if timestamp is None else timestamp
        round_t0 = time.perf_counter()
        per_shard: dict[int, ShardSealStats] = {}
        failed_shards: dict[int, dict] = {}
        entries: list[tuple[int, int, bytes, bytes]] = []
        tolerant = self.quarantine_after > 0
        with self._tracer.root_span("round.seal") as round_span:
            round_span.set_attr("round", self.rounds_sealed)
            round_span.set_attr("mode", mode)
            if mode == "process":
                results = self._seal_round_process(
                    selected, ts, blocks_per_shard, workers,
                    failures=failed_shards if tolerant else None,
                )
            elif mode == "thread" and len(selected) > 1:
                futures = [
                    self._get_seal_pool().submit(
                        self._seal_shard_round, sid, ts, blocks_per_shard
                    )
                    for sid in selected
                ]
                # Wait for EVERY worker before surfacing a failure:
                # raising while siblings still run would let a retry
                # round start a second task on a shard whose first task
                # is mid-mutation.
                futures_wait(futures)
                if not tolerant:
                    first_error = next(
                        (f.exception() for f in futures
                         if f.exception() is not None), None,
                    )
                    if first_error is not None:
                        raise first_error
                    results = [future.result() for future in futures]
                else:
                    results = []
                    for sid, future in zip(selected, futures):
                        exc = future.exception()
                        if exc is None:
                            results.append(future.result())
                        elif isinstance(exc, ReproError):
                            failed_shards[sid] = \
                                self._note_seal_failure(sid, exc)
                            results.append(None)
                        else:
                            raise exc
            elif not tolerant:
                results = [
                    self._seal_shard_round(sid, ts, blocks_per_shard)
                    for sid in selected
                ]
            else:
                results = []
                for sid in selected:
                    try:
                        results.append(
                            self._seal_shard_round(sid, ts,
                                                   blocks_per_shard)
                        )
                    except ReproError as exc:
                        failed_shards[sid] = \
                            self._note_seal_failure(sid, exc)
                        results.append(None)
            for shard_id, result in zip(selected, results):
                if result is None:
                    continue
                if tolerant:
                    self._note_seal_success(shard_id)
                stats, shard_entries, _ = result
                per_shard[shard_id] = stats
                entries.extend(shard_entries)
            t0 = time.perf_counter()
            with self._tracer.span("round.beacon_commit") as beacon_span:
                beacon_receipt = (
                    self.beacon.anchor_round(entries, timestamp=ts)
                    if entries else None
                )
                beacon_span.set_attr("entries", len(entries))
            beacon_s = time.perf_counter() - t0
            self._m_beacon_s.observe(beacon_s)
        # Advance the anchored watermarks only now, with the round's
        # beacon commitment durable: a seal or beacon failure above
        # leaves the watermarks untouched, so the next successful round
        # re-collects (and actually anchors) the same blocks.
        for shard_id, result in zip(selected, results):
            if result is not None:
                self._anchored_height[shard_id] = result[2]
        report = RoundReport(
            round_no=self.rounds_sealed,
            per_shard=per_shard,
            beacon_receipt=beacon_receipt,
            beacon_duration_s=beacon_s,
            failed_shards=failed_shards,
        )
        self.rounds_sealed += 1
        round_s = time.perf_counter() - round_t0
        self._round_pace_s = (round_s if self._round_pace_s == 0.0
                              else 0.8 * self._round_pace_s + 0.2 * round_s)
        self._m_seal_round_s.observe(round_s)
        self._m_txs_sealed.inc(report.txs_sealed)
        self._last_round = report
        for coordinator in self._coordinators:
            coordinator.on_round_sealed(report)
        if (self.checkpoint_every_rounds > 0
                and self.rounds_sealed % self.checkpoint_every_rounds == 0):
            self.checkpoint()
        return report

    # ------------------------------------------------------------------
    # Replicas (snapshot sync; see repro.sync)
    # ------------------------------------------------------------------
    def spawn_replica(
        self,
        shard_id: int,
        storage_dir: str,
        net,
        node_id: str | None = None,
        peers: Sequence[str] = (),
        anchor_batch_size: int | None = None,
        region: str = "default",
    ):
        """Create a :class:`~repro.sync.replica.ShardReplica` of one
        shard: a durable store directory plus a network identity that
        :meth:`~repro.sync.replica.ShardReplica.catch_up` brings to the
        beacon-anchored head over ``peers`` (snapshot-sync gateway
        nodes) with zero genesis replay.

        The replica inherits the shard's chain parameters and uses
        *this* facade's beacon as its trust root — on a real deployment
        that is the beacon light-client sync the ROADMAP still lists;
        verification only ever touches beacon headers.
        """
        from ..sync.replica import ShardReplica

        shard = self.shard(shard_id)          # validates the id
        if node_id is None:
            node_id = f"replica-{shard.chain.chain_id}-{self._replica_seq}"
            self._replica_seq += 1
        return ShardReplica(
            shard_id=shard_id,
            params=ChainParams(
                chain_id=shard.chain.chain_id,
                max_block_txs=shard.chain.params.max_block_txs,
                reorg_journal_depth=shard.chain.params.reorg_journal_depth,
            ),
            storage_dir=storage_dir,
            net=net,
            node_id=node_id,
            peers=peers,
            beacon=self.beacon,
            anchor_batch_size=(anchor_batch_size if anchor_batch_size
                               is not None else shard.anchor.batch_size),
            region=region,
        )

    def seal_until_drained(self, max_rounds: int = 10_000) -> list[RoundReport]:
        """Seal rounds until every mempool is empty (bench/test helper)."""
        reports: list[RoundReport] = []
        while self.mempool_backlog and len(reports) < max_rounds:
            reports.append(self.seal_round())
        if self.mempool_backlog:
            raise ShardError(
                f"mempools not drained after {max_rounds} rounds"
            )
        return reports
