"""Sharded execution: scale-out over independent provenance chains.

Design note
-----------

One :class:`~repro.chain.blockchain.Blockchain` serializes all traffic;
the SOK's capture-heavy workloads (HPC provenance in SciChain, IoT
streams in Sigwart et al.) outgrow that long before they outgrow the
cryptography.  This package partitions the system by **provenance
namespace** (tenant / organization prefix of a subject id) while keeping
a single verifiable root of trust:

* :class:`ShardRouter` — stable SHA-based namespace → shard placement;
  whole namespaces co-reside so the common queries stay single-shard.
* :class:`Shard` / :class:`ShardedChain` — each shard is a full vertical
  stack (chain + mempool + provenance DB + anchor service + query
  engine) sharing nothing with its siblings; the facade batches ingest
  (``submit_many``), seals every loaded shard per round
  (``seal_round``), and reports per-shard timings so the scaling bench
  can model the real deployment's critical path (slowest shard + beacon
  commit — shards seal concurrently on separate machines).
* :class:`BeaconChain` — per round, the new shard block hashes are
  Merkle-batched and the root lands in ONE beacon transaction (the
  AnchorService receipt idiom one level up).  Beacon load grows with
  rounds, not traffic; any shard block verifies against one beacon
  header.
* :class:`CrossShardCoordinator` — two-phase lock/commit for handoffs
  spanning shards, with on-chain lock/commit/abort legs and
  abort-and-unlock on sealing-round timeout.  Handoff provenance records
  materialize only on full commit.  The coordinator WALs every state
  transition through the facade's meta surface and replays it
  presumed-abort on :meth:`~CrossShardCoordinator.recover`; locks carry
  lease rounds and a holder epoch, and participant shards fence legs
  from older coordinator generations.
* :class:`ShardedQueryEngine` — scatter-gather federation of the
  per-shard query engines; verified answers compound the record's
  anchored Merkle proof with a beacon proof of its anchor block, and
  :meth:`~ShardedQueryEngine.federated_proof` packages the whole chain
  of evidence for a verifier holding nothing but beacon headers.

Trust recap: record → batch root → anchor tx → shard header → round
root → beacon anchor tx → beacon header.  Tampering anywhere under a
beacon header breaks one of those six hops.
"""

from .beacon import (
    BeaconChain,
    BeaconLightBundle,
    BeaconReceipt,
    ShardBlockProof,
)
from .query import FederatedProof, ShardedQueryEngine, ShardedVerifiedAnswer
from .router import NAMESPACE_SEP, ShardRouter, namespace_of
from .shardchain import (
    LockEntry,
    RoundReport,
    Shard,
    ShardedChain,
    ShardSealStats,
    SubmitReport,
)
from .twophase import (
    ABORTED,
    ABORTING,
    COMMITTED,
    COMMITTING,
    FINALIZING,
    PREPARING,
    WAL_STEPS,
    CrossShardCoordinator,
    CrossShardTransfer,
)

__all__ = [
    "BeaconChain",
    "BeaconLightBundle",
    "BeaconReceipt",
    "ShardBlockProof",
    "FederatedProof",
    "ShardedQueryEngine",
    "ShardedVerifiedAnswer",
    "NAMESPACE_SEP",
    "ShardRouter",
    "namespace_of",
    "LockEntry",
    "RoundReport",
    "Shard",
    "ShardedChain",
    "ShardSealStats",
    "SubmitReport",
    "ABORTED",
    "ABORTING",
    "COMMITTED",
    "COMMITTING",
    "FINALIZING",
    "PREPARING",
    "WAL_STEPS",
    "CrossShardCoordinator",
    "CrossShardTransfer",
]
