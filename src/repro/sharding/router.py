"""Deterministic namespace → shard routing.

The router is the only component that decides data placement, so its
mapping must be *stable* (the same namespace lands on the same shard in
every process, every run — it is derived from a domain-separated SHA-256,
never from Python's randomized ``hash()``) and *total* (every transaction
routes somewhere; unroutable ones fail loudly).

Placement is by **provenance namespace**: the organization / tenant
prefix of a subject (``"acme-pharma/lot-001"`` → ``"acme-pharma"``).
Keeping a whole namespace on one shard makes the common queries
(object history, tenant audit) single-shard; only explicit cross-namespace
derivations pay the two-phase-commit cost.
"""

from __future__ import annotations

from ..chain.transaction import Transaction
from ..crypto.hashing import DOMAIN_SHARD, hash_bytes
from ..errors import ShardError

#: Separator between the namespace prefix and the object id in a subject.
NAMESPACE_SEP = "/"


def namespace_of(subject: str) -> str:
    """The namespace (tenant) prefix of a subject string.

    ``"orgA/lot-7"`` → ``"orgA"``; a subject without a separator is its
    own namespace (single-tenant objects still route deterministically).
    """
    head, _, _ = subject.partition(NAMESPACE_SEP)
    return head


class ShardRouter:
    """Maps namespaces (and transactions) onto ``n_shards`` buckets."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ShardError("need at least one shard")
        self.n_shards = n_shards
        # The hash is cheap but routing sits on the ingest hot path and
        # namespaces repeat heavily (Zipf traffic), so memoize.
        self._memo: dict[str, int] = {}

    # ------------------------------------------------------------------
    def shard_for(self, namespace: str) -> int:
        """Stable shard index for a namespace."""
        shard = self._memo.get(namespace)
        if shard is None:
            digest = hash_bytes(namespace.encode("utf-8"), DOMAIN_SHARD)
            shard = int.from_bytes(digest[:8], "big") % self.n_shards
            self._memo[namespace] = shard
        return shard

    def shard_for_subject(self, subject: str) -> int:
        return self.shard_for(namespace_of(subject))

    # ------------------------------------------------------------------
    def key_for(self, tx: Transaction) -> str:
        """The routing namespace of a transaction.

        Precedence: an explicit ``payload["namespace"]``, else the
        namespace prefix of ``payload["subject"]``, else the sender
        (every transaction routes *somewhere*).
        """
        payload = tx.payload
        namespace = payload.get("namespace")
        if namespace:
            return str(namespace)
        subject = payload.get("subject")
        if subject:
            return namespace_of(str(subject))
        if tx.sender:
            return tx.sender
        raise ShardError("transaction has no namespace, subject, or sender")

    def route(self, tx: Transaction) -> int:
        return self.shard_for(self.key_for(tx))

    def partition(self, txs) -> dict[int, list[Transaction]]:
        """Group transactions by destination shard (batch routing)."""
        buckets: dict[int, list[Transaction]] = {}
        for tx in txs:
            buckets.setdefault(self.route(tx), []).append(tx)
        return buckets

    def lock_key_for(self, tx: Transaction) -> str | None:
        """The contention key the cross-shard lock table guards.

        Locks are per *subject* (object), not per namespace: a handoff of
        one lot must not freeze the whole tenant.
        """
        subject = tx.payload.get("subject")
        return str(subject) if subject else None
