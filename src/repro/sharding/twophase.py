"""Cross-shard transfers: crash-safe two-phase lock/commit over shards.

A provenance handoff whose source and derived objects live on different
shards cannot be a single transaction — no block contains both writes.
The coordinator runs the classic 2PC shape on top of the chains, using
the :mod:`repro.crosschain.messages` idiom of on-chain protocol legs:

* **prepare** — lock both subjects in the facade's lock table and commit
  a ``lock`` transaction on each participant shard (the durable record
  that the handoff began);
* **commit** — once every lock leg is on-chain, commit a ``commit``
  transaction per shard carrying the writes, then materialize the
  handoff provenance records (``handoff-out`` on the source shard,
  ``handoff-in`` on the target) and release the locks;
* **abort** — if the prepare phase is not fully on-chain within
  ``timeout_rounds`` sealing rounds (a stalled or partitioned shard),
  commit ``abort`` legs where possible and **unlock** — the subjects are
  writable again and no provenance record of the handoff ever appears.

Atomicity argument: the handoff records are inserted only on full
commit, and while any phase is in flight both subjects are locked, so no
interleaved write can observe a half-transferred object.

Crash safety
------------

The coordinator writes a **transfer WAL** through the facade's
``put_meta`` surface (each write commits before returning on a durable
deployment) and follows a persist-before-act discipline: every state
transition — ``begin``, each ``lock_leg``/``commit_leg`` submission,
``committing``, ``finalizing``, and the terminal ``finalized`` /
``aborting`` / ``aborted`` steps — lands in the WAL *before* the action
it describes takes effect.  On reopen, :meth:`CrossShardCoordinator.
recover` replays the WAL **presumed-abort**:

* a transfer whose commit legs are all on-chain is *finalized* — the
  handoff record pair is re-materialized idempotently (records already
  present are skipped, anchor re-enqueue tolerates duplicates);
* every other in-flight transfer is *aborted* and its subjects unlocked.

Each coordinator generation takes a strictly increasing **epoch**
(persisted in the same meta table) and stamps it on every protocol leg;
the facade refuses legs from a fenced (older) epoch, locks carry the
holder epoch plus a lease round, and a recovered coordinator reclaims
its predecessors' locks under the new epoch — a zombie coordinator that
lost the recovery race can neither land half a transfer on-chain nor
release a lock its successor re-owns.  The ``crash_after_wal_writes`` /
``crash_at_step`` hooks raise :class:`~repro.persist.segment.CrashPoint`
immediately *after* a WAL write, which is how the chaos harness's crash
matrix kills the coordinator at every persisted step boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..chain import Transaction, TxKind
from ..crosschain.messages import TransferOutcome
from ..errors import AnchorError, ChainError, ShardError
from ..persist.segment import CrashPoint
from .shardchain import RoundReport, ShardedChain

#: Transfer lifecycle states.
PREPARING = "preparing"
COMMITTING = "committing"
FINALIZING = "finalizing"
COMMITTED = "committed"
ABORTING = "aborting"
ABORTED = "aborted"

#: Base names of the persisted WAL steps, in protocol order.  Per-shard
#: leg steps are written as ``"lock_leg:{shard_id}"`` etc.; the crash
#: hooks match either the base name or the full step string.
WAL_STEPS = (
    "begin", "lock_leg", "committing", "commit_leg",
    "finalizing", "finalized", "aborting", "aborted",
)


@dataclass
class CrossShardTransfer:
    """One handoff's 2PC state machine."""

    xid: str
    source_subject: str
    target_subject: str
    source_shard: int
    target_shard: int
    payload: dict
    started_round: int
    deadline_round: int
    timestamp: int = 0
    state: str = PREPARING
    epoch: int = 0
    wal_step: str = ""
    lock_tx_ids: dict[int, str] = field(default_factory=dict)
    commit_tx_ids: dict[int, str] = field(default_factory=dict)
    outcome: TransferOutcome | None = None

    @property
    def participants(self) -> tuple[int, ...]:
        """Distinct shards involved (one when both subjects co-reside)."""
        if self.source_shard == self.target_shard:
            return (self.source_shard,)
        return (self.source_shard, self.target_shard)

    @property
    def is_cross_shard(self) -> bool:
        return self.source_shard != self.target_shard

    def subjects_on(self, shard_id: int) -> list[str]:
        subjects = []
        if shard_id == self.source_shard:
            subjects.append(self.source_subject)
        if shard_id == self.target_shard and \
                self.target_subject not in subjects:
            subjects.append(self.target_subject)
        return subjects

    # ------------------------------------------------------------------
    # WAL round-trip (canonical-encodable: string keys, pair lists)
    # ------------------------------------------------------------------
    def to_wal_record(self, step: str) -> dict:
        return {
            "xid": self.xid,
            "source_subject": self.source_subject,
            "target_subject": self.target_subject,
            "source_shard": self.source_shard,
            "target_shard": self.target_shard,
            "payload": dict(self.payload),
            "started_round": self.started_round,
            "deadline_round": self.deadline_round,
            "timestamp": self.timestamp,
            "state": self.state,
            "epoch": self.epoch,
            "step": step,
            "lock_tx_ids": sorted(
                [sid, tx_id] for sid, tx_id in self.lock_tx_ids.items()
            ),
            "commit_tx_ids": sorted(
                [sid, tx_id] for sid, tx_id in self.commit_tx_ids.items()
            ),
        }

    @classmethod
    def from_wal_record(cls, rec: Mapping[str, Any]) -> CrossShardTransfer:
        transfer = cls(
            xid=str(rec["xid"]),
            source_subject=str(rec["source_subject"]),
            target_subject=str(rec["target_subject"]),
            source_shard=int(rec["source_shard"]),
            target_shard=int(rec["target_shard"]),
            payload=dict(rec.get("payload", {})),
            started_round=int(rec.get("started_round", 0)),
            deadline_round=int(rec.get("deadline_round", 0)),
            timestamp=int(rec.get("timestamp", 0)),
            state=str(rec.get("state", PREPARING)),
            epoch=int(rec.get("epoch", 0)),
            wal_step=str(rec.get("step", "")),
        )
        transfer.lock_tx_ids = {
            int(sid): str(tx_id)
            for sid, tx_id in rec.get("lock_tx_ids", [])
        }
        transfer.commit_tx_ids = {
            int(sid): str(tx_id)
            for sid, tx_id in rec.get("commit_tx_ids", [])
        }
        return transfer


class CrossShardCoordinator:
    """Drives cross-shard transfers phase by phase, one sealing round at
    a time (attach to the facade; :meth:`on_round_sealed` is its tick).
    See the module docstring for the WAL / epoch / recovery contract."""

    _SEQ_KEY = "xshard/seq"
    _EPOCH_KEY = "xshard/epoch"
    _ACTIVE_KEY = "xshard/active"
    _T_PREFIX = "xshard/t/"

    def __init__(
        self,
        sharded: ShardedChain,
        timeout_rounds: int = 3,
        sender: str = "xshard-coordinator",
        recover: bool = True,
    ) -> None:
        if timeout_rounds < 1:
            raise ShardError("timeout must be at least one round")
        self.sharded = sharded
        self.timeout_rounds = timeout_rounds
        self.sender = sender
        self.transfers: dict[str, CrossShardTransfer] = {}
        self.committed = 0
        self.aborted = 0
        self.recovered = 0
        # Crash-injection hooks (crash-matrix tests / chaos harness):
        # raise CrashPoint immediately AFTER the matching WAL write, so
        # every persisted step boundary is a kill site.
        self.crash_at_step: str | None = None
        self.crash_after_wal_writes: int | None = None
        self.wal_writes = 0
        # Generation fencing: every coordinator on this store gets a
        # strictly increasing epoch, persisted before use.
        self.epoch = int(sharded.get_meta(self._EPOCH_KEY, 0)) + 1
        sharded.put_meta(self._EPOCH_KEY, self.epoch)
        sharded.set_coordinator_epoch(self.epoch)
        # Seed the xid sequence from the store: together with the epoch
        # prefix this makes xids collision-free across restarts.
        self._seq = int(sharded.get_meta(self._SEQ_KEY, 0))
        registry = sharded.telemetry.registry
        self._registry = registry
        self._m_abort_legs_lost = registry.counter(
            "xshard_abort_legs_lost_total"
        )
        sharded.attach_coordinator(self)
        self.last_recovery: dict | None = None
        if recover:
            self.last_recovery = self.recover()

    # ------------------------------------------------------------------
    # Phase 1: begin / prepare
    # ------------------------------------------------------------------
    def begin(
        self,
        source_subject: str,
        target_subject: str,
        payload: Mapping[str, Any] | None = None,
        actor: str = "",
        timestamp: int = 0,
    ) -> CrossShardTransfer:
        """Start a handoff; returns the transfer (check ``state`` — a
        lock conflict aborts immediately rather than deadlocking)."""
        router = self.sharded.router
        xid = f"xfer-e{self.epoch:03d}-{self._seq:06d}"
        self._seq += 1
        self.sharded.put_meta(self._SEQ_KEY, self._seq)
        transfer = CrossShardTransfer(
            xid=xid,
            source_subject=source_subject,
            target_subject=target_subject,
            source_shard=router.shard_for_subject(source_subject),
            target_shard=router.shard_for_subject(target_subject),
            payload=dict(payload or {}),
            started_round=self.sharded.rounds_sealed,
            deadline_round=self.sharded.rounds_sealed + self.timeout_rounds,
            timestamp=timestamp,
            epoch=self.epoch,
        )
        transfer.payload.setdefault("actor", actor or self.sender)
        # Lock acquisition order is (shard, subject)-sorted so two
        # transfers over the same pair cannot deadlock.
        acquired: list[tuple[int, str]] = []
        for shard_id, subject in self._lock_pairs(transfer):
            if self.sharded.acquire_lock(shard_id, subject, xid,
                                         epoch=self.epoch):
                acquired.append((shard_id, subject))
            else:
                for got_shard, got_subject in acquired:
                    self.sharded.release_lock(got_shard, got_subject, xid,
                                              epoch=self.epoch)
                # Nothing durable happened: no WAL entry, no legs.
                transfer.state = ABORTED
                transfer.outcome = self._outcome(transfer, "aborted",
                                                 reason="lock_conflict")
                self.aborted += 1
                self._count_abort("lock_conflict")
                self.transfers[xid] = transfer
                return transfer
        self.transfers[xid] = transfer
        self._wal_begin(transfer)
        try:
            for shard_id in transfer.participants:
                tx = self._leg(transfer, shard_id, phase="lock")
                transfer.lock_tx_ids[shard_id] = tx.tx_id
                self._wal_write(transfer, f"lock_leg:{shard_id}")
                self.sharded.submit_to(shard_id, tx)
        except ChainError:
            # A leg that cannot even be queued (full mempool) must not
            # leave the subjects locked forever.
            self._abort(transfer, reason="submit_failed")
        return transfer

    # ------------------------------------------------------------------
    # Round tick: advance every in-flight transfer
    # ------------------------------------------------------------------
    def on_round_sealed(self, report: RoundReport) -> None:
        round_no = report.round_no
        for transfer in list(self.transfers.values()):
            if transfer.state == PREPARING:
                if len(transfer.lock_tx_ids) == len(transfer.participants) \
                        and self._all_committed(transfer,
                                                transfer.lock_tx_ids):
                    self._start_commit(transfer)
                elif round_no >= transfer.deadline_round:
                    self._abort(transfer, reason="prepare_timeout")
            elif transfer.state == COMMITTING:
                if self._all_committed(transfer, transfer.commit_tx_ids):
                    self._finalize(transfer)
            if transfer.state in (PREPARING, COMMITTING):
                self._renew_leases(transfer)

    # ------------------------------------------------------------------
    # Recovery (WAL replay, presumed-abort)
    # ------------------------------------------------------------------
    def recover(self) -> dict:
        """Replay the transfer WAL after a coordinator (or process)
        death: re-own every in-flight transfer's locks under this
        coordinator's epoch, finalize the transfers whose commit legs
        are all on-chain (idempotently re-materializing the handoff
        record pair), presumed-abort everything else, then sweep locks
        stale generations left behind.  Safe to call on a fresh store
        (empty WAL → no-op); returns a summary dict."""
        summary: dict[str, Any] = {
            "finalized": [], "aborted": [], "cleaned": [],
            "locks_dropped": 0,
        }
        for xid in list(self.sharded.get_meta(self._ACTIVE_KEY, []) or []):
            rec = self.sharded.get_meta(self._T_PREFIX + xid)
            if rec is None:
                self._active_remove(xid)
                summary["cleaned"].append(xid)
                continue
            transfer = CrossShardTransfer.from_wal_record(rec)
            self.transfers[xid] = transfer
            if transfer.state in (COMMITTED, ABORTED):
                # Terminal step persisted but the active-list update was
                # lost with the crash: nothing to resolve, just clean up
                # (any leftover locks fall to the stale sweep below).
                self._active_remove(xid)
                summary["cleaned"].append(xid)
                continue
            transfer.epoch = self.epoch
            for shard_id, subject in self._lock_pairs(transfer):
                self.sharded.reclaim_lock(shard_id, subject, xid,
                                          self.epoch)
            if transfer.state in (COMMITTING, FINALIZING) \
                    and len(transfer.commit_tx_ids) \
                    == len(transfer.participants) \
                    and self._all_committed(transfer,
                                            transfer.commit_tx_ids):
                self._finalize(transfer)
                summary["finalized"].append(xid)
                self._count_recovered("finalized")
            else:
                self._abort(transfer, reason="recovered_presumed_abort")
                summary["aborted"].append(xid)
                self._count_recovered("aborted")
            self.recovered += 1
        summary["locks_dropped"] = self.sharded.drop_stale_locks(self.epoch)
        return summary

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, xid: str) -> CrossShardTransfer:
        transfer = self.transfers.get(xid)
        if transfer is None:
            raise ShardError(f"unknown transfer {xid!r}")
        return transfer

    @property
    def active(self) -> list[CrossShardTransfer]:
        return [t for t in self.transfers.values()
                if t.state in (PREPARING, COMMITTING, FINALIZING)]

    # ------------------------------------------------------------------
    # WAL plumbing
    # ------------------------------------------------------------------
    def _wal_begin(self, transfer: CrossShardTransfer) -> None:
        active = list(self.sharded.get_meta(self._ACTIVE_KEY, []) or [])
        if transfer.xid not in active:
            active.append(transfer.xid)
            self.sharded.put_meta(self._ACTIVE_KEY, active)
        self._wal_write(transfer, "begin")

    def _wal_write(self, transfer: CrossShardTransfer, step: str) -> None:
        """Persist the transfer's current state under ``step``, then
        fire the crash hooks — the injected CrashPoint lands *after*
        the write committed, which is exactly the boundary a real
        process death exposes."""
        transfer.wal_step = step
        self.sharded.put_meta(self._T_PREFIX + transfer.xid,
                              transfer.to_wal_record(step))
        self.wal_writes += 1
        if self.crash_after_wal_writes is not None \
                and self.wal_writes >= self.crash_after_wal_writes:
            raise CrashPoint(
                f"injected coordinator crash after WAL write "
                f"{self.wal_writes} (step {step!r})"
            )
        if self.crash_at_step is not None \
                and self.crash_at_step in (step, step.split(":", 1)[0]):
            raise CrashPoint(
                f"injected coordinator crash at WAL step {step!r}"
            )

    def _wal_terminal(self, transfer: CrossShardTransfer,
                      step: str) -> None:
        self._wal_write(transfer, step)
        self._active_remove(transfer.xid)

    def _active_remove(self, xid: str) -> None:
        active = list(self.sharded.get_meta(self._ACTIVE_KEY, []) or [])
        if xid in active:
            active.remove(xid)
            self.sharded.put_meta(self._ACTIVE_KEY, active)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @staticmethod
    def _lock_pairs(transfer: CrossShardTransfer) -> list[tuple[int, str]]:
        return sorted(
            {(transfer.source_shard, transfer.source_subject),
             (transfer.target_shard, transfer.target_subject)}
        )

    def _renew_leases(self, transfer: CrossShardTransfer) -> None:
        # Re-acquiring with the owning xid renews the lease each round;
        # a lease that expires therefore marks a dead coordinator.
        for shard_id, subject in self._lock_pairs(transfer):
            self.sharded.acquire_lock(shard_id, subject, transfer.xid,
                                      epoch=self.epoch)

    def _leg(self, transfer: CrossShardTransfer, shard_id: int,
             phase: str) -> Transaction:
        """One on-chain protocol leg (lock / commit / abort)."""
        payload: dict[str, Any] = {
            "message_id": f"{transfer.xid}:{phase}:{shard_id}",
            "xid": transfer.xid,
            "phase": phase,
            "epoch": self.epoch,
            "subjects": transfer.subjects_on(shard_id),
            "source": transfer.source_subject,
            "target": transfer.target_subject,
        }
        if phase == "commit":
            payload["writes"] = dict(transfer.payload)
        # Protocol legs carry a fee so the fee-priority mempool seals
        # them ahead of bulk capture traffic: locks are held for rounds,
        # not for the whole backlog.
        return Transaction(
            sender=self.sender,
            kind=TxKind.CROSS_CHAIN,
            payload=payload,
            timestamp=transfer.timestamp,
            fee=1,
        ).seal()

    def _all_committed(self, transfer: CrossShardTransfer,
                       tx_ids: Mapping[int, str]) -> bool:
        return all(
            self.sharded.shard(sid).chain.find_transaction(tx_id) is not None
            for sid, tx_id in tx_ids.items()
        )

    def _start_commit(self, transfer: CrossShardTransfer) -> None:
        transfer.state = COMMITTING
        self._wal_write(transfer, "committing")
        try:
            for shard_id in transfer.participants:
                tx = self._leg(transfer, shard_id, phase="commit")
                transfer.commit_tx_ids[shard_id] = tx.tx_id
                self._wal_write(transfer, f"commit_leg:{shard_id}")
                self.sharded.submit_to(shard_id, tx)
        except ChainError:
            self._abort(transfer, reason="submit_failed")

    # Record fields the transfer payload may never override: they carry
    # the protocol's identity, routing, and ordering.
    _PROTECTED_FIELDS = frozenset(
        {"record_id", "subject", "operation", "peer", "actor",
         "timestamp", "xid"}
    )

    def _finalize(self, transfer: CrossShardTransfer) -> None:
        """Both commit legs are on-chain: materialize the handoff
        records, make them durable, then write the terminal WAL step
        and release the locks.  Idempotent — recovery replays this for
        a transfer that crashed mid-finalize, and records that already
        exist are skipped (their anchor enqueue tolerates duplicates)."""
        transfer.state = FINALIZING
        self._wal_write(transfer, "finalizing")
        actor = str(transfer.payload.get("actor", self.sender))
        extra = {k: v for k, v in transfer.payload.items()
                 if k not in self._PROTECTED_FIELDS}
        base = {
            "actor": actor,
            "timestamp": transfer.timestamp,
            "xid": transfer.xid,
        }
        self._materialize(transfer.source_shard, {
            **extra,
            "record_id": f"{transfer.xid}:out",
            "subject": transfer.source_subject,
            "operation": "handoff-out",
            "peer": transfer.target_subject,
            **base,
        })
        self._materialize(transfer.target_shard, {
            **extra,
            "record_id": f"{transfer.xid}:in",
            "subject": transfer.target_subject,
            "operation": "handoff-in",
            "peer": transfer.source_subject,
            **base,
        })
        # The record pair must survive a crash that happens the instant
        # the WAL says "finalized": checkpoint the participant stores
        # BEFORE the terminal step (no-op on in-memory deployments).
        for shard_id in transfer.participants:
            self.sharded.shard(shard_id).checkpoint()
        transfer.state = COMMITTED
        self._wal_terminal(transfer, "finalized")
        self._release_locks(transfer)
        transfer.outcome = self._outcome(transfer, "completed")
        self.committed += 1

    def _materialize(self, shard_id: int, record: dict) -> None:
        """Insert one handoff record, idempotently: a replayed finalize
        finds the record already stored (and possibly already anchored)
        and must complete without double-inserting."""
        shard = self.sharded.shard(shard_id)
        if not shard.database.contains(record["record_id"]):
            self.sharded.ingest_record(record)
            return
        try:
            # Present but maybe not anchored (anchor-service state is
            # checkpointed meta and can trail the record log): re-queue.
            shard.anchor.enqueue(shard.database.get(record["record_id"]))
            shard.query.notify_write()
        except AnchorError:
            pass  # already anchored or pending — nothing to redo

    def _abort(self, transfer: CrossShardTransfer, reason: str) -> None:
        """Abort path: persist intent, leave an on-chain abort record
        where we can, then unlock — the subjects accept writes again
        immediately.  Legs a shard cannot take right now are *counted*
        (``xshard_abort_legs_lost_total`` + the outcome's
        ``abort_legs_lost``) so incomplete abort audit trails are
        visible to operators instead of silently dropped."""
        transfer.state = ABORTING
        self._wal_write(transfer, "aborting")
        legs_lost = 0
        for shard_id in transfer.participants:
            try:
                self.sharded.submit_to(
                    shard_id, self._leg(transfer, shard_id, phase="abort")
                )
            except ChainError:
                legs_lost += 1
        if legs_lost:
            self._m_abort_legs_lost.inc(legs_lost)
        transfer.state = ABORTED
        self._wal_terminal(transfer, "aborted")
        self._release_locks(transfer)
        transfer.outcome = self._outcome(transfer, "aborted",
                                         reason=reason,
                                         abort_legs_lost=legs_lost)
        self.aborted += 1
        self._count_abort(reason)

    def _release_locks(self, transfer: CrossShardTransfer) -> None:
        for shard_id, subject in self._lock_pairs(transfer):
            self.sharded.release_lock(shard_id, subject, transfer.xid,
                                      epoch=self.epoch)

    def _count_abort(self, reason: str) -> None:
        self._registry.counter("xshard_aborts_total", reason=reason).inc()

    def _count_recovered(self, resolution: str) -> None:
        self._registry.counter("xshard_transfers_recovered_total",
                               resolution=resolution).inc()

    def _outcome(self, transfer: CrossShardTransfer, status: str,
                 reason: str = "", **extra_fields: Any) -> TransferOutcome:
        n = len(transfer.participants)
        legs = len(transfer.lock_tx_ids) + len(transfer.commit_tx_ids)
        extra = {"xid": transfer.xid, "cross_shard": transfer.is_cross_shard}
        if reason:
            extra["reason"] = reason
        extra.update(extra_fields)
        return TransferOutcome(
            mechanism="shard-2pc",
            status=status,
            messages=2 * n,
            on_chain_txs=legs,
            latency_ticks=self.sharded.rounds_sealed - transfer.started_round,
            extra=extra,
        )
