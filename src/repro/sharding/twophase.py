"""Cross-shard transfers: two-phase lock/commit over shard chains.

A provenance handoff whose source and derived objects live on different
shards cannot be a single transaction — no block contains both writes.
The coordinator runs the classic 2PC shape on top of the chains, using
the :mod:`repro.crosschain.messages` idiom of on-chain protocol legs:

* **prepare** — lock both subjects in the facade's lock table and commit
  a ``lock`` transaction on each participant shard (the durable record
  that the handoff began);
* **commit** — once every lock leg is on-chain, commit a ``commit``
  transaction per shard carrying the writes, then materialize the
  handoff provenance records (``handoff-out`` on the source shard,
  ``handoff-in`` on the target) and release the locks;
* **abort** — if the prepare phase is not fully on-chain within
  ``timeout_rounds`` sealing rounds (a stalled or partitioned shard),
  commit ``abort`` legs where possible and **unlock** — the subjects are
  writable again and no provenance record of the handoff ever appears.

Atomicity argument: the handoff records are inserted only on full
commit, and while any phase is in flight both subjects are locked, so no
interleaved write can observe a half-transferred object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..chain import Transaction, TxKind
from ..crosschain.messages import TransferOutcome
from ..errors import ChainError, ShardError
from .shardchain import RoundReport, ShardedChain

#: Transfer lifecycle states.
PREPARING = "preparing"
COMMITTING = "committing"
COMMITTED = "committed"
ABORTED = "aborted"


@dataclass
class CrossShardTransfer:
    """One handoff's 2PC state machine."""

    xid: str
    source_subject: str
    target_subject: str
    source_shard: int
    target_shard: int
    payload: dict
    started_round: int
    deadline_round: int
    timestamp: int = 0
    state: str = PREPARING
    lock_tx_ids: dict[int, str] = field(default_factory=dict)
    commit_tx_ids: dict[int, str] = field(default_factory=dict)
    outcome: TransferOutcome | None = None

    @property
    def participants(self) -> tuple[int, ...]:
        """Distinct shards involved (one when both subjects co-reside)."""
        if self.source_shard == self.target_shard:
            return (self.source_shard,)
        return (self.source_shard, self.target_shard)

    @property
    def is_cross_shard(self) -> bool:
        return self.source_shard != self.target_shard

    def subjects_on(self, shard_id: int) -> list[str]:
        subjects = []
        if shard_id == self.source_shard:
            subjects.append(self.source_subject)
        if shard_id == self.target_shard and \
                self.target_subject not in subjects:
            subjects.append(self.target_subject)
        return subjects


class CrossShardCoordinator:
    """Drives cross-shard transfers phase by phase, one sealing round at
    a time (attach to the facade; :meth:`on_round_sealed` is its tick)."""

    def __init__(
        self,
        sharded: ShardedChain,
        timeout_rounds: int = 3,
        sender: str = "xshard-coordinator",
    ) -> None:
        if timeout_rounds < 1:
            raise ShardError("timeout must be at least one round")
        self.sharded = sharded
        self.timeout_rounds = timeout_rounds
        self.sender = sender
        self.transfers: dict[str, CrossShardTransfer] = {}
        self._seq = 0
        self.committed = 0
        self.aborted = 0
        sharded.attach_coordinator(self)

    # ------------------------------------------------------------------
    # Phase 1: begin / prepare
    # ------------------------------------------------------------------
    def begin(
        self,
        source_subject: str,
        target_subject: str,
        payload: Mapping[str, Any] | None = None,
        actor: str = "",
        timestamp: int = 0,
    ) -> CrossShardTransfer:
        """Start a handoff; returns the transfer (check ``state`` — a
        lock conflict aborts immediately rather than deadlocking)."""
        router = self.sharded.router
        xid = f"xfer-{self._seq:06d}"
        self._seq += 1
        transfer = CrossShardTransfer(
            xid=xid,
            source_subject=source_subject,
            target_subject=target_subject,
            source_shard=router.shard_for_subject(source_subject),
            target_shard=router.shard_for_subject(target_subject),
            payload=dict(payload or {}),
            started_round=self.sharded.rounds_sealed,
            deadline_round=self.sharded.rounds_sealed + self.timeout_rounds,
            timestamp=timestamp,
        )
        transfer.payload.setdefault("actor", actor or self.sender)
        # Lock acquisition order is (shard, subject)-sorted so two
        # transfers over the same pair cannot deadlock.
        wanted = sorted(
            {(transfer.source_shard, source_subject),
             (transfer.target_shard, target_subject)}
        )
        acquired: list[tuple[int, str]] = []
        for shard_id, subject in wanted:
            if self.sharded.acquire_lock(shard_id, subject, xid):
                acquired.append((shard_id, subject))
            else:
                for got_shard, got_subject in acquired:
                    self.sharded.release_lock(got_shard, got_subject, xid)
                transfer.state = ABORTED
                transfer.outcome = self._outcome(transfer, "aborted",
                                                 reason="lock_conflict")
                self.aborted += 1
                self.transfers[xid] = transfer
                return transfer
        try:
            for shard_id in transfer.participants:
                tx = self._leg(transfer, shard_id, phase="lock")
                self.sharded.submit_to(shard_id, tx)
                transfer.lock_tx_ids[shard_id] = tx.tx_id
        except ChainError:
            # A leg that cannot even be queued (full mempool) must not
            # leave the subjects locked forever.
            self._release_locks(transfer)
            transfer.state = ABORTED
            transfer.outcome = self._outcome(transfer, "aborted",
                                             reason="submit_failed")
            self.aborted += 1
        self.transfers[xid] = transfer
        return transfer

    # ------------------------------------------------------------------
    # Round tick: advance every in-flight transfer
    # ------------------------------------------------------------------
    def on_round_sealed(self, report: RoundReport) -> None:
        round_no = report.round_no
        for transfer in list(self.transfers.values()):
            if transfer.state == PREPARING:
                if self._all_committed(transfer, transfer.lock_tx_ids):
                    self._start_commit(transfer)
                elif round_no >= transfer.deadline_round:
                    self._abort(transfer, reason="prepare_timeout")
            elif transfer.state == COMMITTING:
                if self._all_committed(transfer, transfer.commit_tx_ids):
                    self._finalize(transfer)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, xid: str) -> CrossShardTransfer:
        transfer = self.transfers.get(xid)
        if transfer is None:
            raise ShardError(f"unknown transfer {xid!r}")
        return transfer

    @property
    def active(self) -> list[CrossShardTransfer]:
        return [t for t in self.transfers.values()
                if t.state in (PREPARING, COMMITTING)]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _leg(self, transfer: CrossShardTransfer, shard_id: int,
             phase: str) -> Transaction:
        """One on-chain protocol leg (lock / commit / abort)."""
        payload: dict[str, Any] = {
            "message_id": f"{transfer.xid}:{phase}:{shard_id}",
            "xid": transfer.xid,
            "phase": phase,
            "subjects": transfer.subjects_on(shard_id),
            "source": transfer.source_subject,
            "target": transfer.target_subject,
        }
        if phase == "commit":
            payload["writes"] = dict(transfer.payload)
        # Protocol legs carry a fee so the fee-priority mempool seals
        # them ahead of bulk capture traffic: locks are held for rounds,
        # not for the whole backlog.
        return Transaction(
            sender=self.sender,
            kind=TxKind.CROSS_CHAIN,
            payload=payload,
            timestamp=transfer.timestamp,
            fee=1,
        ).seal()

    def _all_committed(self, transfer: CrossShardTransfer,
                       tx_ids: Mapping[int, str]) -> bool:
        return all(
            self.sharded.shard(sid).chain.find_transaction(tx_id) is not None
            for sid, tx_id in tx_ids.items()
        )

    def _start_commit(self, transfer: CrossShardTransfer) -> None:
        try:
            for shard_id in transfer.participants:
                tx = self._leg(transfer, shard_id, phase="commit")
                self.sharded.submit_to(shard_id, tx)
                transfer.commit_tx_ids[shard_id] = tx.tx_id
        except ChainError:
            self._abort(transfer, reason="submit_failed")
            return
        transfer.state = COMMITTING

    # Record fields the transfer payload may never override: they carry
    # the protocol's identity, routing, and ordering.
    _PROTECTED_FIELDS = frozenset(
        {"record_id", "subject", "operation", "peer", "actor",
         "timestamp", "xid"}
    )

    def _finalize(self, transfer: CrossShardTransfer) -> None:
        """Both commit legs are on-chain: materialize the handoff records
        and release the locks."""
        actor = str(transfer.payload.get("actor", self.sender))
        extra = {k: v for k, v in transfer.payload.items()
                 if k not in self._PROTECTED_FIELDS}
        base = {
            "actor": actor,
            "timestamp": transfer.timestamp,
            "xid": transfer.xid,
        }
        self.sharded.ingest_record({
            **extra,
            "record_id": f"{transfer.xid}:out",
            "subject": transfer.source_subject,
            "operation": "handoff-out",
            "peer": transfer.target_subject,
            **base,
        })
        self.sharded.ingest_record({
            **extra,
            "record_id": f"{transfer.xid}:in",
            "subject": transfer.target_subject,
            "operation": "handoff-in",
            "peer": transfer.source_subject,
            **base,
        })
        self._release_locks(transfer)
        transfer.state = COMMITTED
        transfer.outcome = self._outcome(transfer, "completed")
        self.committed += 1

    def _abort(self, transfer: CrossShardTransfer, reason: str) -> None:
        """Timeout path: leave an on-chain abort record where we can,
        then unlock — the subjects accept writes again immediately."""
        for shard_id in transfer.participants:
            try:
                self.sharded.submit_to(
                    shard_id, self._leg(transfer, shard_id, phase="abort")
                )
            except ChainError:
                # Best-effort audit trail; the unlock below must happen
                # even when a shard cannot take the abort leg right now.
                pass
        self._release_locks(transfer)
        transfer.state = ABORTED
        transfer.outcome = self._outcome(transfer, "aborted", reason=reason)
        self.aborted += 1

    def _release_locks(self, transfer: CrossShardTransfer) -> None:
        self.sharded.release_lock(
            transfer.source_shard, transfer.source_subject, transfer.xid
        )
        self.sharded.release_lock(
            transfer.target_shard, transfer.target_subject, transfer.xid
        )

    def _outcome(self, transfer: CrossShardTransfer, status: str,
                 reason: str = "") -> TransferOutcome:
        n = len(transfer.participants)
        legs = len(transfer.lock_tx_ids) + len(transfer.commit_tx_ids)
        extra = {"xid": transfer.xid, "cross_shard": transfer.is_cross_shard}
        if reason:
            extra["reason"] = reason
        return TransferOutcome(
            mechanism="shard-2pc",
            status=status,
            messages=2 * n,
            on_chain_txs=legs,
            latency_ticks=self.sharded.rounds_sealed - transfer.started_round,
            extra=extra,
        )
