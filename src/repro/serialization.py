"""Canonical serialization for hashing and signing.

Blockchain integrity rests on every node hashing *exactly* the same bytes
for the same logical value.  Python's ``repr``/``str`` are not stable enough
(dict ordering, float formatting), so this module defines a small canonical
encoding:

* deterministic — independent of insertion order and interning,
* typed — ``1`` and ``"1"`` and ``True`` encode differently,
* closed — only JSON-ish types plus ``bytes`` are accepted; anything else
  raises :class:`~repro.errors.SerializationError` rather than silently
  producing an unstable encoding.

The encoding is a type-tagged, length-prefixed byte string, similar in
spirit to bencoding / RFC 8785 (JSON Canonicalization Scheme) but simpler
because we control both producer and consumer.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from .errors import SerializationError

_CANONICAL_TYPES = (
    type(None),
    bool,
    int,
    float,
    str,
    bytes,
)


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` into canonical bytes.

    Accepted types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, and (nested) sequences (``list``/``tuple``) and mappings
    with string keys.  Mappings are encoded with keys sorted
    lexicographically, so two dicts with the same items always encode
    identically.

    >>> canonical_encode({"b": 1, "a": 2}) == canonical_encode({"a": 2, "b": 1})
    True
    >>> canonical_encode(1) == canonical_encode("1")
    False
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    # bool must be tested before int (bool is an int subclass).
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += b"i%d:" % len(body)
        out += body
    elif isinstance(value, float):
        # repr() of a float is the shortest string that round-trips in
        # CPython (PEP 3101 era guarantee), which makes it canonical for
        # our single-implementation purposes.
        body = repr(value).encode("ascii")
        out += b"f%d:" % len(body)
        out += body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"s%d:" % len(body)
        out += body
    elif isinstance(value, (bytes, bytearray)):
        out += b"b%d:" % len(value)
        out += bytes(value)
    elif isinstance(value, Mapping):
        items = []
        for key in value:
            if not isinstance(key, str):
                raise SerializationError(
                    f"mapping keys must be str, got {type(key).__name__}"
                )
            items.append(key)
        items.sort()
        out += b"d%d:" % len(items)
        for key in items:
            _encode_into(key, out)
            _encode_into(value[key], out)
        out += b"e"
    elif isinstance(value, Sequence):
        out += b"l%d:" % len(value)
        for item in value:
            _encode_into(item, out)
        out += b"e"
    else:
        # Sealed objects may carry their canonical bytes, precomputed once
        # at seal time (identity-keyed encode cache: the bytes live on the
        # object itself, so cache lifetime equals object lifetime and two
        # equal-but-distinct objects never alias).  Only immutable (sealed)
        # objects may set this — see Transaction.seal().
        cached = getattr(value, "_canonical_cache", None)
        if type(cached) is bytes:
            out += cached
            return
        # Objects may opt in by providing a to_canonical() mapping.
        to_canonical = getattr(value, "to_canonical", None)
        if callable(to_canonical):
            _encode_into(to_canonical(), out)
            return
        raise SerializationError(
            f"cannot canonically encode {type(value).__name__}"
        )


def canonical_hex(value: Any) -> str:
    """Hex rendering of the canonical encoding (useful in test output)."""
    return canonical_encode(value).hex()
