"""Attribute-based access control.

Decisions are predicates over four attribute bags: subject, resource,
action, and environment.  Rules are condition lists with an effect
(permit/deny); the policy combines them deny-overrides, the conservative
combinator appropriate for healthcare/forensics where a single deny rule
(e.g. "case is sealed") must beat any number of permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import AccessDenied, PolicyError

AttrBag = Mapping[str, Any]
Condition = Callable[[AttrBag, AttrBag, str, AttrBag], bool]


@dataclass(frozen=True, eq=False)
class Attribute:
    """A helper for readable rule conditions: ``Attribute("role") == "dr"``.

    Builds conditions over the *subject* bag by default; use ``on`` to
    target ``"resource"`` or ``"environment"``.  Note the comparison
    operators intentionally return *conditions*, SQLAlchemy-style, so
    ``Attribute`` objects are not usable as dict keys.
    """

    name: str
    on: str = "subject"

    def _bag(self, subject: AttrBag, resource: AttrBag,
             environment: AttrBag) -> AttrBag:
        if self.on == "subject":
            return subject
        if self.on == "resource":
            return resource
        if self.on == "environment":
            return environment
        raise PolicyError(f"unknown attribute target {self.on!r}")

    def __eq__(self, expected: Any) -> Condition:  # type: ignore[override]
        def cond(subject, resource, action, environment):
            return self._bag(subject, resource, environment).get(self.name) == expected
        return cond

    def __ne__(self, expected: Any) -> Condition:  # type: ignore[override]
        def cond(subject, resource, action, environment):
            return self._bag(subject, resource, environment).get(self.name) != expected
        return cond

    def is_in(self, options: tuple | list | set) -> Condition:
        allowed = set(options)
        def cond(subject, resource, action, environment):
            return self._bag(subject, resource, environment).get(self.name) in allowed
        return cond

    def at_least(self, minimum: Any) -> Condition:
        def cond(subject, resource, action, environment):
            value = self._bag(subject, resource, environment).get(self.name)
            return value is not None and value >= minimum
        return cond

    def present(self) -> Condition:
        def cond(subject, resource, action, environment):
            return self.name in self._bag(subject, resource, environment)
        return cond


@dataclass
class AttributeRule:
    """conditions (ANDed) + action filter -> effect."""

    name: str
    effect: str                    # "permit" | "deny"
    actions: set[str] = field(default_factory=set)   # empty = any action
    conditions: list[Condition] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.effect not in ("permit", "deny"):
            raise PolicyError(f"effect must be permit/deny, got {self.effect!r}")

    def applies(self, subject: AttrBag, resource: AttrBag, action: str,
                environment: AttrBag) -> bool:
        if self.actions and action not in self.actions:
            return False
        return all(cond(subject, resource, action, environment)
                   for cond in self.conditions)


class ABACPolicy:
    """Deny-overrides attribute policy with a default-deny posture."""

    def __init__(self, audit_log=None) -> None:
        self._rules: list[AttributeRule] = []
        self.audit_log = audit_log

    def add_rule(self, rule: AttributeRule) -> "ABACPolicy":
        self._rules.append(rule)
        return self

    def permit(self, name: str, *conditions: Condition,
               actions: tuple = ()) -> "ABACPolicy":
        return self.add_rule(AttributeRule(
            name=name, effect="permit", actions=set(actions),
            conditions=list(conditions),
        ))

    def deny(self, name: str, *conditions: Condition,
             actions: tuple = ()) -> "ABACPolicy":
        return self.add_rule(AttributeRule(
            name=name, effect="deny", actions=set(actions),
            conditions=list(conditions),
        ))

    # ------------------------------------------------------------------
    def decide(
        self,
        subject: AttrBag,
        resource: AttrBag,
        action: str,
        environment: AttrBag | None = None,
    ) -> tuple[bool, str]:
        """Returns ``(allowed, deciding_rule_name)``.

        Deny-overrides: any applicable deny rule wins; otherwise any
        applicable permit rule wins; otherwise default deny.
        """
        environment = environment or {}
        permit_rule: str | None = None
        for rule in self._rules:
            if not rule.applies(subject, resource, action, environment):
                continue
            if rule.effect == "deny":
                self._audit(subject, resource, action, False, rule.name)
                return False, rule.name
            if permit_rule is None:
                permit_rule = rule.name
        if permit_rule is not None:
            self._audit(subject, resource, action, True, permit_rule)
            return True, permit_rule
        self._audit(subject, resource, action, False, "default-deny")
        return False, "default-deny"

    def is_allowed(self, subject: AttrBag, resource: AttrBag, action: str,
                   environment: AttrBag | None = None) -> bool:
        allowed, _ = self.decide(subject, resource, action, environment)
        return allowed

    def require(self, subject: AttrBag, resource: AttrBag, action: str,
                environment: AttrBag | None = None) -> None:
        allowed, rule = self.decide(subject, resource, action, environment)
        if not allowed:
            raise AccessDenied(
                f"ABAC: action {action!r} denied by rule {rule!r}"
            )

    def _audit(self, subject: AttrBag, resource: AttrBag, action: str,
               allowed: bool, rule: str) -> None:
        if self.audit_log is not None:
            self.audit_log.record(
                str(subject.get("id", "?")),
                str(resource.get("id", "?")),
                action,
                allowed,
                mechanism=f"abac:{rule}",
            )
