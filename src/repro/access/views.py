"""LedgerView-style access-control views.

LedgerView [66] adds *views* on top of a permissioned ledger: a view is a
filtered projection of ledger contents shared with named grantees, either

* **revocable** — the owner can withdraw access later, or
* **irrevocable** — access, once granted, survives; the view's content
  set is frozen at creation so the grantee's entitlement is stable.

Views here project over a :class:`~repro.storage.provdb.ProvenanceDatabase`
through a predicate; the manager enforces grants and records every
access.  The paper notes LedgerView "lacks some privacy demands such as
anonymity" — grantees are identified; pair with
:mod:`repro.privacy.anonymity` pseudonyms when that matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import AccessDenied, PolicyError
from ..storage.provdb import ProvenanceDatabase

RecordPredicate = Callable[[dict], bool]


@dataclass
class LedgerView:
    """A named, granted projection of the ledger."""

    view_id: str
    owner: str
    predicate: RecordPredicate
    revocable: bool
    grantees: set[str] = field(default_factory=set)
    revoked: bool = False
    # Irrevocable views freeze their record-id set at creation.
    frozen_ids: tuple[str, ...] | None = None


class ViewManager:
    """Creates, grants, revokes, and serves views over a database."""

    def __init__(self, database: ProvenanceDatabase, audit_log=None) -> None:
        self.database = database
        self.audit_log = audit_log
        self._views: dict[str, LedgerView] = {}
        self.reads_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def create_view(
        self,
        view_id: str,
        owner: str,
        predicate: RecordPredicate,
        revocable: bool = True,
    ) -> LedgerView:
        if view_id in self._views:
            raise PolicyError(f"view {view_id!r} already exists")
        frozen: tuple[str, ...] | None = None
        if not revocable:
            # Snapshot the matching record ids now; the grantee's
            # entitlement cannot silently shrink afterwards.
            frozen = tuple(
                str(r["record_id"]) for r in self.database.scan(predicate)
            )
        view = LedgerView(
            view_id=view_id,
            owner=owner,
            predicate=predicate,
            revocable=revocable,
            frozen_ids=frozen,
        )
        self._views[view_id] = view
        return view

    def _require_view(self, view_id: str) -> LedgerView:
        view = self._views.get(view_id)
        if view is None:
            raise PolicyError(f"no view {view_id!r}")
        return view

    def grant(self, view_id: str, owner: str, grantee: str) -> None:
        view = self._require_view(view_id)
        if view.owner != owner:
            raise AccessDenied(f"only {view.owner} may grant {view_id!r}")
        if view.revoked:
            raise PolicyError(f"view {view_id!r} is revoked")
        view.grantees.add(grantee)

    def revoke_grant(self, view_id: str, owner: str, grantee: str) -> None:
        view = self._require_view(view_id)
        if view.owner != owner:
            raise AccessDenied(f"only {view.owner} may revoke on {view_id!r}")
        if not view.revocable:
            raise PolicyError(
                f"view {view_id!r} is irrevocable; grants cannot be withdrawn"
            )
        view.grantees.discard(grantee)

    def revoke_view(self, view_id: str, owner: str) -> None:
        view = self._require_view(view_id)
        if view.owner != owner:
            raise AccessDenied(f"only {view.owner} may revoke {view_id!r}")
        if not view.revocable:
            raise PolicyError(f"view {view_id!r} is irrevocable")
        view.revoked = True

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def read(self, view_id: str, reader: str) -> list[dict]:
        """Serve the view's current contents to an authorized reader."""
        view = self._require_view(view_id)
        allowed = (
            not view.revoked
            and (reader == view.owner or reader in view.grantees)
        )
        if self.audit_log is not None:
            self.audit_log.record(reader, f"view:{view_id}", "read", allowed,
                                  mechanism="view")
        if not allowed:
            raise AccessDenied(f"{reader} may not read view {view_id!r}")
        self.reads_served += 1
        if view.frozen_ids is not None:
            return [self.database.get(rid) for rid in view.frozen_ids
                    if self.database.contains(rid)]
        return self.database.scan(view.predicate)

    def readable_by(self, reader: str) -> list[str]:
        return sorted(
            view_id for view_id, view in self._views.items()
            if not view.revoked and (reader == view.owner
                                     or reader in view.grantees)
        )
