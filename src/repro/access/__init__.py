"""Access control.

The paper's §6.1 names access control a first-class design consideration
("ABAC or RBAC, or even more sophisticated models") and LedgerView [66]
contributes revocable/irrevocable *views* over a permissioned ledger.
This package provides all three, plus the decision audit trail that turns
access control itself into provenance.
"""

from .rbac import Role, RBACPolicy
from .abac import Attribute, AttributeRule, ABACPolicy
from .views import LedgerView, ViewManager
from .audit import AccessAuditLog, AccessDecision

__all__ = [
    "Role",
    "RBACPolicy",
    "Attribute",
    "AttributeRule",
    "ABACPolicy",
    "LedgerView",
    "ViewManager",
    "AccessAuditLog",
    "AccessDecision",
]
