"""Access-decision audit trail.

Every allow/deny decision is itself provenance — "who tried to see what,
and was it allowed" is exactly the account a HIPAA or chain-of-custody
audit demands (§4.3, §4.5).  The log is hash-chained so it is
tamper-evident even before anchoring, and can be exported as provenance
records for the normal capture/anchor pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..clock import SimClock
from ..crypto.hashing import HashChain


@dataclass(frozen=True)
class AccessDecision:
    """One recorded allow/deny decision."""

    seq: int
    subject: str
    resource: str
    action: str
    allowed: bool
    mechanism: str
    timestamp: int

    def to_canonical(self) -> dict:
        return {
            "seq": self.seq,
            "subject": self.subject,
            "resource": self.resource,
            "action": self.action,
            "allowed": self.allowed,
            "mechanism": self.mechanism,
            "timestamp": self.timestamp,
        }

    def to_provenance_record(self, prefix: str = "acc") -> dict:
        """Shape the decision as a capture-pipeline record."""
        return {
            "record_id": f"{prefix}-{self.seq:08d}",
            "domain": "access_audit",
            "subject": self.resource,
            "actor": self.subject,
            "operation": f"{self.action}:{'allow' if self.allowed else 'deny'}",
            "timestamp": self.timestamp,
            "mechanism": self.mechanism,
        }


class AccessAuditLog:
    """Hash-chained, append-only access decision log."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._decisions: list[AccessDecision] = []
        self._chain = HashChain()

    def record(self, subject: str, resource: str, action: str,
               allowed: bool, mechanism: str = "") -> AccessDecision:
        decision = AccessDecision(
            seq=len(self._decisions),
            subject=subject,
            resource=resource,
            action=action,
            allowed=allowed,
            mechanism=mechanism,
            timestamp=self.clock.now(),
        )
        self._decisions.append(decision)
        self._chain.append(decision.to_canonical())
        return decision

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._decisions)

    def __iter__(self) -> Iterator[AccessDecision]:
        return iter(self._decisions)

    @property
    def head(self) -> bytes:
        """Tamper-evident digest over the whole log."""
        return self._chain.head

    def verify(self) -> bool:
        """Replay the log and compare digests."""
        return HashChain.replay(
            [d.to_canonical() for d in self._decisions]
        ) == self._chain.head

    def denials(self) -> list[AccessDecision]:
        return [d for d in self._decisions if not d.allowed]

    def for_subject(self, subject: str) -> list[AccessDecision]:
        return [d for d in self._decisions if d.subject == subject]

    def denial_rate(self) -> float:
        if not self._decisions:
            return 0.0
        return len(self.denials()) / len(self._decisions)
