"""Role-based access control with role hierarchies.

Subjects hold roles; roles carry ``(resource_pattern, action)`` permissions
and may inherit from parent roles.  Resource patterns support a trailing
``*`` wildcard (``"case-7/*"``), which is how forensic stage scoping and
supply-chain facility scoping are expressed in the domain modules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import AccessDenied, PolicyError


def pattern_matches(pattern: str, resource: str) -> bool:
    """``"a/*"`` matches ``"a/b"``; ``"*"`` matches everything."""
    if pattern == "*":
        return True
    if pattern.endswith("/*"):
        prefix = pattern[:-1]          # keep the slash
        return resource.startswith(prefix) or resource == pattern[:-2]
    return pattern == resource


@dataclass
class Role:
    """A named permission set, optionally inheriting from parents."""

    name: str
    permissions: set[tuple[str, str]] = field(default_factory=set)
    parents: set[str] = field(default_factory=set)

    def allow(self, resource_pattern: str, action: str) -> "Role":
        self.permissions.add((resource_pattern, action))
        return self


class RBACPolicy:
    """Role registry + subject-role assignment + decision point."""

    def __init__(self, audit_log=None) -> None:
        self._roles: dict[str, Role] = {}
        self._assignments: dict[str, set[str]] = {}
        self.audit_log = audit_log

    # ------------------------------------------------------------------
    # Administration
    # ------------------------------------------------------------------
    def define_role(self, name: str, parents: Iterable[str] = ()) -> Role:
        if name in self._roles:
            raise PolicyError(f"role {name!r} already defined")
        parent_set = set(parents)
        for parent in parent_set:
            if parent not in self._roles:
                raise PolicyError(f"unknown parent role {parent!r}")
        role = Role(name=name, parents=parent_set)
        self._roles[name] = role
        return role

    def role(self, name: str) -> Role:
        role = self._roles.get(name)
        if role is None:
            raise PolicyError(f"unknown role {name!r}")
        return role

    def assign(self, subject: str, role_name: str) -> None:
        self.role(role_name)  # existence check
        self._assignments.setdefault(subject, set()).add(role_name)

    def unassign(self, subject: str, role_name: str) -> None:
        self._assignments.get(subject, set()).discard(role_name)

    def roles_of(self, subject: str) -> set[str]:
        """All roles held, including inherited ones."""
        direct = self._assignments.get(subject, set())
        closure: set[str] = set()
        frontier = list(direct)
        while frontier:
            name = frontier.pop()
            if name in closure:
                continue
            closure.add(name)
            frontier.extend(self._roles[name].parents)
        return closure

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def is_allowed(self, subject: str, resource: str, action: str) -> bool:
        allowed = any(
            pattern_matches(pattern, resource) and granted == action
            for role_name in self.roles_of(subject)
            for (pattern, granted) in self._roles[role_name].permissions
        )
        if self.audit_log is not None:
            self.audit_log.record(subject, resource, action, allowed,
                                  mechanism="rbac")
        return allowed

    def require(self, subject: str, resource: str, action: str) -> None:
        if not self.is_allowed(subject, resource, action):
            raise AccessDenied(
                f"RBAC: {subject} may not {action} on {resource}"
            )
