"""SynergyChain [21]: three-tier multichain data sharing.

"A three-tier architecture based on blockchain ... to enable data sharing
and resolve data access controllability in a multichain environment.
SynergyChain has demonstrated its ability to support data sharing
reliably and efficiently, reducing data query latency compared to
sequentially requesting multichain data."

The three tiers:

1. **data tier** — each institution runs its own chain + provenance
   database;
2. **aggregation tier** — an aggregation service maintains a combined,
   continuously synchronized index over all member databases;
3. **service tier** — queries are answered from the aggregate with
   hierarchical (role-scoped) access control.

The headline claim — aggregated queries beat sequential multichain
queries — is measurable here: :meth:`query_aggregated` does one indexed
lookup, :meth:`query_sequential` walks every member chain's database the
way an unaggregated client must.  EVAL-QUERY quantifies the gap.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..access.rbac import RBACPolicy
from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..errors import AccessDenied
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink
from ..storage.provdb import ProvenanceDatabase


@dataclass
class _Member:
    """One institution's data tier."""

    org_id: str
    chain: Blockchain
    database: ProvenanceDatabase
    anchors: AnchorService
    sink: CaptureSink


class SynergyChain:
    """Aggregated multichain data sharing with hierarchical access."""

    # Role hierarchy: admin > researcher > guest.
    HIERARCHY = ("guest", "researcher", "admin")

    def __init__(self, organizations: list[str],
                 clock: SimClock | None = None) -> None:
        if not organizations:
            raise ValueError("SynergyChain needs member organizations")
        self.clock = clock or SimClock()
        self.members: dict[str, _Member] = {}
        for org_id in organizations:
            chain = Blockchain(ChainParams(chain_id=f"syn-{org_id}",
                                           visibility="private"))
            database = ProvenanceDatabase()
            anchors = AnchorService(chain,
                                    sealer=ProofOfAuthority([org_id]),
                                    batch_size=16)
            sink = CaptureSink(database, anchors)
            self.members[org_id] = _Member(
                org_id=org_id, chain=chain, database=database,
                anchors=anchors, sink=sink,
            )
        # Aggregation tier: one combined index.
        self.aggregate = ProvenanceDatabase()
        self.rbac = RBACPolicy()
        self.rbac.define_role("guest")
        self.rbac.define_role("researcher", parents=["guest"])
        self.rbac.define_role("admin", parents=["researcher"])
        self.rbac.role("guest").allow("shared/*", "read")
        self.rbac.role("researcher").allow("research/*", "read")
        self.rbac.role("admin").allow("*", "read")
        self.synced_records = 0
        self.sequential_scans = 0
        self.aggregated_lookups = 0

    # ------------------------------------------------------------------
    # Data tier writes
    # ------------------------------------------------------------------
    def submit(self, org_id: str, record: dict,
               sensitivity: str = "shared") -> dict:
        """An institution writes a record to its own chain; the
        aggregation tier syncs it immediately (the continuous-sync model).

        ``sensitivity``: "shared" | "research" | "restricted" — the
        hierarchy level required to read it back.
        """
        member = self.members[org_id]
        record = dict(record)
        record["org_id"] = org_id
        record["sensitivity"] = sensitivity
        member.sink.deliver(record)
        aggregated = dict(record)
        aggregated["record_id"] = f"{org_id}:{record['record_id']}"
        self.aggregate.insert(aggregated)
        self.synced_records += 1
        return record

    # ------------------------------------------------------------------
    # Service tier queries
    # ------------------------------------------------------------------
    def _visible(self, record: dict, subject_role_level: int) -> bool:
        sensitivity = record.get("sensitivity", "shared")
        required = {"shared": 0, "research": 1, "restricted": 2}.get(
            str(sensitivity), 2
        )
        return subject_role_level >= required

    def _role_level(self, user: str) -> int:
        roles = self.rbac.roles_of(user)
        for level in range(len(self.HIERARCHY) - 1, -1, -1):
            if self.HIERARCHY[level] in roles:
                return level
        raise AccessDenied(f"{user} holds no SynergyChain role")

    def query_aggregated(self, user: str, subject: str) -> list[dict]:
        """Service-tier query via the aggregation index (one lookup)."""
        level = self._role_level(user)
        self.aggregated_lookups += 1
        return [r for r in self.aggregate.by_subject(subject)
                if self._visible(r, level)]

    def query_sequential(self, user: str, subject: str) -> list[dict]:
        """Baseline: ask every member chain in turn (what a client
        without the aggregation tier must do)."""
        level = self._role_level(user)
        results: list[dict] = []
        for member in self.members.values():
            self.sequential_scans += 1
            # A remote client cannot use the member's private index; it
            # receives and filters a scan of shared records.
            for record in member.database.scan(
                lambda r: r.get("subject") == subject
            ):
                if self._visible(record, level):
                    results.append(record)
        return results

    # ------------------------------------------------------------------
    def finalize(self) -> None:
        for member in self.members.values():
            member.anchors.flush()

    def member_heights(self) -> dict[str, int]:
        return {org: m.chain.height for org, m in self.members.items()}
