"""SciLedger [36]: scientific workflow provenance platform.

"A blockchain platform for collecting and storing scientific workflow
provenance.  It supports multiple workflows, complex operations, and has
an invalidation mechanism."  The composition:

* the :class:`~repro.domains.scientific.WorkflowManager` provides the
  Figure-4 lifecycle (design/execute/invalidate/re-execute, branching
  and merging through shared data entities);
* records are anchored on a PoA consortium chain whose authorities are
  the collaborating institutions;
* verified queries answer "show me the provenance of this result, with
  proof" and "which results are still valid?" — the questions funding
  agencies' data-sharing mandates raise (§4.1).
"""

from __future__ import annotations

from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..domains.scientific import WorkflowManager
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink
from ..provenance.graph import ProvenanceGraph
from ..provenance.query import ProvenanceQueryEngine, QueryCache, VerifiedAnswer
from ..storage.provdb import ProvenanceDatabase


class SciLedger:
    """Multi-workflow provenance ledger for collaborating institutions."""

    def __init__(
        self,
        institutions: list[str],
        clock: SimClock | None = None,
        batch_size: int = 8,
    ) -> None:
        if not institutions:
            raise ValueError("SciLedger needs at least one institution")
        self.clock = clock or SimClock()
        self.institutions = list(institutions)
        self.chain = Blockchain(ChainParams(chain_id="sciledger",
                                            visibility="consortium"))
        self.engine = ProofOfAuthority(self.institutions)
        self.database = ProvenanceDatabase()
        self.anchors = AnchorService(self.chain, sealer=self.engine,
                                     batch_size=batch_size)
        self.sink = CaptureSink(self.database, self.anchors)
        self.graph = ProvenanceGraph()
        self.workflows = WorkflowManager(self.sink, self.clock, self.graph)
        self.query_engine = ProvenanceQueryEngine(
            self.database, self.anchors, graph=self.graph,
            cache=QueryCache(),
        )

    # ------------------------------------------------------------------
    # Workflow lifecycle (delegation with anchoring hygiene)
    # ------------------------------------------------------------------
    def create_workflow(self, workflow_id: str, owner: str):
        return self.workflows.create_workflow(workflow_id, owner)

    def design_task(self, workflow_id: str, task_id: str, user_id: str,
                    inputs: list[str], outputs: list[str]):
        return self.workflows.design_task(workflow_id, task_id, user_id,
                                          inputs, outputs)

    def execute_task(self, task_id: str, duration: int = 1) -> dict:
        record = self.workflows.execute_task(task_id, duration=duration)
        self.query_engine.notify_write()
        return record

    def run_workflow(self, workflow_id: str) -> list[str]:
        """Execute every task in dependency order; returns the order."""
        order = self.workflows.execution_schedule(workflow_id)
        for task_id in order:
            self.workflows.execute_task(task_id)
        self.query_engine.notify_write()
        return order

    def invalidate(self, task_id: str, reason: str = "") -> list[str]:
        cascade = self.workflows.invalidate_task(task_id, reason=reason)
        self.query_engine.notify_write()
        return cascade

    def re_execute(self, task_ids: list[str]) -> None:
        """Re-run invalidated tasks in dependency order."""
        by_workflow: dict[str, list[str]] = {}
        for task_id in task_ids:
            task = self.workflows.tasks[task_id]
            by_workflow.setdefault(task.workflow_id, []).append(task_id)
        for workflow_id, ids in by_workflow.items():
            schedule = self.workflows.execution_schedule(workflow_id)
            for task_id in schedule:
                if task_id in ids:
                    self.workflows.re_execute(task_id)
        self.query_engine.notify_write()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        self.anchors.flush()
        self.query_engine.notify_write()

    def provenance_of(self, data_id: str) -> VerifiedAnswer:
        """Verified record history of a data artifact."""
        self.finalize()
        return self.query_engine.history_verified(data_id)

    def lineage_of(self, data_id: str) -> list[str]:
        """Graph lineage (what this artifact was computed from)."""
        return self.query_engine.lineage_ids(data_id)

    def valid_results(self, workflow_id: str) -> list[str]:
        return self.workflows.valid_results(workflow_id)

    def invalidated_tasks(self) -> list[str]:
        from ..domains.scientific import TaskStatus

        return sorted(
            task_id for task_id, task in self.workflows.tasks.items()
            if task.status == TaskStatus.INVALIDATED
        )
