"""ProvChain [47]: blockchain-based cloud-storage provenance.

The RQ1 reference design: a cloud storage application is hooked so that
"data operations are audited ... providing real-time cloud data
provenance by monitoring user operations".  Concretely:

* a :class:`~repro.storage.cloudstore.CloudObjectStore` emits every
  operation,
* a store-mediated capture pathway turns operations into records,
* records are Merkle-batched and anchored on a blockchain,
* users are recorded under rotating pseudonyms (the paper credits
  ProvChain with "enhanced privacy" but criticizes its unclear node
  trust; the pseudonym layer is the privacy half of that story),
* auditors run verified queries against the anchors.

``CloudProvenanceSystem`` is the shared machinery;
:class:`ProvChain` specializes it with PoW sealing (ProvChain ran on a
public-style chain) and :class:`~repro.systems.blockcloud.BlockCloud`
with PoS (its stated contribution was "PoS ... to decrease computational
requirements compared to traditional PoW").
"""

from __future__ import annotations

from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.base import ConsensusEngine
from ..consensus.pow import ProofOfWork
from ..privacy.anonymity import PseudonymManager
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink, StoreMediatedCapture
from ..provenance.query import ProvenanceQueryEngine, QueryCache, VerifiedAnswer
from ..storage.cloudstore import CloudObjectStore, StoreOperation
from ..storage.provdb import ProvenanceDatabase


class CloudProvenanceSystem:
    """Cloud store + capture + anchoring + verified audit queries."""

    def __init__(
        self,
        engine: ConsensusEngine,
        clock: SimClock | None = None,
        chain_id: str = "cloud-prov",
        batch_size: int = 16,
        pseudonymize: bool = True,
        visibility: str = "public",
    ) -> None:
        self.clock = clock or SimClock()
        self.engine = engine
        self.chain = Blockchain(ChainParams(chain_id=chain_id,
                                            visibility=visibility))
        self.store = CloudObjectStore(self.clock)
        self.database = ProvenanceDatabase()
        self.anchors = AnchorService(self.chain, sealer=engine,
                                     batch_size=batch_size)
        self.sink = CaptureSink(self.database, self.anchors)
        self.pseudonyms = PseudonymManager() if pseudonymize else None
        self.capture = StoreMediatedCapture(
            self.sink, self.store,
            record_builder=self._build_record,
            record_prefix=chain_id,
        )
        self.query_engine = ProvenanceQueryEngine(
            self.database, self.anchors, cache=QueryCache()
        )
        self._op_counter = 0

    # ------------------------------------------------------------------
    def _build_record(self, op: StoreOperation) -> dict:
        actor = op.user
        if self.pseudonyms is not None:
            # Epoch rotates per operation burst: correlation between a
            # record and the data owner requires the manager's mapping.
            actor = self.pseudonyms.pseudonym(op.user, epoch=op.op_id // 32)
        record = {
            "record_id": f"{self.chain.chain_id}-{op.op_id:08d}",
            "domain": "cloud_storage",
            "subject": op.object_key,
            "actor": actor,
            "operation": op.op,
            "timestamp": op.timestamp,
            "version": op.version,
            "content_hash": op.content_hash.hex(),
        }
        return record

    # ------------------------------------------------------------------
    # User-facing storage operations (each auto-captured)
    # ------------------------------------------------------------------
    def create(self, user: str, key: str, content: bytes) -> None:
        self.store.create(user, key, content)
        self.clock.advance(1)

    def read(self, user: str, key: str) -> bytes:
        content, _ = self.store.read(user, key)
        self.clock.advance(1)
        return content

    def update(self, user: str, key: str, content: bytes) -> None:
        self.store.update(user, key, content)
        self.clock.advance(1)

    def delete(self, user: str, key: str) -> None:
        self.store.delete(user, key)
        self.clock.advance(1)

    def share(self, user: str, key: str, with_user: str) -> None:
        self.store.share(user, key, with_user)
        self.clock.advance(1)

    # ------------------------------------------------------------------
    # Audit interface
    # ------------------------------------------------------------------
    def finalize(self) -> None:
        """Anchor any pending capture batch (end of an audit period)."""
        self.anchors.flush()
        self.query_engine.notify_write()

    def audit_object(self, key: str) -> VerifiedAnswer:
        """Verified history of one stored object."""
        self.finalize()
        return self.query_engine.history_verified(key)

    def audit_is_clean(self, key: str) -> bool:
        answer = self.audit_object(key)
        return answer.verified and not answer.unanchored

    def reidentify(self, pseudonym: str) -> str:
        """Auditor-with-mapping de-anonymization."""
        if self.pseudonyms is None:
            return pseudonym
        user, _ = self.pseudonyms.reidentify(pseudonym)
        return user

    # ------------------------------------------------------------------
    @property
    def blocks_sealed(self) -> int:
        return self.chain.height

    @property
    def records_captured(self) -> int:
        return len(self.database)


class ProvChain(CloudProvenanceSystem):
    """ProvChain proper: PoW-sealed, public-style chain."""

    def __init__(self, difficulty_bits: int = 10,
                 clock: SimClock | None = None, batch_size: int = 16) -> None:
        super().__init__(
            engine=ProofOfWork(difficulty_bits=difficulty_bits,
                               miner_id="provchain-miner"),
            clock=clock,
            chain_id="provchain",
            batch_size=batch_size,
            pseudonymize=True,
            visibility="public",
        )
