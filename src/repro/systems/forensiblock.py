"""ForensiBlock [12]: provenance-driven forensics with access control.

"Tracks all investigation data, including communication records, enabling
quick evidence extraction and verification while safeguarding sensitive
information.  It features new methods of access control, supporting
investigation stage changes, and employs a distributed Merkle tree for
case integrity verification."

Composition:

* :class:`~repro.domains.forensics.CaseManager` supplies the Figure-5
  stage machine, evidence custody, and the per-case
  :class:`~repro.crypto.distributed_merkle.CaseForest`;
* stage-scoped RBAC: roles like ``analyst`` only act during the stages
  appropriate to them, and *stage changes re-scope everyone's access*
  (the "supporting investigation stage changes" feature);
* records are anchored on a private PoA chain of participating agencies;
* extraction: a verified bundle of a case's records plus forest proofs
  an external party (a court) can check against two roots.
"""

from __future__ import annotations

from ..access.audit import AccessAuditLog
from ..access.rbac import RBACPolicy
from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..crypto.distributed_merkle import CaseForest
from ..domains.forensics import CaseManager, InvestigationStage
from ..errors import AccessDenied
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink
from ..provenance.query import ProvenanceQueryEngine
from ..storage.provdb import ProvenanceDatabase

# Which roles may act during which stages.
STAGE_PERMISSIONS: dict[str, tuple[InvestigationStage, ...]] = {
    "lead_investigator": tuple(InvestigationStage.ordered()),
    "first_responder": (InvestigationStage.IDENTIFICATION,
                        InvestigationStage.PRESERVATION),
    "collector": (InvestigationStage.PRESERVATION,
                  InvestigationStage.COLLECTION),
    "analyst": (InvestigationStage.ANALYSIS,),
    "court_officer": (InvestigationStage.REPORTING,),
}


class ForensiBlock:
    """Stage-aware, access-controlled, anchored forensics provenance."""

    def __init__(
        self,
        agencies: list[str],
        clock: SimClock | None = None,
        batch_size: int = 8,
        chain_id: str | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        if chain_id is None:
            suffix = agencies[0] if agencies else "0"
            chain_id = f"forensiblock-{suffix}"
        self.chain = Blockchain(ChainParams(chain_id=chain_id,
                                            visibility="private"))
        self.engine = ProofOfAuthority(agencies or ["agency-0"])
        self.database = ProvenanceDatabase()
        self.anchors = AnchorService(self.chain, sealer=self.engine,
                                     batch_size=batch_size)
        self.sink = CaptureSink(self.database, self.anchors)
        self.audit = AccessAuditLog(self.clock)
        self.rbac = RBACPolicy(audit_log=self.audit)
        for role_name in STAGE_PERMISSIONS:
            self.rbac.define_role(role_name)
        self.cases = CaseManager(self.sink, self.clock)
        self.query_engine = ProvenanceQueryEngine(self.database, self.anchors)

    # ------------------------------------------------------------------
    # Personnel
    # ------------------------------------------------------------------
    def assign_role(self, person: str, role: str) -> None:
        self.rbac.assign(person, role)

    def _check_stage_access(self, person: str, case_number: str) -> None:
        """May ``person`` act on this case *in its current stage*?"""
        case = self.cases.cases.get(case_number)
        stage = case.stage if case is not None else \
            InvestigationStage.IDENTIFICATION
        allowed_roles = {
            role for role, stages in STAGE_PERMISSIONS.items()
            if stage in stages
        }
        holder_roles = self.rbac.roles_of(person)
        allowed = bool(allowed_roles & holder_roles)
        self.audit.record(person, f"case:{case_number}",
                          f"act@{stage.value}", allowed,
                          mechanism="stage-rbac")
        if not allowed:
            raise AccessDenied(
                f"{person} (roles {sorted(holder_roles)}) may not act "
                f"during {stage.value}"
            )

    # ------------------------------------------------------------------
    # Case operations (stage-guarded delegation)
    # ------------------------------------------------------------------
    def open_case(self, case_number: str, lead: str):
        self._require_role(lead, "lead_investigator")
        return self.cases.open_case(case_number, lead)

    def advance_stage(self, case_number: str, actor: str):
        self._require_role(actor, "lead_investigator")
        return self.cases.advance_stage(case_number, actor)

    def collect_evidence(self, case_number: str, evidence_id: str,
                         actor: str, content: bytes, file_type: str,
                         depends_on: list[str] | None = None):
        self._check_stage_access(actor, case_number)
        return self.cases.collect_evidence(
            case_number, evidence_id, actor, content, file_type,
            depends_on=depends_on,
        )

    def access_evidence(self, case_number: str, evidence_id: str,
                        actor: str, purpose: str = "analysis"):
        self._check_stage_access(actor, case_number)
        return self.cases.access_evidence(case_number, evidence_id, actor,
                                          purpose=purpose)

    def close_case(self, case_number: str, actor: str):
        self._require_role(actor, "lead_investigator")
        return self.cases.close_case(case_number, actor)

    def _require_role(self, person: str, role: str) -> None:
        allowed = role in self.rbac.roles_of(person)
        self.audit.record(person, f"role:{role}", "exercise", allowed,
                          mechanism="rbac")
        if not allowed:
            raise AccessDenied(f"{person} does not hold role {role!r}")

    # ------------------------------------------------------------------
    # Extraction & verification ("quick evidence extraction")
    # ------------------------------------------------------------------
    def extract_case(self, case_number: str, requester: str) -> dict:
        """A verified, court-ready bundle for one case.

        Contains the case's provenance records with chain-anchor proofs,
        the case forest root, and per-stage roots.  The requester must
        hold a role valid for the *current* stage.
        """
        self._check_stage_access(requester, case_number)
        self.anchors.flush()
        case = self.cases.cases[case_number]
        records = self.database.scan(
            lambda r: r.get("case_number") == case_number
        )
        proofs = {}
        for record in records:
            record_id = str(record["record_id"])
            if self.anchors.is_anchored(record_id):
                proofs[record_id] = self.anchors.prove(record_id)
        return {
            "case_number": case_number,
            "records": records,
            "anchor_proofs": proofs,
            "forest_root": case.forest.root,
            "stage_roots": {
                stage: case.forest.stage_root(stage)
                for stage in case.forest.stages
            },
            "custody_intact": self.cases.custody_intact(case_number),
        }

    @staticmethod
    def verify_extraction(bundle: dict, anchors: AnchorService) -> bool:
        """External check of an extracted bundle against the chain."""
        for record in bundle["records"]:
            proof = bundle["anchor_proofs"].get(str(record["record_id"]))
            if proof is None:
                continue
            if not anchors.verify(record, proof):
                return False
        return bool(bundle["custody_intact"])

    def case_root(self, case_number: str) -> bytes:
        return self.cases.case_root(case_number)

    def forest_of(self, case_number: str) -> CaseForest:
        return self.cases.cases[case_number].forest
