"""LedgerView [66]: access-control views on a permissioned ledger.

"Introduced a system that adds access control views to Hyperledger
Fabric, supporting both revocable and irrevocable views with role-based
access control.  However, it lacks some privacy demands such as
anonymity."

Composition: an anchored provenance ledger, RBAC over view management
operations, and the :class:`~repro.access.views.ViewManager` serving
filtered projections.  The anonymity gap is preserved faithfully — and
:meth:`share_anonymized` shows the pseudonym fix the paper implies.
"""

from __future__ import annotations

from typing import Callable

from ..access.audit import AccessAuditLog
from ..access.rbac import RBACPolicy
from ..access.views import LedgerView, ViewManager
from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..errors import AccessDenied
from ..privacy.anonymity import PseudonymManager
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink, DirectCapture
from ..storage.provdb import ProvenanceDatabase


class LedgerViewSystem:
    """A permissioned provenance ledger with managed views."""

    def __init__(self, organizations: list[str],
                 clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self.chain = Blockchain(ChainParams(chain_id="ledgerview",
                                            visibility="private"))
        self.engine = ProofOfAuthority(organizations or ["org-0"])
        self.database = ProvenanceDatabase()
        self.anchors = AnchorService(self.chain, sealer=self.engine,
                                     batch_size=16)
        self.sink = CaptureSink(self.database, self.anchors)
        self.capture = DirectCapture(self.sink)
        self.audit = AccessAuditLog(self.clock)
        self.rbac = RBACPolicy(audit_log=self.audit)
        self.rbac.define_role("ledger_admin")
        self.rbac.define_role("view_owner")
        self.rbac.define_role("reader")
        self.views = ViewManager(self.database, audit_log=self.audit)
        self.pseudonyms = PseudonymManager(master_seed=b"ledgerview")

    # ------------------------------------------------------------------
    # Ledger writes
    # ------------------------------------------------------------------
    def append_record(self, record: dict) -> dict:
        return self.capture.record_operation(record)

    # ------------------------------------------------------------------
    # View lifecycle (RBAC-guarded)
    # ------------------------------------------------------------------
    def create_view(self, view_id: str, owner: str,
                    predicate: Callable[[dict], bool],
                    revocable: bool = True) -> LedgerView:
        if "view_owner" not in self.rbac.roles_of(owner):
            self.audit.record(owner, f"view:{view_id}", "create", False,
                              mechanism="rbac")
            raise AccessDenied(f"{owner} may not create views")
        self.audit.record(owner, f"view:{view_id}", "create", True,
                          mechanism="rbac")
        return self.views.create_view(view_id, owner, predicate,
                                      revocable=revocable)

    def grant(self, view_id: str, owner: str, grantee: str) -> None:
        self.views.grant(view_id, owner, grantee)

    def revoke_grant(self, view_id: str, owner: str, grantee: str) -> None:
        self.views.revoke_grant(view_id, owner, grantee)

    def read_view(self, view_id: str, reader: str) -> list[dict]:
        return self.views.read(view_id, reader)

    def share_anonymized(self, view_id: str, reader: str,
                         epoch: int = 0) -> list[dict]:
        """The anonymity patch: serve the view with actors pseudonymized.

        This is the capability the paper notes LedgerView lacks.
        """
        records = self.views.read(view_id, reader)
        return [self.pseudonyms.pseudonymize_record(r, epoch=epoch)
                for r in records]

    def finalize(self) -> None:
        self.anchors.flush()
