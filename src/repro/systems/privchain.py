"""PrivChain [52]: privacy-preserving supply-chain provenance.

"It allows data owners to provide proofs instead of data and gives
incentive to entities to supply valid proofs using Zero Knowledge Range
Proofs (ZKRPs) without disclosing exact locations.  Offline computation
of proofs reduces blockchain overhead, while proof verification and
incentive payments are automated through blockchain transactions, smart
contracts, and events."

Composition:

* supply-chain lifecycle from
  :class:`~repro.domains.supplychain.SupplyChainRegistry`;
* sensitive readings (temperature, location grid cells) are *committed*
  with Pedersen commitments, never stored in the clear;
* a consumer/regulator asks "was the cold chain respected?"; the data
  owner answers with a :func:`~repro.privacy.rangeproof.prove_range`
  proof computed offline;
* an :class:`~repro.contracts.library.escrow.IncentiveEscrow` contract
  escrows a bounty and pays out automatically when the designated
  verifier confirms the proof on-chain.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..contracts import ContractRuntime, IncentiveEscrow, call_payload, deploy_payload
from ..domains.supplychain import ColdChainMonitor, SupplyChainRegistry
from ..errors import DomainError
from ..privacy.commitment import PedersenCommitment
from ..privacy.rangeproof import RangeProof, prove_range, verify_range
from ..provenance.capture import CaptureSink
from ..storage.provdb import ProvenanceDatabase


@dataclass
class CommittedReading:
    """A sensor reading stored as a commitment only."""

    reading_id: str
    product_id: str
    facility: str
    commitment: PedersenCommitment
    timestamp: int
    # The opening lives with the data owner, off-chain:
    _value: int
    _randomness: int


class PrivChain:
    """Commit readings, prove ranges, automate incentives."""

    def __init__(
        self,
        manufacturers: set[str],
        verifier: str = "regulator",
        clock: SimClock | None = None,
    ) -> None:
        self.clock = clock or SimClock()
        self.database = ProvenanceDatabase()
        self.sink = CaptureSink(self.database)
        self.registry = SupplyChainRegistry(
            self.sink, manufacturers, self.clock,
            cold_chain=ColdChainMonitor(-1000, 1000),
        )
        self.verifier = verifier
        self.chain = Blockchain(ChainParams(chain_id="privchain",
                                            visibility="consortium"))
        self.engine = ProofOfAuthority(sorted(manufacturers) or ["m0"])
        self.runtime = ContractRuntime()
        self.runtime.register(IncentiveEscrow)
        self.runtime.attach(self.chain)
        deploy = Transaction(
            sender=verifier, kind=TxKind.CONTRACT_DEPLOY,
            payload=deploy_payload("IncentiveEscrow", verifier=verifier),
        )
        receipts = self._seal([deploy])
        self.escrow_address = receipts[0].output
        self._readings: dict[str, CommittedReading] = {}
        self._counter = 0
        self.proofs_verified = 0
        self.proofs_rejected = 0

    # ------------------------------------------------------------------
    def _seal(self, txs: list[Transaction]):
        block, _ = self.engine.seal(self.chain, txs,
                                    timestamp=self.clock.now())
        return self.chain.append_block(block)

    def _call(self, sender: str, entry: str, **args):
        tx = Transaction(
            sender=sender, kind=TxKind.CONTRACT_CALL,
            payload=call_payload(self.escrow_address, entry, **args),
        )
        receipts = self._seal([tx])
        receipt = receipts[0]
        if not receipt.success:
            raise DomainError(f"escrow call failed: {receipt.error}")
        return receipt

    # ------------------------------------------------------------------
    # Committed sensing
    # ------------------------------------------------------------------
    def commit_reading(self, owner: str, product_id: str, facility: str,
                       value: int) -> CommittedReading:
        """Record a sensor value as a commitment (value stays private)."""
        reading_id = f"reading-{self._counter:06d}"
        self._counter += 1
        commitment, randomness = PedersenCommitment.commit(
            value, seed=f"{reading_id}:{owner}".encode()
        )
        reading = CommittedReading(
            reading_id=reading_id,
            product_id=product_id,
            facility=facility,
            commitment=commitment,
            timestamp=self.clock.now(),
            _value=value,
            _randomness=randomness,
        )
        self._readings[reading_id] = reading
        # On-chain: only the commitment.
        tx = Transaction(
            sender=owner, kind=TxKind.PROVENANCE,
            payload={
                "anchor_id": reading_id,
                "product_id": product_id,
                "facility": facility,
                "commitment": commitment.value,
            },
            timestamp=self.clock.now(),
        )
        self._seal([tx])
        self.clock.advance(1)
        return reading

    # ------------------------------------------------------------------
    # Bounty-driven proof exchange
    # ------------------------------------------------------------------
    def request_range_proof(self, requester: str, reading_id: str,
                            lo: int, hi: int, bounty: int) -> str:
        """A consumer escrows a bounty for a proof that the committed
        reading lies in [lo, hi]."""
        if reading_id not in self._readings:
            raise DomainError(f"unknown reading {reading_id!r}")
        bounty_id = f"bounty-{reading_id}-{lo}-{hi}"
        reading = self._readings[reading_id]
        self._call(
            requester, "open_bounty",
            bounty_id=bounty_id, amount=bounty,
            prover=reading.product_id,
            statement=f"{reading_id} in [{lo},{hi}]",
        )
        return bounty_id

    def produce_proof(self, reading_id: str, lo: int, hi: int,
                      n_bits: int = 12) -> RangeProof:
        """Data-owner side: compute the ZKRP offline."""
        reading = self._readings[reading_id]
        return prove_range(reading._value, reading._randomness,
                           lo=lo, hi=hi, n_bits=n_bits,
                           seed=reading_id.encode())

    def settle(self, bounty_id: str, reading_id: str,
               proof: RangeProof) -> str:
        """Verifier checks the proof on-chain and settles the bounty.

        Returns ``"paid"`` or ``"refunded"``.
        """
        reading = self._readings[reading_id]
        valid = verify_range(reading.commitment, proof)
        if valid:
            self.proofs_verified += 1
        else:
            self.proofs_rejected += 1
        receipt = self._call(
            self.verifier, "submit_result",
            bounty_id=bounty_id, proof_valid=valid,
            proof_ref=reading_id,
        )
        return receipt.output

    def payable_to(self, account: str) -> int:
        return self.runtime.query(self.chain, self.escrow_address,
                                  "payable_to", account=account)
