"""IPFS + blockchain provenance ([33], Hasan et al.).

The design: file bodies go to IPFS (content-addressed, so the identifier
is an integrity check); the chain records ``(file key, CID, owner,
operation)`` provenance.  Integrity *and* availability are separated
concerns: the chain proves what the content hash was, the CAS serves the
bytes, and a pin audit detects the dangling-CID failure mode.
"""

from __future__ import annotations

from ..chain import Blockchain, ChainParams
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..errors import ObjectNotFound, StorageError
from ..provenance.anchor import AnchorService
from ..provenance.capture import CaptureSink, DirectCapture
from ..provenance.query import ProvenanceQueryEngine
from ..storage.cas import CID, ContentAddressedStore
from ..storage.provdb import ProvenanceDatabase


class IPFSProvenance:
    """Off-chain CAS bodies, on-chain anchored provenance records."""

    def __init__(
        self,
        clock: SimClock | None = None,
        authorities: list[str] | None = None,
        batch_size: int = 8,
        chunk_size: int = 4096,
    ) -> None:
        self.clock = clock or SimClock()
        self.cas = ContentAddressedStore(chunk_size=chunk_size)
        self.chain = Blockchain(ChainParams(chain_id="ipfs-prov",
                                            visibility="private"))
        self.engine = ProofOfAuthority(authorities or ["gw-0", "gw-1"])
        self.database = ProvenanceDatabase()
        self.anchors = AnchorService(self.chain, sealer=self.engine,
                                     batch_size=batch_size)
        self.sink = CaptureSink(self.database, self.anchors)
        self.capture = DirectCapture(self.sink)
        self.query_engine = ProvenanceQueryEngine(self.database, self.anchors)
        self._cids: dict[str, list[CID]] = {}    # key -> version CIDs
        self._counter = 0

    # ------------------------------------------------------------------
    def _record(self, user: str, key: str, operation: str, cid: CID) -> dict:
        record = {
            "record_id": f"ipfs-{self._counter:08d}",
            "domain": "cloud_storage",
            "subject": key,
            "actor": user,
            "operation": operation,
            "timestamp": self.clock.now(),
            "cid": cid.hex,
            "cid_kind": cid.kind,
        }
        self._counter += 1
        self.capture.record_operation(record)
        self.clock.advance(1)
        return record

    # ------------------------------------------------------------------
    # Storage API
    # ------------------------------------------------------------------
    def add_file(self, user: str, key: str, content: bytes) -> CID:
        if key in self._cids:
            raise StorageError(f"file {key!r} already exists; use update")
        cid = self.cas.put(content)
        self._cids[key] = [cid]
        self._record(user, key, "create", cid)
        return cid

    def update_file(self, user: str, key: str, content: bytes) -> CID:
        if key not in self._cids:
            raise ObjectNotFound(f"no file {key!r}")
        cid = self.cas.put(content)
        self._cids[key].append(cid)
        self._record(user, key, "update", cid)
        return cid

    def get_file(self, user: str, key: str,
                 version: int | None = None) -> bytes:
        versions = self._cids.get(key)
        if not versions:
            raise ObjectNotFound(f"no file {key!r}")
        index = len(versions) - 1 if version is None else version
        cid = versions[index]
        content = self.cas.get(cid)
        self._record(user, key, "read", cid)
        return content

    # ------------------------------------------------------------------
    # Integrity & availability audits
    # ------------------------------------------------------------------
    def verify_file(self, key: str, content: bytes,
                    version: int | None = None) -> bool:
        """Does ``content`` match the *anchored* CID for this version?"""
        versions = self._cids.get(key)
        if not versions:
            return False
        index = len(versions) - 1 if version is None else version
        return self.cas.verify(versions[index], content)

    def audit_history(self, key: str):
        """Verified provenance history of a file."""
        self.anchors.flush()
        return self.query_engine.history_verified(key)

    def availability_audit(self) -> list[str]:
        """Keys whose latest CID is no longer retrievable (dangling
        on-chain references — the RQ1 availability hazard)."""
        missing = []
        for key, versions in self._cids.items():
            if not self.cas.has(versions[-1]):
                missing.append(key)
        return sorted(missing)

    @property
    def stored_bytes_off_chain(self) -> int:
        return self.cas.stored_bytes

    @property
    def bytes_on_chain(self) -> int:
        return self.anchors.bytes_on_chain
