"""Pandemic diagnostic platform (Abouyoussef et al. [3], paper §4.3).

"Enables remote collection of symptoms, accurate diagnostics, and secure
data sharing … ensures privacy through group signature and random
numbers, supporting anonymity and data unlinkability.  A deep neural
network based detector, implemented as a smart contract, enables
automatic diagnostics … healthcare entities access symptom and diagnosis
data through a consortium-based blockchain architecture."

Composition:

* patients enroll in a **signature group**; every symptom submission is
  group-signed — verifiers learn "a registered patient", never which
  one, and two submissions are unlinkable;
* the **detector** is a contract: a transparent scoring rule over the
  symptom vector standing in for the paper's DNN (same interface:
  symptoms in, diagnosis + confidence out, executed on-chain);
* submissions and diagnoses land on a consortium (PoA) chain; health
  authorities query aggregate statistics without identities, and the
  group manager alone can open a signature under due process.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..clock import SimClock
from ..consensus.poa import ProofOfAuthority
from ..contracts import Contract, ContractRuntime, call_payload, deploy_payload, method, view
from ..errors import DomainError, PrivacyError
from ..privacy.groupsig import GroupManager, GroupSignature

# The symptom vector layout the detector scores (fever, cough, fatigue,
# anosmia, dyspnea) — integer severities 0..3.
SYMPTOM_NAMES = ("fever", "cough", "fatigue", "anosmia", "dyspnea")


class DiagnosticDetector(Contract):
    """The on-chain 'DNN' detector: weighted scoring with a threshold.

    Weights are fixed at deployment (the trained model); execution is
    deterministic and auditable — which is the point of putting the
    detector on-chain.
    """

    def setup(self, weights: list | None = None,
              threshold: int = 6) -> None:
        self.storage.set("weights", list(weights or [3, 2, 1, 4, 3]))
        self.storage.set("threshold", int(threshold))
        self.storage.set("count:positive", 0)
        self.storage.set("count:negative", 0)

    @method
    def diagnose(self, symptoms: list) -> dict:
        """Score a symptom vector; records only the aggregate tally."""
        self.charge(2)
        weights = self.storage.get("weights")
        self.require(len(symptoms) == len(weights),
                     f"expected {len(weights)} symptom severities")
        score = sum(int(s) * int(w) for s, w in zip(symptoms, weights))
        threshold = int(self.storage.get("threshold"))
        positive = score >= threshold
        key = "count:positive" if positive else "count:negative"
        self.storage.set(key, int(self.storage.get(key, 0)) + 1)
        confidence_pct = min(100, 50 + abs(score - threshold) * 5)
        self.emit("diagnosis", positive=positive, score=score)
        return {"positive": positive, "score": score,
                "confidence_pct": confidence_pct}

    @view
    def tally(self) -> dict:
        self.charge(1)
        return {"positive": int(self.storage.get("count:positive", 0)),
                "negative": int(self.storage.get("count:negative", 0))}


@dataclass(frozen=True)
class SubmissionReceipt:
    """What the patient gets back."""

    submission_id: str
    positive: bool
    confidence_pct: int


class PandemicPlatform:
    """Anonymous symptom collection + on-chain automatic diagnostics."""

    def __init__(self, health_authorities: list[str],
                 clock: SimClock | None = None) -> None:
        if not health_authorities:
            raise DomainError("need at least one health authority")
        self.clock = clock or SimClock()
        self.chain = Blockchain(ChainParams(chain_id="pandemic",
                                            visibility="consortium"))
        self.engine = ProofOfAuthority(health_authorities)
        self.runtime = ContractRuntime()
        self.runtime.register(DiagnosticDetector)
        self.runtime.attach(self.chain)
        deploy = Transaction(
            sender=health_authorities[0], kind=TxKind.CONTRACT_DEPLOY,
            payload=deploy_payload("DiagnosticDetector"),
        )
        block, _ = self.engine.seal(self.chain, [deploy],
                                    timestamp=self.clock.now())
        receipts = self.chain.append_block(block)
        self.detector_address = receipts[0].output
        self.group = GroupManager("patients")
        self._counter = 0
        self.rejected_submissions = 0

    # ------------------------------------------------------------------
    # Enrollment & submission
    # ------------------------------------------------------------------
    def enroll_patient(self, patient_id: str) -> None:
        self.group.enroll(patient_id)

    def submit_symptoms(self, patient_id: str,
                        severities: dict[str, int]) -> SubmissionReceipt:
        """A patient submits a group-signed symptom vector.

        The chain sees the signature's pseudonym, never the patient id;
        two submissions by the same patient are unlinkable.
        """
        vector = [int(severities.get(name, 0)) for name in SYMPTOM_NAMES]
        if any(not 0 <= s <= 3 for s in vector):
            raise DomainError("severities must be 0..3")
        signature = self.group.sign(patient_id, {"symptoms": vector})
        return self._process(vector, signature)

    def _process(self, vector: list[int],
                 signature: GroupSignature) -> SubmissionReceipt:
        if not self.group.verify({"symptoms": vector}, signature):
            self.rejected_submissions += 1
            raise PrivacyError("submission signature invalid; rejected")
        submission_id = f"sub-{self._counter:06d}"
        self._counter += 1
        sender = f"anon-{signature.pseudonym.hex()[:16]}"
        tx = Transaction(
            sender=sender, kind=TxKind.CONTRACT_CALL,
            payload=call_payload(self.detector_address, "diagnose",
                                 symptoms=vector),
            timestamp=self.clock.now(),
        )
        block, _ = self.engine.seal(self.chain, [tx],
                                    timestamp=self.clock.now())
        receipts = self.chain.append_block(block)
        receipt = receipts[0]
        if not receipt.success:
            raise DomainError(f"detector failed: {receipt.error}")
        self.clock.advance(1)
        return SubmissionReceipt(
            submission_id=submission_id,
            positive=bool(receipt.output["positive"]),
            confidence_pct=int(receipt.output["confidence_pct"]),
        )

    # ------------------------------------------------------------------
    # Authority-side access
    # ------------------------------------------------------------------
    def statistics(self) -> dict:
        """Aggregate tally — identity-free by construction."""
        return self.runtime.query(self.chain, self.detector_address,
                                  "tally")

    def submitters_are_anonymous(self) -> bool:
        """Every diagnose call on-chain is signed by a pseudonym, and no
        enrolled patient id appears in any transaction."""
        enrolled = set(self.group._members)  # test-side introspection
        for block in self.chain.blocks:
            for tx in block.transactions:
                if tx.kind != TxKind.CONTRACT_CALL:
                    continue
                if not tx.sender.startswith("anon-"):
                    return False
                if tx.sender in enrolled:
                    return False
        return True

    def open_submission(self, signature: GroupSignature) -> str:
        """Due-process de-anonymization by the group manager."""
        return self.group.open(signature)
