"""ForensiCross [11]: cross-chain digital forensics collaboration.

"The first cross-chain solution for digital forensics, uses BridgeChain
to facilitate interactions between private blockchains via a novel
communication protocol.  It ensures logging, access control, provenance
extraction, and synchronization of investigative stages.  Nodes validate
transactions across blockchains, requiring unanimous agreement for
progression. ... Provenance is verified through a novel Merkle tree
construction."

Composition:

* each organization runs a full :class:`~repro.systems.forensiblock.ForensiBlock`
  (private chain, stage machine, RBAC, case forest);
* a :class:`~repro.crosschain.bridge.BridgeChain` with **unanimous**
  validation connects them;
* **evidence sharing** ships an evidence record plus its forest proof
  over the bridge; the receiver verifies against the sender's case-forest
  root before admitting it;
* **stage synchronization** advances the mirrored case on every member
  org only when the bridge message commits (unanimity = every org's
  validator signed off on the progression);
* **cross-chain provenance extraction** assembles both orgs' case
  records, each verified against its home chain's anchors.
"""

from __future__ import annotations

from ..clock import SimClock
from ..crosschain.bridge import BridgeChain
from ..crypto.distributed_merkle import CaseForest, ForestProof
from ..errors import BridgeError, CustodyError
from .forensiblock import ForensiBlock


class ForensiCross:
    """Multiple ForensiBlock deployments joined by a unanimous bridge."""

    def __init__(self, org_ids: list[str],
                 clock: SimClock | None = None) -> None:
        if len(org_ids) < 2:
            raise ValueError("ForensiCross needs at least two organizations")
        self.clock = clock or SimClock()
        self.orgs: dict[str, ForensiBlock] = {
            org: ForensiBlock([org], clock=self.clock) for org in org_ids
        }
        self.bridge = BridgeChain(
            self.clock,
            validator_ids=[f"bridge-val-{org}" for org in org_ids],
            unanimous=True,
        )
        for org, system in self.orgs.items():
            self.bridge.connect(system.chain)
        self.evidence_shared = 0
        self.stage_syncs = 0

    # ------------------------------------------------------------------
    # Joint cases
    # ------------------------------------------------------------------
    def open_joint_case(self, case_number: str,
                        leads: dict[str, str]) -> None:
        """Open the same case number at every org (each with its lead)."""
        for org, system in self.orgs.items():
            lead = leads.get(org)
            if lead is None:
                raise CustodyError(f"no lead investigator named for {org}")
            system.assign_role(lead, "lead_investigator")
            system.open_case(case_number, lead)

    def sync_stage(self, case_number: str, actors: dict[str, str]) -> str:
        """Advance the case's stage at every org, through the bridge.

        The progression is first agreed on the bridge (unanimous
        validators), then applied locally everywhere — the ForensiCross
        rule that no org's investigation runs ahead of the others.
        """
        org_ids = sorted(self.orgs)
        outcome = self.bridge.send(
            self.orgs[org_ids[0]].chain.chain_id,
            self.orgs[org_ids[1]].chain.chain_id,
            kind="stage_sync",
            payload={"case_number": case_number},
        )
        if not outcome.completed:
            raise BridgeError(
                "stage sync rejected: unanimity not reached "
                f"({outcome.extra.get('endorsements')}/"
                f"{outcome.extra.get('required')})"
            )
        new_stage = ""
        for org, system in self.orgs.items():
            stage = system.advance_stage(case_number, actors[org])
            new_stage = stage.value
        self.stage_syncs += 1
        return new_stage

    # ------------------------------------------------------------------
    # Evidence sharing
    # ------------------------------------------------------------------
    def share_evidence(self, case_number: str, from_org: str, to_org: str,
                       evidence_id: str, actor: str) -> bool:
        """Ship one evidence item's record + forest proof over the bridge.

        The receiving org verifies the proof against the sender's
        case-forest root (the "novel Merkle tree construction"
        verification) before admitting the evidence reference.
        """
        sender = self.orgs[from_org]
        receiver = self.orgs[to_org]
        case = sender.cases.cases[case_number]
        item = case.evidence.get(evidence_id)
        if item is None:
            raise CustodyError(f"{from_org} holds no evidence {evidence_id!r}")
        # Find the forest entry for the collection of this evidence.
        stage = None
        index = None
        for stage_name in case.forest.stages:
            size = case.forest.stage_size(stage_name)
            for i in range(size):
                # Proof indices are per stage; match by re-deriving the
                # collection record.
                candidate = {
                    "evidence_id": evidence_id,
                    "content_hash": item.content_hash,
                    "actor": item.collected_by,
                    "timestamp": item.collected_at,
                }
                proof = case.forest.prove(stage_name, i)
                if CaseForest.verify_against(case.forest.root, candidate,
                                             proof):
                    stage, index = stage_name, i
                    break
            if stage is not None:
                break
        if stage is None:
            raise CustodyError(
                f"evidence {evidence_id!r} has no forest entry"
            )
        proof: ForestProof = case.forest.prove(stage, index)
        payload = {
            "case_number": case_number,
            "evidence_id": evidence_id,
            "content_hash": item.content_hash,
            "collected_by": item.collected_by,
            "collected_at": item.collected_at,
            "forest_root": case.forest.root,
            "stage": stage,
        }
        outcome = self.bridge.send(
            sender.chain.chain_id, receiver.chain.chain_id,
            kind="evidence_share", payload=payload,
        )
        if not outcome.completed:
            return False
        # Receiver-side verification against the claimed root.
        candidate = {
            "evidence_id": evidence_id,
            "content_hash": item.content_hash,
            "actor": item.collected_by,
            "timestamp": item.collected_at,
        }
        if not CaseForest.verify_against(payload["forest_root"],
                                         candidate, proof):
            raise BridgeError("received evidence failed forest verification")
        self.evidence_shared += 1
        return True

    # ------------------------------------------------------------------
    # Cross-chain provenance extraction
    # ------------------------------------------------------------------
    def extract_cross_chain(self, case_number: str,
                            requesters: dict[str, str]) -> dict:
        """A combined, per-org-verified bundle for a joint case."""
        bundles = {}
        for org, system in self.orgs.items():
            bundle = system.extract_case(case_number, requesters[org])
            bundle["verified"] = ForensiBlock.verify_extraction(
                bundle, system.anchors
            )
            bundles[org] = bundle
        return {
            "case_number": case_number,
            "organizations": bundles,
            "bridge_messages": self.bridge.messages_committed,
            "all_verified": all(b["verified"] for b in bundles.values()),
        }

    # ------------------------------------------------------------------
    def block_org(self, org: str) -> None:
        """Failure injection: one org's bridge validator stops endorsing
        (unanimity then blocks all progression — by design)."""
        self.bridge.set_validator_honesty(f"bridge-val-{org}", False)

    def unblock_org(self, org: str) -> None:
        self.bridge.set_validator_honesty(f"bridge-val-{org}", True)
