"""Reference implementations of the surveyed systems.

RQ1 (single entity):
    * :class:`~repro.systems.provchain.ProvChain` — cloud-storage
      provenance with blockchain anchoring [47];
    * :class:`~repro.systems.blockcloud.BlockCloud` — the PoS variant
      [75];
    * :class:`~repro.systems.ipfs_provenance.IPFSProvenance` — IPFS +
      chain provenance [33].

RQ2 (intra-chain collaboration):
    * :class:`~repro.systems.sciledger.SciLedger` — scientific workflow
      provenance with invalidation [36];
    * :class:`~repro.systems.forensiblock.ForensiBlock` — forensic stages
      with access control and a distributed Merkle tree [12];
    * :class:`~repro.systems.privchain.PrivChain` — supply-chain ZKRPs
      with automated incentives [52];
    * :class:`~repro.systems.ledgerview.LedgerViewSystem` — access-control
      views [66].

RQ3 (multi-chain):
    * :class:`~repro.systems.synergychain.SynergyChain` — three-tier
      multichain data sharing [21];
    * :class:`~repro.systems.vassago.Vassago` — dependency-guided
      authenticated cross-chain provenance queries [31];
    * :class:`~repro.systems.forensicross.ForensiCross` — cross-chain
      digital forensics over a bridge chain [11].
"""

from .provchain import CloudProvenanceSystem, ProvChain
from .blockcloud import BlockCloud
from .ipfs_provenance import IPFSProvenance
from .sciledger import SciLedger
from .forensiblock import ForensiBlock
from .privchain import PrivChain
from .ledgerview import LedgerViewSystem
from .synergychain import SynergyChain
from .vassago import Vassago, TrustedQueryEnclave
from .forensicross import ForensiCross
from .eochain import EOChain, EOGranule
from .pandemic import PandemicPlatform

__all__ = [
    "CloudProvenanceSystem",
    "ProvChain",
    "BlockCloud",
    "IPFSProvenance",
    "SciLedger",
    "ForensiBlock",
    "PrivChain",
    "LedgerViewSystem",
    "SynergyChain",
    "Vassago",
    "TrustedQueryEnclave",
    "ForensiCross",
    "EOChain",
    "EOGranule",
    "PandemicPlatform",
]
