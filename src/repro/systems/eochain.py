"""Earth-observation data management ([87], paper §4.1).

"Users upload EO datasets to data centers, which utilize a consortium
blockchain with Raft and PBFT consensus algorithms to achieve high
throughput, low latency, and efficient querying.  Data centers store EO
data off-chain, while essential information is stored on-chain and
managed by smart contracts.  Transactions within the blockchain form a
Directed Acyclic Graph, enabling efficient traceability."

Composition:

* **data centers** — content-addressed stores holding the (petabyte-
  scale in reality, synthetic here) EO granules off-chain;
* **consortium chain** — a Raft cluster of the data centers (the [87]
  deployment pairs Raft for ordering with PBFT for cross-org
  checkpoints; here Raft orders and a PBFT checkpoint round can be run
  on demand);
* **on-chain essentials** — a registry contract maps granule ids to
  (CID, center, lineage parents), and the parent links form the DAG
  that makes traceability a walk instead of a scan;
* **traceability** — :meth:`trace` walks the DAG of a derived product
  back to the raw acquisitions, verifying each hop's content hash
  against its data center.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain import Transaction, TxKind
from ..clock import SimClock
from ..consensus.raft import RaftCluster
from ..contracts import ContractRuntime, ProvenanceRegistry, call_payload, deploy_payload
from ..errors import DomainError, UnknownEntity
from ..network import SimNet
from ..storage.cas import CID, ContentAddressedStore


@dataclass
class EOGranule:
    """One registered EO data product."""

    granule_id: str
    center_id: str
    cid: CID
    kind: str                     # "acquisition" | "derived"
    parents: tuple[str, ...] = ()


class EOChain:
    """Consortium EO data management: off-chain granules, on-chain DAG."""

    def __init__(self, center_ids: list[str], seed: int = 0) -> None:
        if len(center_ids) < 3:
            raise DomainError("the consortium needs >= 3 data centers")
        self.clock = SimClock()
        self.net = SimNet(seed=seed, clock=self.clock)
        self.cluster = RaftCluster(self.net, n_nodes=len(center_ids),
                                   chain_id="eo-consortium")
        self.centers: dict[str, ContentAddressedStore] = {
            cid_: ContentAddressedStore(chunk_size=8192)
            for cid_ in center_ids
        }
        self.center_ids = list(center_ids)
        self.runtime = ContractRuntime()
        self.runtime.register(ProvenanceRegistry)
        # The registry contract is deployed on every replica's chain by
        # committing the deploy through consensus.
        for node in self.cluster.nodes:
            self.runtime.attach(node.chain)  # shared runtime, per-chain state
        deploy_tx = Transaction(
            sender="consortium", kind=TxKind.CONTRACT_DEPLOY,
            payload=deploy_payload("ProvenanceRegistry"),
        )
        self.cluster.propose([deploy_tx])
        leader_chain = self._leader_chain()
        self.registry_address = leader_chain.receipts[deploy_tx.tx_id].output
        self.granules: dict[str, EOGranule] = {}

    # ------------------------------------------------------------------
    def _leader_chain(self):
        leader = self.cluster.leader_id
        for node in self.cluster.nodes:
            if node.node_id == leader:
                return node.chain
        raise DomainError("no leader")  # pragma: no cover

    # ------------------------------------------------------------------
    # Upload & derive
    # ------------------------------------------------------------------
    def upload(self, center_id: str, granule_id: str,
               content: bytes) -> EOGranule:
        """A data center ingests a raw acquisition."""
        return self._register(center_id, granule_id, content,
                              kind="acquisition", parents=())

    def derive(self, center_id: str, granule_id: str, content: bytes,
               parents: list[str]) -> EOGranule:
        """Register a derived product with explicit DAG parents."""
        if not parents:
            raise DomainError("derived products must declare parents")
        for parent in parents:
            if parent not in self.granules:
                raise UnknownEntity(f"unknown parent granule {parent!r}")
        return self._register(center_id, granule_id, content,
                              kind="derived", parents=tuple(parents))

    def _register(self, center_id: str, granule_id: str, content: bytes,
                  kind: str, parents: tuple[str, ...]) -> EOGranule:
        store = self.centers.get(center_id)
        if store is None:
            raise UnknownEntity(f"no data center {center_id!r}")
        if granule_id in self.granules:
            raise DomainError(f"granule {granule_id!r} already registered")
        cid = store.put(content)
        # Essential information goes on-chain through consensus.
        call_tx = Transaction(
            sender=center_id, kind=TxKind.CONTRACT_CALL,
            payload=call_payload(
                self.registry_address, "register",
                record_id=granule_id,
                content_hash=cid.hex,
                prev_record_id=parents[0] if parents else "",
                meta={"center": center_id, "kind": kind,
                      "parents": list(parents), "cid_kind": cid.kind},
            ),
        )
        self.cluster.propose([call_tx])
        receipt = self._leader_chain().receipts[call_tx.tx_id]
        if not receipt.success:
            raise DomainError(f"on-chain registration failed: "
                              f"{receipt.error}")
        granule = EOGranule(granule_id=granule_id, center_id=center_id,
                            cid=cid, kind=kind, parents=parents)
        self.granules[granule_id] = granule
        return granule

    # ------------------------------------------------------------------
    # Retrieval & traceability
    # ------------------------------------------------------------------
    def fetch(self, granule_id: str) -> bytes:
        """Fetch granule bytes and verify them against the on-chain CID."""
        granule = self._granule(granule_id)
        content = self.centers[granule.center_id].get(granule.cid)
        registered = self.runtime.query(
            self._leader_chain(), self.registry_address, "lookup",
            record_id=granule_id,
        )
        if registered is None or registered["content_hash"] != granule.cid.hex:
            raise DomainError(
                f"granule {granule_id!r} does not match its on-chain hash"
            )
        return content

    def trace(self, granule_id: str) -> list[EOGranule]:
        """Walk the DAG from a product back to raw acquisitions,
        verifying availability of every ancestor."""
        self._granule(granule_id)
        ordered: list[EOGranule] = []
        seen: set[str] = set()
        frontier = [granule_id]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            granule = self._granule(current)
            if not self.centers[granule.center_id].has(granule.cid):
                raise DomainError(
                    f"ancestor {current!r} is no longer available at "
                    f"{granule.center_id}"
                )
            ordered.append(granule)
            frontier.extend(granule.parents)
        return ordered

    def _granule(self, granule_id: str) -> EOGranule:
        granule = self.granules.get(granule_id)
        if granule is None:
            raise UnknownEntity(f"no granule {granule_id!r}")
        return granule

    # ------------------------------------------------------------------
    @property
    def consortium_height(self) -> int:
        return self._leader_chain().height

    def replicated_consistently(self) -> bool:
        """All live replicas hold the same head (the consortium claim)."""
        heads = {
            node.chain.head.block_id
            for node in self.cluster.nodes if not node.crashed
        }
        return len(heads) == 1
