"""Vassago [31]: efficient, authenticated cross-chain provenance queries.

Vassago's insight: record cross-chain transaction *dependencies* on a
shared Dependency Blockchain (DB).  A provenance query for a transaction
then (1) reads the dependency path from the DB instead of searching every
chain, and (2) verifies each hop's transaction against its home chain
with an inclusion proof — "efficient and authenticated".

Implemented pieces:

* **shard chains** — the organizations' transaction chains;
* **dependency blockchain** — records ``(tx, chain, parents)`` triples
  whenever a cross-chain transaction is committed;
* **dependency-guided query** — walks the recorded DAG, fetching and
  verifying only the touched transactions (plus Merkle proofs);
* **naive baseline** — scans all shard chains for related transactions,
  which is what the query costs without the DB;
* **TrustedQueryEnclave** — the TEE the paper suggests as an enhancement:
  wraps a query and stamps an attestation over the result, so repeated
  consumers can skip re-verification (trust trade-off made explicit).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain import Blockchain, ChainParams, Transaction, TxKind
from ..clock import SimClock
from ..crypto.hashing import hash_canonical
from ..crypto.signatures import KeyPair, verify
from ..errors import CrossChainError, QueryError


@dataclass
class DependencyEntry:
    """One node of the cross-chain dependency DAG."""

    tx_id: str
    chain_id: str
    block_height: int
    parents: tuple[str, ...] = ()


@dataclass
class ProvenanceHop:
    """One verified step of a cross-chain provenance answer."""

    tx_id: str
    chain_id: str
    block_height: int
    payload: dict
    proof_valid: bool


@dataclass
class QueryCost:
    """What answering took — the EVAL-QUERY bench's raw material."""

    txs_examined: int = 0
    chains_touched: set = field(default_factory=set)
    proofs_verified: int = 0


class Vassago:
    """Dependency-guided authenticated provenance over shard chains."""

    def __init__(self, organizations: list[str],
                 clock: SimClock | None = None) -> None:
        if not organizations:
            raise ValueError("Vassago needs shard organizations")
        self.clock = clock or SimClock()
        self.shards: dict[str, Blockchain] = {
            org: Blockchain(ChainParams(chain_id=org)) for org in organizations
        }
        self.dependency_chain = Blockchain(ChainParams(chain_id="vassago-db"))
        self._dependencies: dict[str, DependencyEntry] = {}
        self.last_query_cost = QueryCost()

    # ------------------------------------------------------------------
    # Recording cross-chain transactions
    # ------------------------------------------------------------------
    def commit_tx(self, chain_id: str, sender: str, payload: dict,
                  depends_on: list[str] | None = None) -> str:
        """Commit a transaction on a shard and record its dependencies
        on the dependency blockchain."""
        shard = self._shard(chain_id)
        for parent in depends_on or []:
            if parent not in self._dependencies:
                raise CrossChainError(f"unknown parent tx {parent!r}")
        tx = Transaction(
            sender=sender, kind=TxKind.CROSS_CHAIN,
            payload={"message_id": f"vtx-{len(self._dependencies):06d}",
                     **payload},
            timestamp=self.clock.now(),
        )
        shard.append_block(shard.build_block([tx],
                                             timestamp=self.clock.now()))
        entry = DependencyEntry(
            tx_id=tx.tx_id,
            chain_id=chain_id,
            block_height=shard.height,
            parents=tuple(depends_on or []),
        )
        self._dependencies[tx.tx_id] = entry
        dep_tx = Transaction(
            sender="vassago-recorder", kind=TxKind.CROSS_CHAIN,
            payload={
                "message_id": f"dep-{tx.tx_id[:16]}",
                "tx_id": tx.tx_id,
                "chain_id": chain_id,
                "block_height": entry.block_height,
                "parents": list(entry.parents),
            },
            timestamp=self.clock.now(),
        )
        self.dependency_chain.append_block(
            self.dependency_chain.build_block([dep_tx],
                                              timestamp=self.clock.now())
        )
        self.clock.advance(1)
        return tx.tx_id

    # ------------------------------------------------------------------
    # Dependency-guided query (the Vassago way)
    # ------------------------------------------------------------------
    def query_provenance(self, tx_id: str) -> list[ProvenanceHop]:
        """Walk the dependency DAG from ``tx_id`` back to its roots,
        verifying every hop against its home shard."""
        if tx_id not in self._dependencies:
            raise QueryError(f"unknown transaction {tx_id!r}")
        cost = QueryCost()
        hops: list[ProvenanceHop] = []
        seen: set[str] = set()
        frontier = [tx_id]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            entry = self._dependencies[current]
            hop = self._fetch_verified(entry, cost)
            hops.append(hop)
            frontier.extend(entry.parents)
        self.last_query_cost = cost
        return hops

    def _fetch_verified(self, entry: DependencyEntry,
                        cost: QueryCost) -> ProvenanceHop:
        shard = self._shard(entry.chain_id)
        cost.chains_touched.add(entry.chain_id)
        located = shard.prove_transaction(entry.tx_id)
        cost.txs_examined += 1
        if located is None:
            return ProvenanceHop(
                tx_id=entry.tx_id, chain_id=entry.chain_id,
                block_height=entry.block_height, payload={},
                proof_valid=False,
            )
        block, proof = located
        tx = block.find_transaction(entry.tx_id)[1]
        valid = Blockchain.verify_transaction_proof(
            block.header.merkle_root, tx, proof
        )
        cost.proofs_verified += 1
        return ProvenanceHop(
            tx_id=entry.tx_id, chain_id=entry.chain_id,
            block_height=block.height, payload=dict(tx.payload),
            proof_valid=valid,
        )

    # ------------------------------------------------------------------
    # Naive baseline: no dependency chain
    # ------------------------------------------------------------------
    def query_provenance_naive(self, tx_id: str) -> list[ProvenanceHop]:
        """Scan *every* block of *every* shard chasing payload links —
        the cost profile without the dependency blockchain."""
        cost = QueryCost()
        hops: list[ProvenanceHop] = []
        # Without the DB the client must discover the dependency structure
        # by exhaustively scanning all shards for each frontier tx.
        wanted = {tx_id}
        resolved: set[str] = set()
        while wanted:
            target = wanted.pop()
            if target in resolved:
                continue
            resolved.add(target)
            for chain_id, shard in self.shards.items():
                for block in shard.blocks:
                    for tx in block.transactions:
                        cost.txs_examined += 1
                        if tx.tx_id != target:
                            continue
                        cost.chains_touched.add(chain_id)
                        hops.append(ProvenanceHop(
                            tx_id=tx.tx_id, chain_id=chain_id,
                            block_height=block.height,
                            payload=dict(tx.payload),
                            proof_valid=True,   # scanning IS reading the chain
                        ))
                        entry = self._dependencies.get(target)
                        if entry is not None:
                            wanted.update(entry.parents)
        self.last_query_cost = cost
        return hops

    # ------------------------------------------------------------------
    def _shard(self, chain_id: str) -> Blockchain:
        shard = self.shards.get(chain_id)
        if shard is None:
            raise CrossChainError(f"no shard chain {chain_id!r}")
        return shard


class TrustedQueryEnclave:
    """The TEE enhancement the paper proposes for Vassago.

    Runs a query inside the "enclave" and signs the result digest with
    the enclave's attestation key.  Consumers who trust the enclave
    vendor can accept the attestation instead of re-verifying every
    Merkle proof — the fidelity/efficiency trade the paper discusses.
    """

    def __init__(self, system: Vassago, enclave_seed: int = 7) -> None:
        self.system = system
        self._keypair = KeyPair.generate(("enclave", enclave_seed))
        self.attestations_issued = 0

    @property
    def measurement(self) -> str:
        """The enclave's public identity (what consumers pin)."""
        return self._keypair.address

    def attested_query(self, tx_id: str) -> tuple[list[ProvenanceHop], bytes]:
        """Run the query and return (hops, attestation signature)."""
        hops = self.system.query_provenance(tx_id)
        digest = hash_canonical([
            {"tx": h.tx_id, "chain": h.chain_id, "valid": h.proof_valid}
            for h in hops
        ])
        signature = self._keypair.sign(digest)
        self.attestations_issued += 1
        return hops, signature

    def verify_attestation(self, hops: list[ProvenanceHop],
                           signature: bytes) -> bool:
        digest = hash_canonical([
            {"tx": h.tx_id, "chain": h.chain_id, "valid": h.proof_valid}
            for h in hops
        ])
        return verify(digest, signature, self._keypair.public)
