"""BlockCloud [75]: PoS-based cloud provenance.

"It implements a PoS consensus mechanism to decrease computational
requirements compared to traditional PoW consensus" — the entire delta
from ProvChain is the sealing engine, which is precisely how this module
expresses it.  The EVAL-CONS bench quantifies the work gap.
"""

from __future__ import annotations

from ..clock import SimClock
from ..consensus.pos import ProofOfStake, Validator
from .provchain import CloudProvenanceSystem


class BlockCloud(CloudProvenanceSystem):
    """Cloud provenance sealed by a stake-weighted validator set."""

    def __init__(
        self,
        validators: list[Validator] | None = None,
        clock: SimClock | None = None,
        batch_size: int = 16,
    ) -> None:
        if validators is None:
            validators = [
                Validator(validator_id=f"staker-{i}", stake=10 + 5 * i)
                for i in range(4)
            ]
        super().__init__(
            engine=ProofOfStake(validators),
            clock=clock,
            chain_id="blockcloud",
            batch_size=batch_size,
            pseudonymize=True,
            visibility="consortium",
        )
        self.validators = list(validators)
