"""The process-default telemetry instance and its lifecycle.

Every subsystem that instruments itself asks :func:`telemetry` for the
default :class:`Telemetry` unless it was handed an explicit instance —
so one process has one registry and one tracer, and an ``ops/metrics``
snapshot sees everything.  Tests that need isolation construct their
own ``Telemetry`` and pass it in, or call
:func:`reset_default_telemetry` around themselves.

Exec worker processes call :func:`reset_default_telemetry` on startup:
after a ``fork`` the child would otherwise inherit (and double-report)
the parent's counters.  The worker's registry/tracer then feed the
parent through drained deltas and span rows on each reply.
"""

from __future__ import annotations

import threading

from .metrics import MetricsRegistry
from .trace import Tracer

# Trace one in every N sampling decisions by default: frequent enough
# that any sustained workload yields traces, rare enough that the
# amortized span cost stays inside the <=5% hot-path overhead budget
# (BENCH_obs.json measures it against the cheapest submit path in the
# system — in-memory routing at ~1µs/tx, where every span nanosecond
# shows).  Tests wanting every trace pass sample_every=1 explicitly.
DEFAULT_SAMPLE_EVERY = 256


class Telemetry:
    """One registry + one tracer, the unit handed around as a whole."""

    def __init__(self, sample_every: int = DEFAULT_SAMPLE_EVERY) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(sample_every=sample_every)

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.clear()


_DEFAULT: Telemetry | None = None
_DEFAULT_LOCK = threading.Lock()


def telemetry() -> Telemetry:
    """The process-default instance (created on first use)."""
    global _DEFAULT
    if _DEFAULT is None:
        with _DEFAULT_LOCK:
            if _DEFAULT is None:
                _DEFAULT = Telemetry()
    return _DEFAULT


def reset_default_telemetry(sample_every: int = DEFAULT_SAMPLE_EVERY
                            ) -> Telemetry:
    """Replace the process default with a fresh instance (tests; worker
    startup after fork).  Subsystems holding instrument handles from the
    old instance keep them — only *new* lookups see the fresh one, so
    call this before constructing the stacks under test."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        _DEFAULT = Telemetry(sample_every=sample_every)
    return _DEFAULT
