"""Span-based tracing with sampling and cross-process propagation.

A **trace** follows one sampled transaction (or one sync, one round)
through the system; a **span** is one timed operation within it.  Spans
parent two ways:

* explicitly — ``tracer.span(name, parent=ctx)`` with a
  :class:`TraceContext` carried across layer boundaries (bound to a
  transaction id at submit, or shipped inside an exec job frame to a
  worker process);
* implicitly — ``tracer.span(name)`` with no parent attaches to the
  innermost active span *on the current thread*, which is how the
  persist layer's fsync span lands under whatever seal/commit span is
  running without the storage API knowing about tracing at all.

Sampling happens once, at the root: an unsampled root — and every
descendant opened under it, and every span opened with no active trace
at all — is the module's no-op singleton, so the unsampled hot path
pays one countdown decrement at the root and one ``is None``/flag check
per would-be child.  Finished spans land in a bounded ring buffer;
nothing here ever blocks or raises into the instrumented code.

Cross-process: :meth:`TraceContext.to_wire` /
:meth:`Tracer.span_rows` / :meth:`Tracer.ingest_rows` are the
canonical-encodable halves the exec pool uses to ship context down to
workers and finished worker spans back up.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, NamedTuple

_IDS = itertools.count(1)

# The pid prefix is cached: os.getpid() is a real syscall on some
# kernels (tens of µs under syscall-filtering sandboxes), far too slow
# to pay per span id.  The at-fork hook keeps worker-minted ids unique.
_PID_PREFIX = f"{os.getpid():x}"


def _refresh_pid_prefix() -> None:
    global _PID_PREFIX
    _PID_PREFIX = f"{os.getpid():x}"


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_refresh_pid_prefix)


def _new_id() -> str:
    # Unique per process (counter) and across processes (pid prefix):
    # worker-minted span ids can merge into the parent without clashes.
    return f"{_PID_PREFIX}-{next(_IDS):x}"


class TraceContext(NamedTuple):
    """What crosses a boundary: enough to parent a remote child span.

    A ``NamedTuple`` rather than a dataclass: one is minted per sampled
    span on the hot path, and tuple construction is several times
    cheaper than a frozen dataclass's ``object.__setattr__`` init.
    """

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "sampled": self.sampled}

    @classmethod
    def from_wire(cls, wire: Mapping[str, Any] | None
                  ) -> "TraceContext | None":
        if not wire:
            return None
        return cls(trace_id=str(wire["trace_id"]),
                   span_id=str(wire["span_id"]),
                   sampled=bool(wire.get("sampled", True)))


@dataclass
class SpanRecord:
    """One finished span (what exporters and tests read)."""

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start_s: float
    duration_s: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_row(self) -> list:
        """Canonical-encodable row (worker → parent wire form)."""
        return [self.name, self.trace_id, self.span_id,
                self.parent_id or "", self.start_s, self.duration_s,
                self.status, dict(self.attrs)]

    @classmethod
    def from_row(cls, row: Iterable) -> "SpanRecord":
        name, trace_id, span_id, parent_id, start, dur, status, attrs = \
            list(row)
        return cls(name=str(name), trace_id=str(trace_id),
                   span_id=str(span_id),
                   parent_id=str(parent_id) or None,
                   start_s=float(start), duration_s=float(dur),
                   status=str(status), attrs=dict(attrs))


class _NoopSpan:
    """The unsampled span: every operation is a cheap no-op."""

    __slots__ = ()
    ctx = TraceContext(trace_id="", span_id="", sampled=False)

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set_attr(self, key: str, value: Any) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """A live, sampled span; use as a context manager."""

    __slots__ = ("_tracer", "name", "ctx", "parent_id", "start_s",
                 "attrs", "status", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 trace_id: str | None, parent_id: str | None) -> None:
        self._tracer = tracer
        self.name = name
        span_id = _new_id()
        # A root span's id doubles as its trace id (one mint, not two).
        self.ctx = TraceContext(
            trace_id=span_id if trace_id is None else trace_id,
            span_id=span_id,
        )
        self.parent_id = parent_id
        self.attrs: dict[str, Any] = {}
        self.status = "ok"
        self.start_s = time.time()
        self._t0 = time.perf_counter()

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    # enter/exit touch the thread-local stack directly (not through
    # Tracer helpers): each avoided call is measurable at the sampling
    # rates the overhead budget allows.
    def __enter__(self) -> "Span":
        tracer = self._tracer
        stack = getattr(tracer._tls, "stack", None)
        if stack is None:
            stack = tracer._tls.stack = []
        stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.status = f"error:{exc_type.__name__}"
        tracer = self._tracer
        stack = getattr(tracer._tls, "stack", None)
        if stack and stack[-1] is self:
            stack.pop()
        # The finished span lands in the ring buffer already in wire-row
        # form; SpanRecord objects are materialized lazily by readers.
        ctx = self.ctx
        tracer._spans.append(
            [self.name, ctx.trace_id, ctx.span_id, self.parent_id or "",
             self.start_s, time.perf_counter() - self._t0, self.status,
             self.attrs]
        )
        return False


class Tracer:
    """Sampling span factory + bounded finished-span buffer."""

    def __init__(self, sample_every: int = 64,
                 max_spans: int = 4096, max_bound_txs: int = 4096) -> None:
        if sample_every < 0:
            raise ValueError("sample_every must be >= 0")
        self.sample_every = sample_every
        self._countdown = 1 if sample_every else 0
        # Finished spans, kept in wire-row form (see SpanRecord.to_row):
        # cheap to append on span exit, materialized only when read.
        self._spans: deque[list] = deque(maxlen=max_spans)
        self._tls = threading.local()
        # tx_id -> TraceContext for sampled submits awaiting their seal.
        # Bounded: a sampled tx that never seals must not leak forever.
        self._tx_ctx: OrderedDict[str, TraceContext] = OrderedDict()
        self._max_bound_txs = max_bound_txs
        self._bind_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Sampling + span creation
    # ------------------------------------------------------------------
    def should_sample(self) -> bool:
        """Decimating root-sampling decision: one decrement per call."""
        if self.sample_every == 0:
            return False
        self._countdown -= 1
        if self._countdown <= 0:
            self._countdown = self.sample_every
            return True
        return False

    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = []
            self._tls.stack = stack
        return stack

    def current_ctx(self) -> TraceContext | None:
        stack = getattr(self._tls, "stack", None)
        return stack[-1].ctx if stack else None

    def root_span(self, name: str, sampled: bool | None = None):
        """Start a new trace; ``sampled=None`` asks the sampler."""
        if sampled is None:
            sampled = self.should_sample()
        if not sampled:
            return NOOP_SPAN
        return Span(self, name, trace_id=None, parent_id=None)

    def span(self, name: str,
             parent: TraceContext | None = None):
        """A child span of ``parent`` — or of the innermost span active
        on this thread when ``parent`` is None.  No sampled ancestor →
        the no-op singleton."""
        if parent is None:
            stack = getattr(self._tls, "stack", None)
            if not stack:
                return NOOP_SPAN
            top = stack[-1]
            return Span(self, name, trace_id=top.ctx.trace_id,
                        parent_id=top.ctx.span_id)
        if not parent.sampled:
            return NOOP_SPAN
        return Span(self, name, trace_id=parent.trace_id,
                    parent_id=parent.span_id)

    # ------------------------------------------------------------------
    # Transaction binding (submit → seal correlation)
    # ------------------------------------------------------------------
    def bind_tx(self, tx_id: str, ctx: TraceContext) -> None:
        with self._bind_lock:
            self._tx_ctx[tx_id] = ctx
            while len(self._tx_ctx) > self._max_bound_txs:
                self._tx_ctx.popitem(last=False)

    @property
    def has_bound_txs(self) -> bool:
        return bool(self._tx_ctx)

    def take_tx_ctx(self, tx_ids: Iterable[str]) -> TraceContext | None:
        """Pop every binding for ``tx_ids``; return the first hit (the
        round span can have one parent — later hits are the same round
        and their traces converge on it)."""
        if not self._tx_ctx:
            return None
        found: TraceContext | None = None
        with self._bind_lock:
            for tx_id in tx_ids:
                ctx = self._tx_ctx.pop(tx_id, None)
                if ctx is not None and found is None:
                    found = ctx
        return found

    # ------------------------------------------------------------------
    # Export / merge
    # ------------------------------------------------------------------
    def spans(self) -> list[SpanRecord]:
        return [SpanRecord.from_row(r) for r in self._spans]

    def find_spans(self, trace_id: str) -> list[SpanRecord]:
        return [SpanRecord.from_row(r) for r in self._spans
                if r[1] == trace_id]

    def span_rows(self, drain: bool = True) -> list[list]:
        """Finished spans as canonical-encodable rows (worker reply)."""
        rows = list(self._spans)
        if drain:
            self._spans.clear()
        return rows

    def ingest_rows(self, rows: Iterable[Iterable]) -> int:
        """Merge foreign (worker-process) span rows into this buffer."""
        n = 0
        for row in rows:
            try:
                # Round-trip through SpanRecord: validates the shape and
                # normalizes types before the row enters the buffer.
                self._spans.append(SpanRecord.from_row(row).to_row())
                n += 1
            except (TypeError, ValueError, KeyError):
                continue  # a malformed row must not poison the merge
        return n

    def clear(self) -> None:
        self._spans.clear()
        with self._bind_lock:
            self._tx_ctx.clear()
