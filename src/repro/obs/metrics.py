"""Metrics registry: counters, gauges, fixed-bucket histograms.

Lock discipline (deliberately cheap):

* **Updates are lock-free.**  ``Counter.inc`` / ``Gauge.set`` /
  ``Histogram.observe`` mutate plain Python ints and floats.  Under the
  GIL a concurrent ``+=`` can at worst lose an occasional increment —
  an accepted trade for keeping hot-path instrumentation at one
  attribute add.  Callers needing exact counts under concurrency (the
  signature LRUs) already hold their own lock around the update.
* **Registry structure is locked.**  Creating an instrument, attaching
  a collector, and snapshotting take the registry lock; instrument
  handles are cached by callers so the lock is off every hot path.

Collectors invert the push model for the hottest paths: a subsystem
keeps its existing plain-int counters and registers a callback that
publishes them as gauges/counters when (and only when) a snapshot is
taken.  Collectors are held by weak reference so a dead pipeline or
facade silently drops out of the snapshot instead of leaking.
"""

from __future__ import annotations

import json
import threading
import time
import weakref
from bisect import bisect_left
from typing import Any, Callable, Iterable, Mapping

# Spans ~1µs .. 10s: fsyncs, admission batches, seal rounds all land in
# distinguishable buckets.  (Upper catch-all bucket is implicit: +Inf.)
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0,
)
DEFAULT_SIZE_BUCKETS: tuple[float, ...] = (
    64.0, 1024.0, 16384.0, 262144.0, 4194304.0,
)
DEFAULT_COUNT_BUCKETS: tuple[float, ...] = (
    1.0, 4.0, 16.0, 64.0, 256.0, 1024.0,
)

LabelsT = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, Any]) -> LabelsT:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_key(name: str, labels: LabelsT) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic event counter (resettable for test/bench hygiene)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsT = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def reset(self) -> None:
        self.value = 0


class Gauge:
    """A value that goes up and down (depths, watermarks, paces)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsT = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram with an implicit +Inf catch-all bucket.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final slot
    counts the rest.  ``observe`` is one bisect plus two adds.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "sum", "count")

    def __init__(self, name: str, labels: LabelsT = (),
                 bounds: Iterable[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(float(b) for b in bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def percentile_bound(self, q: float) -> float:
        """Upper bucket bound covering quantile ``q`` (rough p99-style
        readout; ``inf`` when it lands in the catch-all bucket)."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.counts):
            seen += n
            if seen >= target:
                return (self.bounds[i] if i < len(self.bounds)
                        else float("inf"))
        return float("inf")  # pragma: no cover - loop always reaches target

    def to_snapshot(self) -> dict:
        cumulative = []
        running = 0
        for i, bound in enumerate(self.bounds):
            running += self.counts[i]
            cumulative.append([bound, running])
        return {"buckets": cumulative, "sum": self.sum,
                "count": self.count}


CollectorT = Callable[[], None]


class MetricsRegistry:
    """The process's (or a test's) one place metrics live."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, LabelsT], Counter] = {}
        self._gauges: dict[tuple[str, LabelsT], Gauge] = {}
        self._histograms: dict[tuple[str, LabelsT], Histogram] = {}
        # Weak refs: a collector belongs to some subsystem instance;
        # when that dies, its callback silently leaves the registry.
        self._collectors: list[weakref.ref] = []
        self._drained: dict[tuple[str, LabelsT], int] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        inst = self._counters.get(key)
        if inst is None:
            with self._lock:
                inst = self._counters.setdefault(key,
                                                 Counter(name, key[1]))
        return inst

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        inst = self._gauges.get(key)
        if inst is None:
            with self._lock:
                inst = self._gauges.setdefault(key, Gauge(name, key[1]))
        return inst

    def histogram(self, name: str,
                  buckets: Iterable[float] | None = None,
                  **labels: Any) -> Histogram:
        key = (name, _labels_key(labels))
        inst = self._histograms.get(key)
        if inst is None:
            with self._lock:
                inst = self._histograms.setdefault(
                    key,
                    Histogram(name, key[1],
                              bounds=(buckets if buckets is not None
                                      else DEFAULT_LATENCY_BUCKETS)),
                )
        return inst

    # ------------------------------------------------------------------
    # Collectors (pull-model instrumentation for hot subsystems)
    # ------------------------------------------------------------------
    def register_collector(self, fn: CollectorT) -> None:
        """Register a zero-arg callback run before every snapshot.

        Bound methods are held via :class:`weakref.WeakMethod`, plain
        callables via ``weakref.ref`` where possible (a local closure
        that nothing else references will be dropped — hold it on the
        subsystem instance that owns the stats).
        """
        try:
            ref = (weakref.WeakMethod(fn)
                   if hasattr(fn, "__self__") else weakref.ref(fn))
        except TypeError:  # unweakrefable callable: hold it forever
            ref = (lambda fn=fn: fn)  # type: ignore[assignment]
        with self._lock:
            self._collectors.append(ref)

    def collect(self) -> None:
        """Run live collectors; prune dead ones; never raise.

        A collector that throws (e.g. reads a closed store) is dropped —
        telemetry must not take the serving path down with it.
        """
        with self._lock:
            refs = list(self._collectors)
        dead: list[weakref.ref] = []
        for ref in refs:
            fn = ref()
            if fn is None:
                dead.append(ref)
                continue
            try:
                fn()
            except Exception:  # noqa: BLE001 - see docstring
                dead.append(ref)
        if dead:
            with self._lock:
                self._collectors = [r for r in self._collectors
                                    if r not in dead]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Point-in-time view of everything (collectors refreshed)."""
        self.collect()
        with self._lock:
            counters = {_render_key(c.name, c.labels): c.value
                        for c in self._counters.values()}
            gauges = {_render_key(g.name, g.labels): g.value
                      for g in self._gauges.values()}
            histograms = {_render_key(h.name, h.labels): h.to_snapshot()
                          for h in self._histograms.values()}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}

    def render_prometheus(self) -> str:
        """Prometheus text exposition (enough of it for scraping)."""
        snap = self.snapshot()
        lines: list[str] = []
        for key in sorted(snap["counters"]):
            lines.append(f"{key} {snap['counters'][key]}")
        for key in sorted(snap["gauges"]):
            lines.append(f"{key} {snap['gauges'][key]}")
        for key in sorted(snap["histograms"]):
            hist = snap["histograms"][key]
            name, _, labels = key.partition("{")
            inner = labels[:-1] if labels else ""
            for bound, cumulative in hist["buckets"]:
                sep = "," if inner else ""
                lines.append(
                    f'{name}_bucket{{{inner}{sep}le="{bound}"}} '
                    f"{cumulative}"
                )
            sep = "," if inner else ""
            lines.append(f'{name}_bucket{{{inner}{sep}le="+Inf"}} '
                         f"{hist['count']}")
            suffix = f"{{{inner}}}" if inner else ""
            lines.append(f"{name}_sum{suffix} {hist['sum']}")
            lines.append(f"{name}_count{suffix} {hist['count']}")
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path, extra: Mapping[str, Any] | None = None
                    ) -> dict:
        """Append one JSON line (timestamped snapshot) to ``path``."""
        entry = {"ts": time.time(), **(dict(extra) if extra else {}),
                 **self.snapshot()}
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    # ------------------------------------------------------------------
    # Cross-process merge (exec workers ship counter deltas)
    # ------------------------------------------------------------------
    def drain_counter_deltas(self) -> list[list]:
        """Counter increments since the previous drain, as canonical-
        encodable ``[name, {label: value}, delta]`` rows.  The worker
        side of the merge: called per reply so the parent sees deltas,
        never cumulative double-counts."""
        out: list[list] = []
        with self._lock:
            for key, counter in self._counters.items():
                prev = self._drained.get(key, 0)
                delta = counter.value - prev
                if delta:
                    self._drained[key] = counter.value
                    out.append([counter.name, dict(counter.labels), delta])
        return out

    def merge_counter_deltas(self, deltas: Iterable[Iterable]) -> None:
        """Apply drained deltas from another registry (another process)."""
        for name, labels, delta in deltas:
            self.counter(str(name), **dict(labels)).inc(int(delta))

    # ------------------------------------------------------------------
    # Test/bench hygiene
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Zero every instrument (handles stay valid); keep collectors."""
        with self._lock:
            for counter in self._counters.values():
                counter.value = 0
            for gauge in self._gauges.values():
                gauge.value = 0.0
            for hist in self._histograms.values():
                hist.counts = [0] * (len(hist.bounds) + 1)
                hist.sum = 0.0
                hist.count = 0
            self._drained.clear()
