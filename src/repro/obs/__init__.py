"""Unified runtime telemetry: metrics registry, span tracing, ops surfaces.

Design note (ISSUE 7)
=====================

Until this package existed, the runtime's self-knowledge was scattered:
per-shard admission/seal timings lived in the sharded facade, the ingest
pipeline kept its own queue counters, the signature LRUs kept module
globals, ``SimNet`` kept a stats dataclass, and nothing correlated one
transaction's journey from submit → queue → seal → worker → fsync →
beacon anchor.  ``repro.obs`` is the one sensory system every layer
reports into, built around three rules:

**1. The hot path pays (almost) nothing.**  Subsystems keep their
existing cheap plain-int counters (``_ShardQueue.total_enqueued`` and
friends cost one integer add); the registry *pulls* them through
registered collector callbacks at ``snapshot()`` time instead of pushing
a registry update per event.  Direct instrument updates (histogram
observations, counter bumps) appear only on per-batch / per-round /
per-fsync paths where one dict probe is noise.  Tracing is sampled:
an unsampled submit pays one countdown decrement, and every span
started under an unsampled (or absent) trace context is the no-op
singleton — ``benchmarks/bench_obs.py`` asserts the instrumented hot
submit path stays within 5% of the uninstrumented one.

**2. One process, one default registry — but workers merge in.**
:func:`repro.obs.runtime.telemetry` returns the process-default
:class:`~repro.obs.runtime.Telemetry` (registry + tracer).  Exec worker
processes run their own default (reset after fork); their span records
and counter deltas ride the existing canonical reply frames of
``exec/worker.py`` and are merged into the parent's registry and tracer
by ``ShardedChain`` as each shard's result lands, so a cross-process
seal still produces one coherent trace tree and one counter space.
Trace context travels the other way inside the job frame (``trace_id``,
parent span id, sampled flag) — the same canonical codec that carries
the block frames carries the context, no side channel.

**3. Accessors stay; their counters move.**  The signature-LRU
``cache_stats()`` and ``SimNet``'s ``NetStats`` keep their exact shapes
(regression-tested) but the counters now live in (or are mirrored into)
the default registry, labeled, so one ``snapshot()`` — or one
``ops/metrics`` request over the network — sees everything: queue
depths and watermarks, admission/seal/fsync/verify latency histograms,
QueueFull/deferral/quarantine counters, per-topic drop/dup/reorder,
sync chunk/tail progress, tiering reclaim, worker respawns.

Ops surfaces
------------

* ``MetricsRegistry.snapshot()`` — point-in-time dict of every counter,
  gauge, and histogram (collectors refreshed first);
* ``MetricsRegistry.render_prometheus()`` — Prometheus-style text
  exposition;
* ``MetricsRegistry.write_jsonl(path)`` — append one JSON line per
  call, so bench runs and long-lived nodes double as fixtures
  (``benchmarks/_harness.py`` embeds a snapshot in every
  ``BENCH_*.json`` under ``"telemetry"``);
* ``ChainNode.serve_ops(...)`` / ``request_ops(peer)`` — the
  ``ops/metrics`` gateway topic: any node (replicas included) answers a
  remote snapshot request over ``SimNet``;
* ``ShardedChain.health_report()`` — the operator rollup: per-shard
  backlog, heights, last-round seal timings with slowest-shard
  attribution, and the round-pace EWMA.  This is the exact signal set
  the ROADMAP's resharding/autoscaler item consumes.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .runtime import Telemetry, reset_default_telemetry, telemetry
from .trace import SpanRecord, TraceContext, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "Telemetry",
    "reset_default_telemetry",
    "telemetry",
]
