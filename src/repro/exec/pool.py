"""Parent-side process pool: worker lifecycle, dispatch, fault handling.

One pipe per worker, **one job in flight per worker** — a second large
job queued behind an unread large response can deadlock both pipe
buffers, so the pool never sends to a busy worker; queued jobs drain as
responses arrive (:func:`multiprocessing.connection.wait`).  Shard
affinity is the caller's concern: :class:`~repro.sharding.shardchain.ShardedChain`
maps ``shard_id % n_workers`` so a shard's state replica stays warm in
one worker.

Fault model: a worker that dies (killed, OOM, crashed) surfaces as a
broken pipe on send or EOF on receive.  The in-flight job yields
``None`` — the caller falls back to in-process execution — and the
worker slot respawns lazily on next use with a bumped *epoch*, so
callers tracking replica state per ``(worker, epoch)`` know the fresh
process holds nothing.

Workers are daemonic children started via ``fork`` where available
(inherits the key registry and contract classes for free) and ``spawn``
otherwise (the ``runtime_factory`` must then be picklable, i.e.
module-level).
"""

from __future__ import annotations

import hashlib
import hmac
import multiprocessing as mp
from collections import deque
from multiprocessing import connection as mp_connection
from typing import Iterator, Sequence

from ..errors import ShardError
from ..persist.codec import canonical_decode
from ..serialization import canonical_encode
from .worker import worker_main


class _Worker:
    __slots__ = ("process", "conn", "epoch")


class ProcessExecPool:
    """A fixed-width pool of exec worker processes."""

    def __init__(self, n_workers: int, runtime_factory=None,
                 start_method: str | None = None) -> None:
        if n_workers < 1:
            raise ShardError("process pool needs at least one worker")
        methods = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        elif start_method not in methods:
            raise ShardError(
                f"start method {start_method!r} unavailable "
                f"(have {methods})"
            )
        self.start_method = start_method
        self.n_workers = n_workers
        self._ctx = mp.get_context(start_method)
        self._runtime_factory = runtime_factory
        self._workers: dict[int, _Worker] = {}
        self._epochs: dict[int, int] = {}
        self._closed = False
        self.respawns = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def epoch(self, widx: int) -> int:
        """Spawn generation of worker slot ``widx`` (0 = never spawned).
        Bumps on every respawn: state shipped to epoch N is gone in N+1."""
        return self._epochs.get(widx, 0)

    def _ensure_worker(self, widx: int) -> _Worker:
        if self._closed:
            raise ShardError("process pool is closed")
        if not 0 <= widx < self.n_workers:
            raise ShardError(f"no worker slot {widx}")
        worker = self._workers.get(widx)
        if worker is not None:
            return worker
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, self._runtime_factory),
            daemon=True,
            name=f"exec-worker-{widx}",
        )
        process.start()
        child_conn.close()
        worker = _Worker()
        worker.process = process
        worker.conn = parent_conn
        self._epochs[widx] = self._epochs.get(widx, 0) + 1
        worker.epoch = self._epochs[widx]
        if worker.epoch > 1:
            self.respawns += 1
            from ..obs.runtime import telemetry

            telemetry().registry.counter(
                "exec_worker_respawns_total"
            ).inc()
        self._workers[widx] = worker
        return worker

    def _mark_dead(self, widx: int) -> None:
        worker = self._workers.pop(widx, None)
        if worker is None:
            return
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)

    def kill_worker(self, widx: int) -> None:
        """Fault-injection hook: SIGKILL the worker *without* telling the
        pool — the death is discovered mid-dispatch, exactly like a real
        crash, driving the caller's in-process fallback path."""
        worker = self._workers.get(widx)
        if worker is None:
            worker = self._ensure_worker(widx)
        worker.process.kill()
        worker.process.join(timeout=5)

    def shutdown(self) -> None:
        """Orderly teardown; safe to call twice."""
        self._closed = True
        for widx in list(self._workers):
            worker = self._workers.pop(widx)
            try:
                worker.conn.send_bytes(
                    canonical_encode({"kind": "shutdown"})
                )
            except (BrokenPipeError, OSError):
                pass
            try:
                worker.conn.close()
            except OSError:
                pass
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck child
                worker.process.terminate()
                worker.process.join(timeout=5)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run(
        self, jobs: Sequence[tuple[int, bytes]]
    ) -> Iterator[tuple[int, bytes | None]]:
        """Run ``(worker_index, payload)`` jobs; yield ``(job_index,
        response | None)`` **as responses arrive**, not in submit order —
        the caller commits early finishers while slower workers still
        execute, which is where the parallel win over serial sealing
        comes from.  ``None`` means the worker died on that job."""
        queues: dict[int, deque[tuple[int, bytes]]] = {}
        for index, (widx, payload) in enumerate(jobs):
            queues.setdefault(widx, deque()).append((index, payload))
        inflight: dict[object, tuple[int, int]] = {}
        failed: list[tuple[int, None]] = []

        def dispatch(widx: int) -> None:
            queue = queues.get(widx)
            while queue:
                try:
                    worker = self._ensure_worker(widx)
                except ShardError:
                    index, _ = queue.popleft()
                    failed.append((index, None))
                    continue
                index, payload = queue.popleft()
                try:
                    worker.conn.send_bytes(payload)
                except (BrokenPipeError, OSError):
                    self._mark_dead(widx)
                    failed.append((index, None))
                    continue
                inflight[worker.conn] = (widx, index)
                return

        for widx in list(queues):
            dispatch(widx)
        while inflight or failed:
            while failed:
                yield failed.pop()
            if not inflight:
                break
            for conn in mp_connection.wait(list(inflight)):
                widx, index = inflight.pop(conn)
                try:
                    response = conn.recv_bytes()
                except (EOFError, OSError):
                    self._mark_dead(widx)
                    response = None
                yield (index, response)
                dispatch(widx)

    def call(self, widx: int, payload: bytes) -> bytes | None:
        """One job, one worker, blocking."""
        for _, response in self.run([(widx, payload)]):
            return response
        return None  # pragma: no cover - run always yields once

    # ------------------------------------------------------------------
    # Batched signature verification (the ingest pipeline's offload)
    # ------------------------------------------------------------------
    def verify_batch(
        self, items: Sequence[tuple[bytes, bytes, bytes]]
    ) -> list[bool]:
        """Verify ``(digest, key_material, tag)`` triples across the
        pool; chunked contiguously over the workers.  A dead worker's
        chunk is re-verified inline (same HMAC), so the result is always
        complete and positionally aligned with ``items``."""
        if not items:
            return []
        chunk_size = -(-len(items) // self.n_workers)  # ceil division
        chunks = [items[i:i + chunk_size]
                  for i in range(0, len(items), chunk_size)]
        jobs = [
            (widx, canonical_encode({
                "kind": "verify",
                "items": [[digest, key, tag]
                          for digest, key, tag in chunk],
            }))
            for widx, chunk in enumerate(chunks)
        ]
        verdicts_by_chunk: dict[int, list | None] = {}
        for index, response in self.run(jobs):
            if response is None:
                verdicts_by_chunk[index] = None
                continue
            reply = canonical_decode(response)
            verdicts_by_chunk[index] = (reply.get("verdicts")
                                        if reply.get("status") == "ok"
                                        else None)
        out: list[bool] = []
        for index, chunk in enumerate(chunks):
            verdicts = verdicts_by_chunk.get(index)
            if verdicts is None or len(verdicts) != len(chunk):
                verdicts = [
                    hmac.compare_digest(
                        hmac.new(key, digest, hashlib.sha256).digest(), tag
                    )
                    for digest, key, tag in chunk
                ]
            out.extend(bool(v) for v in verdicts)
        return out
