"""Process-pool execution engine: beat the GIL on CPU-bound sealing.

Thread-pool sealing (PR 4) scales only because fsync and sqlite release
the GIL — Python-side validate/execute/verify work still serializes.
This package moves that work into worker *processes*:

* :class:`~repro.exec.pool.ProcessExecPool` — worker lifecycle, one-job-
  in-flight dispatch, death detection + epoch bookkeeping;
* :mod:`~repro.exec.worker` — the child-side loop: per-chain state
  replicas, block execution, batched signature verification.

Design note: the codec **is** the IPC format
--------------------------------------------

Jobs and results cross the pipe as canonical-codec payloads
(:mod:`repro.persist.codec` — the exact bytes the durable segment log
stores).  That buys three things:

1. **No second serialization format.**  Block frames encoded for the
   wire are byte-identical to the frames the durable store would write,
   so the parent encodes each block once and reuses the bytes for both
   the worker job and the store commit
   (:meth:`~repro.persist.durable.DurableBlockStore.install_raw`) —
   and receipt bodies returned by workers are committed verbatim.
2. **The codec's round-trip discipline is already tested.**  Pickle
   would silently ship live objects (open handles, locks, the whole
   object graph); the canonical codec is closed over encodable values
   and *raises* on anything else — exactly the property an IPC boundary
   wants.  What persistence drops (non-encodable receipt outputs), the
   wire drops identically, so process-mode receipts equal a durable
   round-trip of serial-mode receipts.
3. **Validation for free.**  ``decode_block`` re-checks the merkle root
   and expected hash, so a corrupted or truncated IPC payload is
   detected at the boundary, same as a corrupted log frame.

Why beacon commitments stay byte-identical
------------------------------------------

A beacon leaf commits ``(shard, height, block_hash[, state_root])``:

* **Block hashes are execution-independent** — a block hash covers the
  header (merkle root over transactions, prev hash, height, ...), never
  receipts or post-state.  The parent builds the blocks; workers only
  execute them; the hashes are fixed before the job is sent.
* **State roots are content-determined and order-independent** —
  :meth:`~repro.chain.state.StateStore.state_root` folds per-entry
  digests, so a parent that *applies the worker's net per-block deltas*
  holds entry-for-entry the same store as serial execution and produces
  the same root.  The parent recomputes its own root after the delta
  replay and refuses to commit on mismatch
  (:meth:`~repro.chain.blockchain.Blockchain.apply_executed_blocks`),
  so a diverging worker can never anchor state the parent did not
  reproduce.
* **Merge order is shard order** — exactly as the thread pool does:
  results are committed as workers finish, but round entries are
  collected per shard and concatenated in shard order before the beacon
  anchor, so the round tree is independent of completion order.

Fallback: a worker that dies mid-round (or answers ``need_state`` /
``error``) costs nothing but time — the popped blocks are re-executed
in-process through the exact serial path, and the shard's replica is
re-imaged on the next round.  Replica staleness is detected by
``(worker epoch, base height, base state root)`` comparison, never
assumed.
"""

from .pool import ProcessExecPool
from .worker import in_worker, worker_main

__all__ = ["ProcessExecPool", "in_worker", "worker_main"]
