"""Exec worker: the child-process half of the process-pool engine.

A worker is a long-lived child process holding, per shard chain, a
*state replica*: a plain :class:`~repro.chain.state.StateStore` plus a
contract runtime built from the pool's ``runtime_factory``.  It speaks a
tiny request/response protocol over a pipe — every message in both
directions is one canonical-codec payload (see the package docstring for
why the codec doubles as the IPC format):

* ``exec`` — decode a group of block frames, validate and execute them
  against the replica, and return per-block encoded receipts + net state
  deltas + the post-group state root.  The parent applies the deltas;
  the worker never touches durable storage.
* ``verify`` — batched signature verification: ``(digest, key, tag)``
  triples in, verdicts out.  Pure HMAC recompute, no registry needed.
* ``ping`` / ``shutdown`` — liveness and orderly teardown.

Replica consistency is checked per job: the parent sends the base height
and state root it executed from, and the worker refuses (``need_state``)
unless its replica matches — the parent then either ships a full state
image with the retry or falls back to in-process execution.  Any
execution error drops the replica (it may hold a half-applied group), so
a later job must re-sync before trusting it.

Workers must open nothing durable.  ``in_worker()`` reports whether the
current process is an exec worker; :class:`~repro.persist.durable.DurableStorage`
refuses to construct when it returns true, which is the guard behind the
"only the parent commits" rule.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from ..chain.blockchain import default_executor
from ..chain.state import StateStore
from ..obs.runtime import reset_default_telemetry, telemetry
from ..obs.trace import TraceContext
from ..persist.codec import (
    canonical_decode,
    decode_block,
    encode_receipt,
)
from ..serialization import canonical_encode

# Process-local flag: set (only) inside worker_main, inherited by nothing.
_IN_WORKER = False


def in_worker() -> bool:
    """Is the current process an exec worker?  Durable-storage guards
    key off this: workers execute, parents commit."""
    return _IN_WORKER


class _ChainShim:
    """The minimal chain surface :func:`default_executor` dereferences.

    Workers deliberately do not build a full :class:`Blockchain` — the
    chain owns a block store, and a worker must never hold one.
    """

    __slots__ = ("contract_runtime",)

    def __init__(self, contract_runtime) -> None:
        self.contract_runtime = contract_runtime


class _ShardReplica:
    """One chain's executable state inside the worker."""

    __slots__ = ("height", "state", "shim")

    def __init__(self, contract_runtime) -> None:
        self.height = 0
        self.state = StateStore()
        self.shim = _ChainShim(contract_runtime)


def _reset_forked_caches() -> None:
    """Re-initialize lock-guarded verify caches after a fork.

    A ``fork`` while a parent thread holds one of the cache locks would
    hand the child a lock that is never released.  Workers are
    single-threaded, but the locks are still taken on every cache probe
    — replace them (and drop the inherited, possibly mid-mutation cache
    contents) before serving any job.
    """
    from ..chain import transaction as tx_mod
    from ..crypto import signatures as sig_mod

    sig_mod._VERIFY_CACHE_LOCK = threading.Lock()
    sig_mod._VERIFY_CACHE.clear()
    tx_mod._VERIFIED_SIGNATURES_LOCK = threading.Lock()
    tx_mod._VERIFIED_SIGNATURES.clear()
    # Fresh telemetry too: the fork copied the parent's registry mid-
    # flight; worker counters must start at zero so the deltas shipped
    # back with each reply (see _telemetry_payload) are the worker's own.
    reset_default_telemetry()


def _telemetry_payload() -> dict:
    """This worker's telemetry delta since the last reply: finished
    span rows plus counter increments, both canonical-encodable.  The
    parent merges them (``ShardedChain._merge_worker_telemetry``)."""
    tel = telemetry()
    return {"spans": tel.tracer.span_rows(drain=True),
            "counters": tel.registry.drain_counter_deltas()}


def _handle_verify(job: dict) -> dict:
    from ..crypto.signatures import verify_digest

    verdicts = [verify_digest(digest, key, tag)
                for digest, key, tag in job["items"]]
    return {"status": "ok", "verdicts": verdicts}


def _handle_probe_storage(job: dict) -> dict:
    """Test surface: prove the durable-storage fork guard holds inside a
    *real* exec worker (not just a simulated flag flip)."""
    from ..persist.durable import DurableStorage

    try:
        DurableStorage(job["directory"])
    except Exception as exc:  # noqa: BLE001 - the guard *should* raise
        return {"status": "ok",
                "raised": f"{type(exc).__name__}: {exc}"}
    return {"status": "ok", "raised": ""}


def _handle_exec(job: dict, replicas: dict[str, _ShardReplica],
                 runtime_factory) -> dict:
    chain_id = job["chain"]
    base_height = int(job["base_height"])
    base_root = job["base_root"]
    if job.get("keys"):
        # Key material for the signers in this group: deterministic-sim
        # keys registered in the parent after the pool forked would
        # otherwise be unknown here and fail verification spuriously.
        from ..crypto import signatures as sig_mod

        for pub_hex, secret in job["keys"].items():
            sig_mod._KEY_REGISTRY.setdefault(bytes.fromhex(pub_hex), secret)
    if job.get("state") is not None:
        replica = _ShardReplica(
            runtime_factory() if runtime_factory is not None else None
        )
        replica.state.load_entries(
            [(entry[0], entry[1], entry[2]) for entry in job["state"]]
        )
        replica.height = base_height
        replicas[chain_id] = replica
    else:
        replica = replicas.get(chain_id)
    if (replica is None or replica.height != base_height
            or replica.state.state_root() != base_root):
        replicas.pop(chain_id, None)
        return {
            "status": "need_state",
            "have_height": -1 if replica is None else replica.height,
        }
    require_signature = bool(job["require_signatures"])
    receipts_out: list[list[bytes]] = []
    deltas_out: list[list[list[Any]]] = []
    tel = telemetry()
    tracer = tel.tracer
    trace_ctx = TraceContext.from_wire(job.get("trace"))
    txs_executed = 0
    try:
        # The worker-side half of the round trace: parented on the
        # context shipped in the job frame, so the merged span tree
        # chains submit → worker exec → parent commit.
        with tracer.span("exec.apply_blocks", parent=trace_ctx) as span:
            span.set_attr("chain", chain_id)
            span.set_attr("blocks", len(job["blocks"]))
            for frame in job["blocks"]:
                block = decode_block(frame)
                block.verify_structure()
                for tx in block.transactions:
                    tx.validate(require_signature=require_signature)
                snap = replica.state.snapshot()
                bodies: list[bytes] = []
                try:
                    for tx in block.transactions:
                        receipt = default_executor(tx, replica.state,
                                                   replica.shim)
                        receipt.block_height = block.height
                        bodies.append(encode_receipt(receipt))
                except BaseException:
                    replica.state.rollback(snap)
                    raise
                deltas_out.append(
                    [[ns, key, present, value]
                     for ns, key, present, value
                     in replica.state.drain_snapshot_delta(snap)]
                )
                receipts_out.append(bodies)
                replica.height = block.height
                txs_executed += len(block.transactions)
    except BaseException as exc:  # noqa: BLE001 - reported, not fatal
        # Earlier blocks of the group already mutated the replica; drop
        # it so the next job re-syncs rather than executing on a state
        # the parent never saw.
        replicas.pop(chain_id, None)
        return {"status": "error",
                "error": f"{type(exc).__name__}: {exc}"}
    finally:
        registry = tel.registry
        registry.counter("exec_worker_blocks_total").inc(len(receipts_out))
        registry.counter("exec_worker_txs_total").inc(txs_executed)
    return {
        "status": "ok",
        "receipts": receipts_out,
        "deltas": deltas_out,
        "state_root": replica.state.state_root(),
        "height": replica.height,
    }


def worker_main(conn, runtime_factory=None) -> None:
    """Serve jobs on ``conn`` until EOF or a ``shutdown`` message."""
    global _IN_WORKER
    _IN_WORKER = True
    _reset_forked_caches()
    replicas: dict[str, _ShardReplica] = {}
    while True:
        try:
            message = conn.recv_bytes()
        except (EOFError, OSError):
            break
        try:
            job = canonical_decode(message)
            kind = job.get("kind")
            if kind == "shutdown":
                try:
                    conn.send_bytes(canonical_encode({"status": "ok"}))
                except (BrokenPipeError, OSError):
                    pass
                break
            if kind == "ping":
                response = {"status": "ok", "pid": os.getpid()}
            elif kind == "exec":
                response = _handle_exec(job, replicas, runtime_factory)
                response["telemetry"] = _telemetry_payload()
            elif kind == "verify":
                response = _handle_verify(job)
            elif kind == "probe_storage":
                response = _handle_probe_storage(job)
            else:
                response = {"status": "error",
                            "error": f"unknown job kind {kind!r}"}
        except BaseException as exc:  # noqa: BLE001 - never kill the loop
            response = {"status": "error",
                        "error": f"{type(exc).__name__}: {exc}"}
        try:
            conn.send_bytes(canonical_encode(response))
        except (BrokenPipeError, OSError):
            break
    conn.close()
