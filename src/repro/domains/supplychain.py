"""Supply chain provenance (§4.2).

Implements the mechanisms the surveyed supply-chain systems contribute:

* **legitimate product registration** — only authorized manufacturers may
  register products (the "illegitimate product registration" challenge of
  Table 2);
* **confirmation-based ownership transfer** (Cui et al. [23]) — transfer
  is a two-phase initiate/confirm handshake, so neither theft (unilateral
  take) nor mis-shipment (unilateral give) silently changes custody;
* **PUF-backed device authentication** (Islam et al. [38]) — devices
  answer challenges through a physically unclonable function; a
  counterfeit clone fails authentication;
* **cold-chain monitoring** (Kumar et al. [42], pharma §4.2) — sensor
  readings are recorded and excursions outside the permitted band are
  flagged and provable;
* **travel trace** — Table 1's field, accumulated from custody transfers.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..clock import SimClock
from ..errors import CustodyError, DomainError, UnknownEntity
from ..provenance.capture import CaptureSink
from ..provenance.records import make_record


@dataclass(frozen=True)
class PUFDevice:
    """A device with a physically unclonable function.

    The PUF is modeled as a keyed PRF over challenges; the key (the
    silicon fingerprint) never leaves the device object.  Enrollment
    stores challenge-response pairs; authentication replays a stored
    challenge and compares responses.
    """

    device_id: str
    _fingerprint: bytes

    @classmethod
    def manufacture(cls, device_id: str, seed: int = 0) -> "PUFDevice":
        fingerprint = hashlib.sha256(
            f"puf:{device_id}:{seed}".encode()
        ).digest()
        return cls(device_id=device_id, _fingerprint=fingerprint)

    def respond(self, challenge: bytes) -> bytes:
        """The device's unclonable response to ``challenge``."""
        return hashlib.sha256(
            b"puf-response:" + self._fingerprint + challenge
        ).digest()


@dataclass
class CRPStore:
    """Enrolled challenge-response pairs held by the verifier."""

    pairs: dict[str, list[tuple[bytes, bytes]]] = field(default_factory=dict)

    def enroll(self, device: PUFDevice, challenges: list[bytes]) -> None:
        self.pairs[device.device_id] = [
            (c, device.respond(c)) for c in challenges
        ]

    def authenticate(self, device: PUFDevice) -> bool:
        """Replay one enrolled challenge; a clone fails."""
        enrolled = self.pairs.get(device.device_id)
        if not enrolled:
            return False
        challenge, expected = enrolled[0]
        return device.respond(challenge) == expected


@dataclass
class Product:
    """A tracked product (Table 1's supply-chain record fields)."""

    product_id: str
    batch_number: str
    product_type: str
    manufacturer_id: str
    manufacturing_date: int
    expiration_date: int
    owner: str = ""
    travel_trace: list[str] = field(default_factory=list)
    device: PUFDevice | None = None
    pending_transfer: str | None = None    # proposed new owner


@dataclass(frozen=True)
class TemperatureReading:
    product_id: str
    facility: str
    celsius_tenths: int       # 10ths of a degree, integer for determinism
    timestamp: int


class ColdChainMonitor:
    """Records temperature readings and detects excursions."""

    def __init__(self, lo_tenths: int, hi_tenths: int) -> None:
        if lo_tenths > hi_tenths:
            raise DomainError("empty temperature band")
        self.lo = lo_tenths
        self.hi = hi_tenths
        self.readings: list[TemperatureReading] = []
        self.violations: list[TemperatureReading] = []

    def record(self, reading: TemperatureReading) -> bool:
        """Store a reading; returns True when it is within band."""
        self.readings.append(reading)
        ok = self.lo <= reading.celsius_tenths <= self.hi
        if not ok:
            self.violations.append(reading)
        return ok

    def excursions_for(self, product_id: str) -> list[TemperatureReading]:
        return [r for r in self.violations if r.product_id == product_id]


class SupplyChainRegistry:
    """The shared product registry all stakeholders write through."""

    def __init__(
        self,
        sink: CaptureSink,
        authorized_manufacturers: set[str],
        clock: SimClock | None = None,
        cold_chain: ColdChainMonitor | None = None,
    ) -> None:
        self.sink = sink
        self.clock = clock or SimClock()
        self.authorized = set(authorized_manufacturers)
        self.cold_chain = cold_chain
        self.products: dict[str, Product] = {}
        self.crp_store = CRPStore()
        self._record_counter = 0
        self.rejected_registrations = 0
        self.rejected_transfers = 0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def register_product(
        self,
        manufacturer_id: str,
        product_id: str,
        batch_number: str,
        product_type: str,
        expiration_date: int,
        with_puf: bool = False,
        puf_seed: int = 0,
    ) -> Product:
        """Register a product; only authorized manufacturers succeed."""
        if manufacturer_id not in self.authorized:
            self.rejected_registrations += 1
            raise CustodyError(
                f"{manufacturer_id!r} is not an authorized manufacturer; "
                "registration rejected"
            )
        if product_id in self.products:
            self.rejected_registrations += 1
            raise CustodyError(f"product {product_id!r} already registered")
        device = None
        if with_puf:
            device = PUFDevice.manufacture(product_id, seed=puf_seed)
            challenges = [
                hashlib.sha256(f"ch:{product_id}:{i}".encode()).digest()
                for i in range(4)
            ]
            self.crp_store.enroll(device, challenges)
        product = Product(
            product_id=product_id,
            batch_number=batch_number,
            product_type=product_type,
            manufacturer_id=manufacturer_id,
            manufacturing_date=self.clock.now(),
            expiration_date=expiration_date,
            owner=manufacturer_id,
            travel_trace=[manufacturer_id],
            device=device,
        )
        self.products[product_id] = product
        self._emit(product, actor=manufacturer_id, operation="register")
        return product

    # ------------------------------------------------------------------
    # Confirmation-based ownership transfer (Cui et al.)
    # ------------------------------------------------------------------
    def initiate_transfer(self, product_id: str, current_owner: str,
                          new_owner: str) -> None:
        """Phase 1: the current owner proposes a transfer."""
        product = self._product(product_id)
        if product.owner != current_owner:
            self.rejected_transfers += 1
            raise CustodyError(
                f"{current_owner!r} does not own {product_id!r} "
                f"(owner is {product.owner!r})"
            )
        if product.pending_transfer is not None:
            raise CustodyError(
                f"transfer of {product_id!r} already pending to "
                f"{product.pending_transfer!r}"
            )
        product.pending_transfer = new_owner
        self._emit(product, actor=current_owner,
                   operation=f"initiate_transfer:{new_owner}")

    def confirm_transfer(self, product_id: str, new_owner: str) -> Product:
        """Phase 2: the receiver confirms; custody actually changes."""
        product = self._product(product_id)
        if product.pending_transfer != new_owner:
            self.rejected_transfers += 1
            raise CustodyError(
                f"no pending transfer of {product_id!r} to {new_owner!r}"
            )
        product.owner = new_owner
        product.pending_transfer = None
        product.travel_trace.append(new_owner)
        self._emit(product, actor=new_owner, operation="confirm_transfer")
        return product

    def cancel_transfer(self, product_id: str, current_owner: str) -> None:
        product = self._product(product_id)
        if product.owner != current_owner:
            raise CustodyError(f"{current_owner!r} does not own {product_id!r}")
        if product.pending_transfer is None:
            raise CustodyError(f"no pending transfer on {product_id!r}")
        product.pending_transfer = None
        self._emit(product, actor=current_owner, operation="cancel_transfer")

    # ------------------------------------------------------------------
    # Authentication & cold chain
    # ------------------------------------------------------------------
    def authenticate_device(self, product_id: str,
                            presented: PUFDevice) -> bool:
        """Verify a presented device against enrolled CRPs.

        A counterfeit (different fingerprint, same claimed id) fails.
        """
        product = self._product(product_id)
        if product.device is None:
            raise DomainError(f"{product_id!r} has no PUF device")
        ok = (presented.device_id == product_id
              and self.crp_store.authenticate(presented))
        self._emit(product, actor="verifier",
                   operation=f"authenticate:{'pass' if ok else 'fail'}")
        return ok

    def record_temperature(self, product_id: str, facility: str,
                           celsius_tenths: int) -> bool:
        if self.cold_chain is None:
            raise DomainError("no cold-chain monitor configured")
        product = self._product(product_id)
        reading = TemperatureReading(
            product_id=product_id,
            facility=facility,
            celsius_tenths=celsius_tenths,
            timestamp=self.clock.now(),
        )
        ok = self.cold_chain.record(reading)
        self._emit(product, actor=facility,
                   operation=f"temperature:{'ok' if ok else 'excursion'}")
        return ok

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def trace(self, product_id: str) -> list[str]:
        """The product's travel trace (Table 1 field)."""
        return list(self._product(product_id).travel_trace)

    def owned_by(self, owner: str) -> list[str]:
        return sorted(p.product_id for p in self.products.values()
                      if p.owner == owner)

    # ------------------------------------------------------------------
    def _product(self, product_id: str) -> Product:
        product = self.products.get(product_id)
        if product is None:
            raise UnknownEntity(f"no product {product_id!r}")
        return product

    def _emit(self, product: Product, actor: str, operation: str) -> dict:
        record = make_record(
            "supply_chain",
            record_id=f"sup-{self._record_counter:08d}",
            subject=product.product_id,
            actor=actor,
            operation=operation,
            timestamp=self.clock.now(),
            product_id=product.product_id,
            batch_number=product.batch_number,
            manufacturing_date=product.manufacturing_date,
            expiration_date=product.expiration_date,
            travel_trace=list(product.travel_trace),
            product_type=product.product_type,
            manufacturer_id=product.manufacturer_id,
            access_url=f"qr://{product.product_id}",
        )
        self._record_counter += 1
        self.sink.deliver(record)
        return record
