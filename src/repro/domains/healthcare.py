"""Healthcare EHR provenance (§4.3).

Provenance here "is the lifecycle of the electronic health record".  The
surveyed designs converge on a few requirements this module implements:

* **patient-centric consent** — patients grant/revoke provider access
  (HealthBlock's "granting patients control over access");
* **mandatory auditing** — every access attempt, allowed or denied, is
  recorded (HIPAA's accounting-of-disclosures obligation, Table 2);
* **break-glass emergency access** — permitted without consent but
  flagged and separately reportable (HealthBlock's "emergency access
  needs");
* **pseudonymized records** — provenance records carry patient
  pseudonyms, not identities (the anonymity/unlinkability demand of
  §4.3), with re-identification held by the
  :class:`~repro.privacy.anonymity.PseudonymManager`;
* **encrypted payloads** — EHR bodies are ABE-encrypted so only
  attribute-qualified staff can read them (Niu et al. [59]).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..access.audit import AccessAuditLog
from ..clock import SimClock
from ..errors import AccessDenied, ConsentError, UnknownEntity
from ..privacy.anonymity import PseudonymManager
from ..privacy.encryption import ABEAuthority, ABECiphertext
from ..provenance.capture import CaptureSink
from ..provenance.records import make_record


@dataclass
class EHRRecord:
    """One electronic health record entry."""

    ehr_id: str
    patient_id: str             # real identity; never leaves this object
    provider_id: str
    record_types: list[str]
    ciphertext: ABECiphertext
    created_at: int


@dataclass
class Consent:
    patient_id: str
    provider_id: str
    granted_at: int
    revoked_at: int | None = None

    @property
    def active(self) -> bool:
        return self.revoked_at is None


class ConsentRegistry:
    """Patient-controlled provider authorizations."""

    def __init__(self, clock: SimClock) -> None:
        self.clock = clock
        self._consents: dict[tuple[str, str], Consent] = {}

    def grant(self, patient_id: str, provider_id: str) -> Consent:
        key = (patient_id, provider_id)
        existing = self._consents.get(key)
        if existing is not None and existing.active:
            raise ConsentError(
                f"{provider_id} already has consent from {patient_id}"
            )
        consent = Consent(patient_id=patient_id, provider_id=provider_id,
                          granted_at=self.clock.now())
        self._consents[key] = consent
        return consent

    def revoke(self, patient_id: str, provider_id: str) -> None:
        consent = self._consents.get((patient_id, provider_id))
        if consent is None or not consent.active:
            raise ConsentError(
                f"no active consent from {patient_id} to {provider_id}"
            )
        consent.revoked_at = self.clock.now()

    def has_consent(self, patient_id: str, provider_id: str) -> bool:
        consent = self._consents.get((patient_id, provider_id))
        return consent is not None and consent.active


class EHRSystem:
    """The blockchain-backed EHR platform of §4.3, in miniature."""

    def __init__(
        self,
        sink: CaptureSink,
        clock: SimClock | None = None,
        regulation: str = "HIPAA",
    ) -> None:
        self.sink = sink
        self.clock = clock or SimClock()
        self.regulation = regulation
        self.consents = ConsentRegistry(self.clock)
        self.audit = AccessAuditLog(self.clock)
        self.pseudonyms = PseudonymManager(master_seed=b"ehr-pseudonyms")
        self.abe = ABEAuthority(master_seed=b"ehr-abe")
        self.records: dict[str, EHRRecord] = {}
        self._record_counter = 0
        self.emergency_accesses: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------
    # Staff & keys
    # ------------------------------------------------------------------
    def credential_staff(self, provider_id: str,
                         attributes: list[str]) -> None:
        """Issue ABE attributes (e.g. ["doctor", "cardiology"])."""
        self.abe.issue_key(provider_id, attributes)

    # ------------------------------------------------------------------
    # Writing records
    # ------------------------------------------------------------------
    def add_record(
        self,
        patient_id: str,
        provider_id: str,
        record_types: list[str],
        body: bytes,
        required_attributes: list[str],
    ) -> EHRRecord:
        """A provider writes an EHR entry; consent is required."""
        allowed = self.consents.has_consent(patient_id, provider_id)
        self.audit.record(provider_id, f"ehr:{patient_id}", "write",
                          allowed, mechanism="consent")
        if not allowed:
            raise ConsentError(
                f"{provider_id} lacks consent to write for {patient_id}"
            )
        ehr_id = f"ehr-{len(self.records):08d}"
        record = EHRRecord(
            ehr_id=ehr_id,
            patient_id=patient_id,
            provider_id=provider_id,
            record_types=list(record_types),
            ciphertext=self.abe.encrypt(body, required_attributes),
            created_at=self.clock.now(),
        )
        self.records[ehr_id] = record
        # The consent reference must not leak the patient identity into
        # the (potentially shared) provenance record — reference the
        # pseudonymized pair instead.
        pseudonym = self.pseudonyms.pseudonym(patient_id)
        self._emit(record, actor=provider_id, operation="write",
                   consent_ref=f"consent:{pseudonym}:{provider_id}")
        return record

    # ------------------------------------------------------------------
    # Reading records
    # ------------------------------------------------------------------
    def read_record(self, ehr_id: str, provider_id: str) -> bytes:
        """Consented, attribute-qualified read."""
        record = self._record(ehr_id)
        allowed = self.consents.has_consent(record.patient_id, provider_id)
        self.audit.record(provider_id, f"ehr:{record.patient_id}", "read",
                          allowed, mechanism="consent")
        if not allowed:
            raise AccessDenied(
                f"{provider_id} lacks consent to read {ehr_id}"
            )
        body = self.abe.decrypt(provider_id, record.ciphertext)
        self._emit(record, actor=provider_id, operation="read")
        return body

    def emergency_access(self, ehr_id: str, provider_id: str,
                         justification: str) -> bytes:
        """Break-glass read: bypasses consent, never bypasses the audit."""
        record = self._record(ehr_id)
        self.audit.record(provider_id, f"ehr:{record.patient_id}",
                          "emergency_read", True,
                          mechanism=f"break-glass:{justification}")
        self.emergency_accesses.append(
            (provider_id, ehr_id, self.clock.now())
        )
        body = self.abe.decrypt(provider_id, record.ciphertext)
        self._emit(record, actor=provider_id, operation="emergency_read")
        return body

    # ------------------------------------------------------------------
    # Compliance reporting
    # ------------------------------------------------------------------
    def disclosures_for(self, patient_id: str) -> list[dict]:
        """HIPAA-style accounting of disclosures for one patient."""
        resource = f"ehr:{patient_id}"
        return [
            {"provider": d.subject, "action": d.action,
             "allowed": d.allowed, "timestamp": d.timestamp,
             "mechanism": d.mechanism}
            for d in self.audit
            if d.resource == resource
        ]

    def emergency_report(self) -> list[tuple[str, str, int]]:
        return list(self.emergency_accesses)

    # ------------------------------------------------------------------
    def _record(self, ehr_id: str) -> EHRRecord:
        record = self.records.get(ehr_id)
        if record is None:
            raise UnknownEntity(f"no EHR record {ehr_id!r}")
        return record

    def _emit(self, record: EHRRecord, actor: str, operation: str,
              consent_ref: str = "") -> dict:
        pseudonym = self.pseudonyms.pseudonym(record.patient_id)
        prov = make_record(
            "healthcare",
            record_id=f"hc-{self._record_counter:08d}",
            subject=record.ehr_id,
            actor=actor,
            operation=operation,
            timestamp=self.clock.now(),
            patient_pseudonym=pseudonym,
            ehr_id=record.ehr_id,
            provider_id=actor,
            consent_ref=consent_ref or "none",
            record_types=list(record.record_types),
            regulation=self.regulation,
        )
        self._record_counter += 1
        self.sink.deliver(prov)
        return prov
