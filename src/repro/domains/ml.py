"""Machine-learning provenance and federated learning (§4.4).

Two pieces:

* :class:`AssetGraph` — Lüthi et al. [51]'s provenance model for AI
  assets: **datasets**, **operations**, and **models** as nodes of a DAG,
  relationships tracked so usage can be monitored and contributors
  compensated.
* :class:`FederatedLearning` — a BlockDFL [62] / Yang et al. [84]-style
  decentralized FL coordinator: per-round participant updates are scored
  by a committee, accepted by vote, aggregated with reputation weights,
  and every step emits provenance records.  Poisoning and free-riding
  attackers are simulated; the reputation defense demonstrably keeps the
  model converging "under 50% attacks" — the claim the EVAL benches
  reproduce in shape.

The "model" is a vector and training is gradient descent toward a hidden
target — the minimal substrate that makes poisoning (reversed gradients)
and its defense (similarity voting + reputation) measurable without a
deep-learning stack (DESIGN.md §2).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..clock import SimClock
from ..errors import DomainError
from ..provenance.capture import CaptureSink
from ..provenance.graph import ProvenanceGraph
from ..provenance.model import RelationKind
from ..provenance.records import make_record

Vector = list[float]


def _vec_sub(a: Vector, b: Vector) -> Vector:
    return [x - y for x, y in zip(a, b)]


def _vec_add(a: Vector, b: Vector) -> Vector:
    return [x + y for x, y in zip(a, b)]


def _vec_scale(a: Vector, k: float) -> Vector:
    return [x * k for x in a]


def _vec_norm(a: Vector) -> float:
    return math.sqrt(sum(x * x for x in a))


def _cosine(a: Vector, b: Vector) -> float:
    na, nb = _vec_norm(a), _vec_norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return sum(x * y for x, y in zip(a, b)) / (na * nb)


def _median_vector(vectors: list[Vector]) -> Vector:
    """Coordinate-wise median — the robust aggregate the committee uses."""
    if not vectors:
        raise DomainError("no vectors to aggregate")
    dim = len(vectors[0])
    out = []
    for i in range(dim):
        column = sorted(v[i] for v in vectors)
        mid = len(column) // 2
        if len(column) % 2 == 1:
            out.append(column[mid])
        else:
            out.append((column[mid - 1] + column[mid]) / 2.0)
    return out


# ---------------------------------------------------------------------------
# AI asset provenance (Lüthi et al.)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MLAsset:
    """A tracked AI asset."""

    asset_id: str
    asset_type: str            # "dataset" | "operation" | "model"
    owner: str
    parents: tuple[str, ...] = ()


class AssetGraph:
    """DAG over datasets, operations, and models.

    Assets may be registered "without necessitating corresponding
    operations" (the Lüthi et al. extension): a model can name datasets
    as parents directly.
    """

    VALID_TYPES = ("dataset", "operation", "model")

    def __init__(self, graph: ProvenanceGraph | None = None) -> None:
        self.graph = graph if graph is not None else ProvenanceGraph()
        self.assets: dict[str, MLAsset] = {}

    def register(self, asset_id: str, asset_type: str, owner: str,
                 parents: tuple[str, ...] = ()) -> MLAsset:
        if asset_type not in self.VALID_TYPES:
            raise DomainError(f"bad asset type {asset_type!r}")
        if asset_id in self.assets:
            raise DomainError(f"asset {asset_id!r} already registered")
        for parent in parents:
            if parent not in self.assets:
                raise DomainError(f"unknown parent asset {parent!r}")
        asset = MLAsset(asset_id=asset_id, asset_type=asset_type,
                        owner=owner, parents=tuple(parents))
        self.assets[asset_id] = asset
        self.graph.add_entity(asset_id, asset_type=asset_type)
        self.graph.add_agent(owner)
        self.graph.relate(asset_id, RelationKind.WAS_ATTRIBUTED_TO, owner)
        for parent in parents:
            self.graph.relate(asset_id, RelationKind.WAS_DERIVED_FROM, parent)
        return asset

    def lineage(self, asset_id: str) -> list[str]:
        """All assets this one transitively derives from."""
        if asset_id not in self.assets:
            raise DomainError(f"unknown asset {asset_id!r}")
        return [n for n in self.graph.lineage(asset_id) if n in self.assets]

    def consumers_of(self, asset_id: str) -> list[str]:
        """Assets that used this one — the compensation question."""
        if asset_id not in self.assets:
            raise DomainError(f"unknown asset {asset_id!r}")
        return [n for n in self.graph.impact(asset_id) if n in self.assets]

    def usage_counts(self) -> dict[str, int]:
        """How often each dataset was consumed (fair-remuneration input)."""
        return {
            asset_id: len(self.consumers_of(asset_id))
            for asset_id, asset in self.assets.items()
            if asset.asset_type == "dataset"
        }


# ---------------------------------------------------------------------------
# Federated learning with reputation defense
# ---------------------------------------------------------------------------
@dataclass
class FLConfig:
    """Federated-learning simulation parameters."""

    dim: int = 16
    n_participants: int = 10
    attacker_fraction: float = 0.0
    attack_kind: str = "poison"        # "poison" | "freeride"
    defense: str = "reputation"        # "reputation" | "none"
    learning_rate: float = 0.3
    noise: float = 0.02
    committee_size: int = 3
    similarity_threshold: float = 0.0  # cosine vs committee median
    seed: int = 0


@dataclass
class Participant:
    participant_id: str
    honest: bool
    reputation: float = 1.0
    accepted: int = 0
    rejected: int = 0


class FederatedLearning:
    """Decentralized FL rounds with voting, reputation, and provenance."""

    def __init__(self, config: FLConfig, sink: CaptureSink | None = None,
                 clock: SimClock | None = None) -> None:
        self.config = config
        self.sink = sink
        self.clock = clock or SimClock()
        self.rng = random.Random(config.seed)
        self.target: Vector = [self.rng.uniform(-1, 1)
                               for _ in range(config.dim)]
        self.model: Vector = [0.0] * config.dim
        n_attackers = int(round(config.n_participants
                                * config.attacker_fraction))
        self.participants = [
            Participant(participant_id=f"party-{i:03d}",
                        honest=(i >= n_attackers))
            for i in range(config.n_participants)
        ]
        self.round_number = 0
        self._record_counter = 0
        self.history: list[float] = [self.model_error()]

    # ------------------------------------------------------------------
    def model_error(self) -> float:
        """Distance between the global model and the hidden target."""
        return _vec_norm(_vec_sub(self.target, self.model))

    def _local_update(self, participant: Participant) -> Vector:
        """One participant's proposed gradient step."""
        true_step = _vec_scale(_vec_sub(self.target, self.model),
                               self.config.learning_rate)
        noise = [self.rng.gauss(0.0, self.config.noise)
                 for _ in range(self.config.dim)]
        if participant.honest:
            return _vec_add(true_step, noise)
        if self.config.attack_kind == "freeride":
            return [0.0] * self.config.dim
        # Model poisoning: push away from the target, amplified.
        return _vec_scale(true_step, -2.0)

    def _committee(self) -> list[Participant]:
        """Top-reputation members score this round's updates."""
        ranked = sorted(self.participants,
                        key=lambda p: (-p.reputation, p.participant_id))
        return ranked[: self.config.committee_size]

    # ------------------------------------------------------------------
    def run_round(self) -> dict:
        """Execute one FL round; returns round statistics."""
        self.round_number += 1
        updates = {
            p.participant_id: self._local_update(p)
            for p in self.participants
        }
        if self.config.defense == "reputation":
            accepted_ids = self._vote(updates)
        else:
            accepted_ids = [p.participant_id for p in self.participants]
        accepted_vectors = []
        total_weight = 0.0
        by_id = {p.participant_id: p for p in self.participants}
        for pid in accepted_ids:
            participant = by_id[pid]
            weight = participant.reputation if \
                self.config.defense == "reputation" else 1.0
            accepted_vectors.append(_vec_scale(updates[pid], weight))
            total_weight += weight
            participant.accepted += 1
        if total_weight > 0:
            aggregate = _vec_scale(
                [sum(col) for col in zip(*accepted_vectors)],
                1.0 / total_weight,
            )
            self.model = _vec_add(self.model, aggregate)
        error = self.model_error()
        self.history.append(error)
        self._emit_round_records(accepted_ids)
        return {
            "round": self.round_number,
            "accepted": len(accepted_ids),
            "rejected": len(updates) - len(accepted_ids),
            "error": error,
        }

    def _vote(self, updates: dict[str, Vector]) -> list[str]:
        """Committee scoring against a robust reference.

        The reference direction is the coordinate-wise *median over all
        submitted updates* — robust while attackers are a minority, which
        is exactly the <50% regime the surveyed defenses claim.  The
        committee (top-reputation members) certifies the scoring; an
        update is accepted if its cosine similarity to the reference
        clears the threshold.  Rejected proposers lose reputation,
        accepted ones gain."""
        self._committee()  # certifiers of this round's scoring
        reference = _median_vector(list(updates.values()))
        accepted: list[str] = []
        by_id = {p.participant_id: p for p in self.participants}
        for pid, update in updates.items():
            participant = by_id[pid]
            if _vec_norm(update) == 0.0:
                # Free-rider: contributes nothing; penalize, reject.
                participant.reputation = max(0.1,
                                             participant.reputation * 0.8)
                participant.rejected += 1
                continue
            similarity = _cosine(update, reference)
            if similarity > self.config.similarity_threshold:
                participant.reputation = min(5.0,
                                             participant.reputation * 1.05)
                accepted.append(pid)
            else:
                participant.reputation = max(0.1,
                                             participant.reputation * 0.5)
                participant.rejected += 1
        return accepted

    def run(self, rounds: int) -> list[float]:
        """Run several rounds; returns the error trajectory."""
        for _ in range(rounds):
            self.run_round()
        return list(self.history)

    # ------------------------------------------------------------------
    def _emit_round_records(self, accepted_ids: list[str]) -> None:
        if self.sink is None:
            return
        model_asset = f"model-r{self.round_number:04d}"
        parents = [f"update-r{self.round_number:04d}-{pid}"
                   for pid in accepted_ids]
        for pid in accepted_ids:
            record = make_record(
                "machine_learning",
                record_id=f"ml-{self._record_counter:08d}",
                subject=f"update-r{self.round_number:04d}-{pid}",
                actor=pid,
                operation="submit_update",
                timestamp=self.clock.now(),
                asset_id=f"update-r{self.round_number:04d}-{pid}",
                asset_type="operation",
                training_round=self.round_number,
                parent_assets=[f"model-r{self.round_number - 1:04d}"]
                if self.round_number > 1 else [],
                contributor_id=pid,
            )
            self._record_counter += 1
            self.sink.deliver(record)
        record = make_record(
            "machine_learning",
            record_id=f"ml-{self._record_counter:08d}",
            subject=model_asset,
            actor="aggregator",
            operation="aggregate",
            timestamp=self.clock.now(),
            asset_id=model_asset,
            asset_type="model",
            training_round=self.round_number,
            parent_assets=parents,
            contributor_id="aggregator",
        )
        self._record_counter += 1
        self.sink.deliver(record)
        self.clock.advance(1)
