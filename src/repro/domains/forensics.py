"""Digital forensics investigations — the paper's Figure 5, executable.

The five-stage methodology: **identification → preservation → collection
→ analysis → reporting**.  Stage order is enforced (evidence handling
before preservation is inadmissible); every action appends to the
evidence's chain of custody; case integrity is committed into a
:class:`~repro.crypto.distributed_merkle.CaseForest` with one subtree per
stage — ForensiBlock's structure (§4.5).

Records follow Table 1's digital-forensics column: case number, stage,
dates, file types, access patterns, file dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..clock import SimClock
from ..crypto.distributed_merkle import CaseForest, ForestProof
from ..crypto.hashing import hash_bytes
from ..errors import CustodyError, UnknownEntity
from ..provenance.capture import CaptureSink
from ..provenance.records import make_record


class InvestigationStage(str, Enum):
    """Figure 5's five stages, in order."""

    IDENTIFICATION = "identification"
    PRESERVATION = "preservation"
    COLLECTION = "collection"
    ANALYSIS = "analysis"
    REPORTING = "reporting"

    @classmethod
    def ordered(cls) -> list["InvestigationStage"]:
        return [cls.IDENTIFICATION, cls.PRESERVATION, cls.COLLECTION,
                cls.ANALYSIS, cls.REPORTING]

    def next_stage(self) -> "InvestigationStage | None":
        stages = self.ordered()
        index = stages.index(self)
        return stages[index + 1] if index + 1 < len(stages) else None


@dataclass
class CustodyEntry:
    """One link in an evidence item's chain of custody."""

    actor: str
    action: str
    stage: InvestigationStage
    timestamp: int
    content_hash: bytes


@dataclass
class EvidenceItem:
    """A piece of electronically stored information (ESI)."""

    evidence_id: str
    case_number: str
    file_type: str
    content_hash: bytes
    collected_by: str
    collected_at: int
    depends_on: list[str] = field(default_factory=list)
    custody: list[CustodyEntry] = field(default_factory=list)

    def custody_intact(self) -> bool:
        """Do consecutive custody entries agree on the content hash?"""
        return all(entry.content_hash == self.content_hash
                   for entry in self.custody)


@dataclass
class ForensicCase:
    """One investigation."""

    case_number: str
    lead_investigator: str
    opened_at: int
    stage: InvestigationStage = InvestigationStage.IDENTIFICATION
    closed_at: int | None = None
    evidence: dict[str, EvidenceItem] = field(default_factory=dict)
    forest: CaseForest = field(default_factory=CaseForest)
    access_log: list[tuple[str, str, int]] = field(default_factory=list)

    @property
    def is_open(self) -> bool:
        return self.closed_at is None


class CaseManager:
    """Runs investigations and captures their provenance."""

    def __init__(self, sink: CaptureSink, clock: SimClock | None = None) -> None:
        self.sink = sink
        self.clock = clock or SimClock()
        self.cases: dict[str, ForensicCase] = {}
        self._record_counter = 0

    # ------------------------------------------------------------------
    # Case lifecycle
    # ------------------------------------------------------------------
    def open_case(self, case_number: str, lead_investigator: str) -> ForensicCase:
        if case_number in self.cases:
            raise CustodyError(f"case {case_number!r} already open")
        case = ForensicCase(
            case_number=case_number,
            lead_investigator=lead_investigator,
            opened_at=self.clock.now(),
        )
        self.cases[case_number] = case
        self._emit(case, actor=lead_investigator, operation="open_case",
                   subject=case_number, file_types=[])
        return case

    def advance_stage(self, case_number: str, actor: str) -> InvestigationStage:
        """Move to the next Figure-5 stage; stages cannot be skipped."""
        case = self._case(case_number)
        self._require_open(case)
        nxt = case.stage.next_stage()
        if nxt is None:
            raise CustodyError(
                f"case {case_number!r} is already at the final stage"
            )
        case.stage = nxt
        self._emit(case, actor=actor, operation="advance_stage",
                   subject=case_number, file_types=[])
        return nxt

    def close_case(self, case_number: str, actor: str) -> ForensicCase:
        case = self._case(case_number)
        self._require_open(case)
        if case.stage != InvestigationStage.REPORTING:
            raise CustodyError(
                f"cannot close during {case.stage.value}; a report must be "
                "produced first"
            )
        case.closed_at = self.clock.now()
        self._emit(case, actor=actor, operation="close_case",
                   subject=case_number, file_types=[])
        return case

    # ------------------------------------------------------------------
    # Evidence handling
    # ------------------------------------------------------------------
    def collect_evidence(
        self,
        case_number: str,
        evidence_id: str,
        actor: str,
        content: bytes,
        file_type: str,
        depends_on: list[str] | None = None,
    ) -> EvidenceItem:
        """Register evidence (allowed only in preservation/collection)."""
        case = self._case(case_number)
        self._require_open(case)
        if case.stage not in (InvestigationStage.PRESERVATION,
                              InvestigationStage.COLLECTION):
            raise CustodyError(
                f"evidence may only be collected during preservation or "
                f"collection; case is in {case.stage.value}"
            )
        if evidence_id in case.evidence:
            raise CustodyError(f"evidence {evidence_id!r} already collected")
        for dep in depends_on or []:
            if dep not in case.evidence:
                raise CustodyError(f"unknown dependency {dep!r}")
        item = EvidenceItem(
            evidence_id=evidence_id,
            case_number=case_number,
            file_type=file_type,
            content_hash=hash_bytes(content),
            collected_by=actor,
            collected_at=self.clock.now(),
            depends_on=list(depends_on or []),
        )
        item.custody.append(CustodyEntry(
            actor=actor, action="collect", stage=case.stage,
            timestamp=self.clock.now(), content_hash=item.content_hash,
        ))
        case.evidence[evidence_id] = item
        case.forest.add(case.stage.value, {
            "evidence_id": evidence_id,
            "content_hash": item.content_hash,
            "actor": actor,
            "timestamp": item.collected_at,
        })
        self._emit(case, actor=actor, operation="collect_evidence",
                   subject=evidence_id, file_types=[file_type],
                   file_dependencies=list(depends_on or []))
        return item

    def access_evidence(self, case_number: str, evidence_id: str,
                        actor: str, purpose: str = "analysis") -> EvidenceItem:
        """Record an access (analysis stage onwards); extends custody."""
        case = self._case(case_number)
        item = self._evidence(case, evidence_id)
        if case.stage in (InvestigationStage.IDENTIFICATION,
                          InvestigationStage.PRESERVATION):
            raise CustodyError(
                f"evidence access before collection stage is not allowed"
            )
        entry = CustodyEntry(
            actor=actor, action=purpose, stage=case.stage,
            timestamp=self.clock.now(), content_hash=item.content_hash,
        )
        item.custody.append(entry)
        case.access_log.append((actor, evidence_id, self.clock.now()))
        case.forest.add(case.stage.value, {
            "evidence_id": evidence_id,
            "action": purpose,
            "actor": actor,
            "timestamp": entry.timestamp,
        })
        self._emit(case, actor=actor, operation=f"access:{purpose}",
                   subject=evidence_id, file_types=[item.file_type],
                   access_patterns=[f"{actor}:{purpose}"])
        return item

    # ------------------------------------------------------------------
    # Integrity
    # ------------------------------------------------------------------
    def case_root(self, case_number: str) -> bytes:
        """The distributed-Merkle root committing the whole case."""
        return self._case(case_number).forest.root

    def prove_case_entry(self, case_number: str, stage: InvestigationStage,
                         index: int) -> ForestProof:
        return self._case(case_number).forest.prove(stage.value, index)

    def chain_of_custody(self, case_number: str,
                         evidence_id: str) -> list[CustodyEntry]:
        case = self._case(case_number)
        return list(self._evidence(case, evidence_id).custody)

    def custody_intact(self, case_number: str) -> bool:
        """Do all evidence items show consistent content hashes?"""
        case = self._case(case_number)
        return all(item.custody_intact() for item in case.evidence.values())

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _case(self, case_number: str) -> ForensicCase:
        case = self.cases.get(case_number)
        if case is None:
            raise UnknownEntity(f"no case {case_number!r}")
        return case

    @staticmethod
    def _require_open(case: ForensicCase) -> None:
        if not case.is_open:
            raise CustodyError(f"case {case.case_number!r} is closed")

    @staticmethod
    def _evidence(case: ForensicCase, evidence_id: str) -> EvidenceItem:
        item = case.evidence.get(evidence_id)
        if item is None:
            raise UnknownEntity(
                f"no evidence {evidence_id!r} in case {case.case_number!r}"
            )
        return item

    def _emit(self, case: ForensicCase, actor: str, operation: str,
              subject: str, file_types: list[str],
              access_patterns: list[str] | None = None,
              file_dependencies: list[str] | None = None) -> dict:
        record = make_record(
            "digital_forensics",
            record_id=f"for-{self._record_counter:08d}",
            subject=subject,
            actor=actor,
            operation=operation,
            timestamp=self.clock.now(),
            case_number=case.case_number,
            stage=case.stage.value,
            case_start=case.opened_at,
            case_closure=case.closed_at if case.closed_at is not None else 0,
            file_types=file_types,
            access_patterns=access_patterns or [],
            file_dependencies=file_dependencies or [],
        )
        self._record_counter += 1
        self.sink.deliver(record)
        return record
