"""Application domains (the paper's RQ2 landscape, Tables 1 & 2).

Each module implements one collaborative domain's lifecycle and emits
schema-valid provenance records through the shared capture pipeline:

* :mod:`~repro.domains.scientific` — workflow lifecycle of Figure 4 with
  branching, merging, and invalidation;
* :mod:`~repro.domains.forensics` — the five investigation stages of
  Figure 5 with evidence custody;
* :mod:`~repro.domains.supplychain` — products, two-phase custody
  transfer, PUF device authentication, cold chain;
* :mod:`~repro.domains.healthcare` — EHR lifecycle, consent, break-glass
  access, HIPAA-style auditing;
* :mod:`~repro.domains.ml` — AI asset DAGs and federated learning with
  reputation-based poisoning defense.
"""

from .scientific import Task, TaskStatus, Workflow, WorkflowManager
from .forensics import (
    CaseManager,
    EvidenceItem,
    ForensicCase,
    InvestigationStage,
)
from .supplychain import (
    ColdChainMonitor,
    Product,
    PUFDevice,
    SupplyChainRegistry,
)
from .healthcare import ConsentRegistry, EHRSystem, EHRRecord
from .ml import AssetGraph, FederatedLearning, FLConfig, MLAsset

__all__ = [
    "Task",
    "TaskStatus",
    "Workflow",
    "WorkflowManager",
    "CaseManager",
    "EvidenceItem",
    "ForensicCase",
    "InvestigationStage",
    "ColdChainMonitor",
    "Product",
    "PUFDevice",
    "SupplyChainRegistry",
    "ConsentRegistry",
    "EHRSystem",
    "EHRRecord",
    "AssetGraph",
    "FederatedLearning",
    "FLConfig",
    "MLAsset",
]
