"""Scientific workflow lifecycle — the paper's Figure 4, executable.

Figure 4's loop: design → execute → record provenance → (results found
faulty) → invalidate → re-execute.  The §4.1 systems add requirements
this module implements:

* **multiple workflows** sharing one provenance store (SciLedger);
* **branching and merging** — a task may consume outputs of several
  tasks and feed several others (the "complex operations" SciLedger
  supports and §4.6 says others struggle with);
* **timestamp-based invalidation** (SciBlock) — invalidating a task marks
  its outputs and *cascades* to every transitively dependent result, so
  stale conclusions cannot silently survive upstream corrections;
* **re-execution** — invalidated tasks can be re-run as fresh executions,
  preserving the full history (the old execution remains recorded, as
  immutability demands).

Every lifecycle step emits a schema-valid provenance record (Table 1's
scientific column) into the capture sink and updates the shared
provenance graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..clock import SimClock
from ..errors import UnknownEntity, WorkflowError
from ..provenance.capture import CaptureSink
from ..provenance.graph import ProvenanceGraph
from ..provenance.model import RelationKind
from ..provenance.records import make_record


class TaskStatus(str, Enum):
    DESIGNED = "designed"
    RUNNING = "running"
    COMPLETED = "completed"
    INVALIDATED = "invalidated"


@dataclass
class Task:
    """One workflow step."""

    task_id: str
    workflow_id: str
    user_id: str
    inputs: list[str] = field(default_factory=list)    # entity ids
    outputs: list[str] = field(default_factory=list)   # entity ids
    status: TaskStatus = TaskStatus.DESIGNED
    started_at: int = 0
    finished_at: int = 0
    execution_count: int = 0
    invalidated_at: int | None = None

    @property
    def execution_time(self) -> int:
        return max(0, self.finished_at - self.started_at)


@dataclass
class Workflow:
    """A named collection of tasks over shared data entities."""

    workflow_id: str
    owner: str
    task_ids: list[str] = field(default_factory=list)


class WorkflowManager:
    """Runs workflows and captures their provenance."""

    def __init__(
        self,
        sink: CaptureSink,
        clock: SimClock | None = None,
        graph: ProvenanceGraph | None = None,
    ) -> None:
        self.sink = sink
        self.clock = clock or SimClock()
        self.graph = graph if graph is not None else ProvenanceGraph()
        self.workflows: dict[str, Workflow] = {}
        self.tasks: dict[str, Task] = {}
        self._record_counter = 0
        self.invalidation_cascades = 0

    # ------------------------------------------------------------------
    # Design phase
    # ------------------------------------------------------------------
    def create_workflow(self, workflow_id: str, owner: str) -> Workflow:
        if workflow_id in self.workflows:
            raise WorkflowError(f"workflow {workflow_id!r} exists")
        workflow = Workflow(workflow_id=workflow_id, owner=owner)
        self.workflows[workflow_id] = workflow
        self.graph.add_agent(owner)
        return workflow

    def design_task(
        self,
        workflow_id: str,
        task_id: str,
        user_id: str,
        inputs: list[str],
        outputs: list[str],
    ) -> Task:
        """Add a task to a workflow (Figure 4's design stage).

        Inputs may be external data or outputs of earlier tasks
        (branching/merging arises naturally from shared entity ids).
        """
        workflow = self._workflow(workflow_id)
        if task_id in self.tasks:
            raise WorkflowError(f"task {task_id!r} exists")
        if not outputs:
            raise WorkflowError("a task must declare at least one output")
        overlap = set(inputs) & set(outputs)
        if overlap:
            raise WorkflowError(
                f"task {task_id!r} lists {sorted(overlap)} as both input "
                "and output"
            )
        for output in outputs:
            producer = self._producer_of(output)
            if producer is not None:
                raise WorkflowError(
                    f"output {output!r} already produced by {producer}"
                )
        task = Task(task_id=task_id, workflow_id=workflow_id,
                    user_id=user_id, inputs=list(inputs),
                    outputs=list(outputs))
        self.tasks[task_id] = task
        workflow.task_ids.append(task_id)
        return task

    def _producer_of(self, output_id: str) -> str | None:
        for task in self.tasks.values():
            if output_id in task.outputs and task.status != TaskStatus.INVALIDATED:
                return task.task_id
        return None

    # ------------------------------------------------------------------
    # Execution phase
    # ------------------------------------------------------------------
    def execute_task(self, task_id: str, duration: int = 1) -> dict:
        """Run a designed task; returns the emitted provenance record.

        Upstream inputs that are task outputs must come from *completed*,
        non-invalidated tasks.
        """
        task = self._task(task_id)
        if task.status not in (TaskStatus.DESIGNED, TaskStatus.INVALIDATED):
            raise WorkflowError(
                f"task {task_id!r} is {task.status.value}; cannot execute"
            )
        for input_id in task.inputs:
            producer_id = self._producer_of(input_id)
            if producer_id is not None:
                producer = self.tasks[producer_id]
                if producer.status != TaskStatus.COMPLETED:
                    raise WorkflowError(
                        f"input {input_id!r} of {task_id!r} comes from "
                        f"{producer_id!r} which is {producer.status.value}"
                    )
        task.status = TaskStatus.RUNNING
        task.started_at = self.clock.now()
        self.clock.advance(duration)
        task.finished_at = self.clock.now()
        task.status = TaskStatus.COMPLETED
        task.execution_count += 1
        task.invalidated_at = None
        self._record_execution_provenance(task)
        return self._emit_record(task, operation="execute")

    def _record_execution_provenance(self, task: Task) -> None:
        execution_id = f"{task.task_id}#run{task.execution_count}"
        self.graph.add_activity(execution_id,
                                created_at=task.started_at,
                                workflow=task.workflow_id)
        self.graph.add_agent(task.user_id)
        self.graph.relate(execution_id, RelationKind.WAS_ASSOCIATED_WITH,
                          task.user_id, timestamp=task.started_at)
        for input_id in task.inputs:
            if not self.graph.has_node(input_id):
                self.graph.add_entity(input_id, created_at=task.started_at,
                                      external=True)
            self.graph.relate(execution_id, RelationKind.USED, input_id,
                              timestamp=task.started_at)
        for output_id in task.outputs:
            versioned = f"{output_id}@{task.execution_count}"
            self.graph.add_entity(versioned, created_at=task.finished_at,
                                  logical_id=output_id)
            if not self.graph.has_node(output_id):
                self.graph.add_entity(output_id, created_at=task.finished_at)
            # The logical dataset's current content derives from this
            # version — without this edge, lineage queries would stop at
            # logical ids and never reach upstream tasks.
            self.graph.relate(output_id, RelationKind.WAS_DERIVED_FROM,
                              versioned, timestamp=task.finished_at,
                              role="current-version")
            self.graph.relate(versioned, RelationKind.WAS_GENERATED_BY,
                              execution_id, timestamp=task.finished_at)
            for input_id in task.inputs:
                self.graph.relate(versioned, RelationKind.WAS_DERIVED_FROM,
                                  input_id, timestamp=task.finished_at)

    # ------------------------------------------------------------------
    # Invalidation (Figure 4's feedback loop, SciBlock/SciLedger)
    # ------------------------------------------------------------------
    def invalidate_task(self, task_id: str, reason: str = "") -> list[str]:
        """Invalidate a task and cascade to every dependent task.

        Returns the list of task ids invalidated (including ``task_id``),
        in cascade order.  Cascading works over *current* data
        dependencies: any task consuming an output (direct or transitive)
        of the invalidated task is itself invalidated.
        """
        root = self._task(task_id)
        if root.status != TaskStatus.COMPLETED:
            raise WorkflowError(
                f"only completed tasks can be invalidated; {task_id!r} is "
                f"{root.status.value}"
            )
        now = self.clock.now()
        invalidated: list[str] = []
        frontier = [task_id]
        seen = {task_id}
        while frontier:
            current_id = frontier.pop(0)
            current = self.tasks[current_id]
            if current.status == TaskStatus.COMPLETED:
                current.status = TaskStatus.INVALIDATED
                current.invalidated_at = now
                invalidated.append(current_id)
                self._emit_record(current, operation="invalidate",
                                  invalidated=[f"{o}@{current.execution_count}"
                                               for o in current.outputs])
            for dependent_id in self._dependents_of(current):
                if dependent_id not in seen:
                    seen.add(dependent_id)
                    frontier.append(dependent_id)
        self.invalidation_cascades += 1
        return invalidated

    def _dependents_of(self, task: Task) -> list[str]:
        outputs = set(task.outputs)
        return [
            other.task_id
            for other in self.tasks.values()
            if other.task_id != task.task_id and outputs & set(other.inputs)
        ]

    def re_execute(self, task_id: str, duration: int = 1) -> dict:
        """Re-run an invalidated task (Figure 4's re-execution arrow)."""
        task = self._task(task_id)
        if task.status != TaskStatus.INVALIDATED:
            raise WorkflowError(
                f"only invalidated tasks can be re-executed; {task_id!r} "
                f"is {task.status.value}"
            )
        return self.execute_task(task_id, duration=duration)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def valid_results(self, workflow_id: str) -> list[str]:
        """Current (non-invalidated) outputs of a workflow."""
        workflow = self._workflow(workflow_id)
        results = []
        for task_id in workflow.task_ids:
            task = self.tasks[task_id]
            if task.status == TaskStatus.COMPLETED:
                results.extend(task.outputs)
        return results

    def execution_schedule(self, workflow_id: str) -> list[str]:
        """Task ids in dependency order (a valid (re-)execution order)."""
        workflow = self._workflow(workflow_id)
        tasks = [self.tasks[tid] for tid in workflow.task_ids]
        produced_by = {}
        for task in tasks:
            for output in task.outputs:
                produced_by[output] = task.task_id
        # Kahn over task-level dependencies.
        deps: dict[str, set[str]] = {
            t.task_id: {produced_by[i] for i in t.inputs if i in produced_by}
            for t in tasks
        }
        ready = sorted(tid for tid, d in deps.items() if not d)
        order: list[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for tid in sorted(deps):
                if current in deps[tid]:
                    deps[tid].discard(current)
                    if not deps[tid] and tid not in order and tid not in ready:
                        ready.append(tid)
        if len(order) != len(tasks):
            raise WorkflowError(
                f"workflow {workflow_id!r} has a dependency cycle"
            )
        return order

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _workflow(self, workflow_id: str) -> Workflow:
        workflow = self.workflows.get(workflow_id)
        if workflow is None:
            raise UnknownEntity(f"no workflow {workflow_id!r}")
        return workflow

    def _task(self, task_id: str) -> Task:
        task = self.tasks.get(task_id)
        if task is None:
            raise UnknownEntity(f"no task {task_id!r}")
        return task

    def _emit_record(self, task: Task, operation: str,
                     invalidated: list[str] | None = None) -> dict:
        record = make_record(
            "scientific",
            record_id=f"sci-{self._record_counter:08d}",
            subject=task.outputs[0] if task.outputs else task.task_id,
            actor=task.user_id,
            operation=operation,
            timestamp=self.clock.now(),
            task_id=task.task_id,
            workflow_id=task.workflow_id,
            execution_time=task.execution_time,
            user_id=task.user_id,
            input_data=list(task.inputs),
            output_data=list(task.outputs),
            invalidated_results=invalidated or [],
        )
        self._record_counter += 1
        self.sink.deliver(record)
        return record
