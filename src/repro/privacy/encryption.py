"""Encryption simulations: symmetric AEAD, attribute-based, searchable.

Three constructions the healthcare and forensics designs lean on:

* **Symmetric authenticated encryption** — a SHA-256 keystream cipher
  with an HMAC tag.  Confidentiality against the in-process adversary and
  real tamper detection; not a vetted AEAD, see DESIGN.md §2.
* **Attribute-based encryption (ABE)** — Niu et al. [59] protect EHRs
  with ciphertext-policy ABE: a ciphertext carries a policy over
  attributes, and only keys whose attributes satisfy it can decrypt.
  Simulated by an authority that enforces the policy at key-wrap time.
* **Searchable encryption** — the same system offers "multi-user search":
  keyword trapdoors computed with a keyed hash let the server match
  without learning the keyword.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import Iterable

from ..errors import DecryptionError, PrivacyError
from ..serialization import canonical_encode


# ---------------------------------------------------------------------------
# Symmetric authenticated encryption
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SymmetricKey:
    """A 32-byte symmetric key."""

    key_bytes: bytes

    @classmethod
    def derive(cls, seed) -> "SymmetricKey":
        return cls(hashlib.sha256(b"symkey:" + canonical_encode(seed)).digest())


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < length:
        blocks.append(hashlib.sha256(
            key + nonce + counter.to_bytes(8, "big")
        ).digest())
        counter += 1
    return b"".join(blocks)[:length]


def encrypt(key: SymmetricKey, plaintext: bytes, nonce: bytes = b"") -> bytes:
    """Encrypt-then-MAC; output is ``nonce(16) || ciphertext || tag(32)``."""
    if not nonce:
        nonce = hashlib.sha256(b"nonce:" + key.key_bytes + plaintext).digest()[:16]
    if len(nonce) != 16:
        raise PrivacyError("nonce must be 16 bytes")
    stream = _keystream(key.key_bytes, nonce, len(plaintext))
    ciphertext = bytes(p ^ s for p, s in zip(plaintext, stream))
    tag = hmac.new(key.key_bytes, nonce + ciphertext, hashlib.sha256).digest()
    return nonce + ciphertext + tag


def decrypt(key: SymmetricKey, blob: bytes) -> bytes:
    """Verify the tag, then decrypt.  Raises :class:`DecryptionError` on
    a bad key or tampered ciphertext."""
    if len(blob) < 48:
        raise DecryptionError("ciphertext too short")
    nonce, ciphertext, tag = blob[:16], blob[16:-32], blob[-32:]
    expected = hmac.new(key.key_bytes, nonce + ciphertext,
                        hashlib.sha256).digest()
    if not hmac.compare_digest(expected, tag):
        raise DecryptionError("authentication tag mismatch")
    stream = _keystream(key.key_bytes, nonce, len(ciphertext))
    return bytes(c ^ s for c, s in zip(ciphertext, stream))


# ---------------------------------------------------------------------------
# Attribute-based encryption (ciphertext-policy)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ABECiphertext:
    """Ciphertext bound to an attribute policy.

    ``policy`` is a frozenset of required attributes (AND semantics; OR
    policies are expressed as multiple ciphertexts in practice, which is
    all the surveyed designs need).
    """

    policy: frozenset[str]
    blob: bytes


@dataclass
class ABEAuthority:
    """Issues attribute keys and mediates decryption.

    The authority holds the master secret; user keys are attribute sets
    plus a user-bound key.  ``decrypt`` succeeds only when the user's
    attributes satisfy the ciphertext policy — enforced here, standing in
    for the pairing-based enforcement of real CP-ABE.
    """

    master_seed: bytes = b"abe-master"
    _user_attrs: dict = field(default_factory=dict)

    def _data_key(self, policy: frozenset[str]) -> SymmetricKey:
        material = b"|".join(sorted(a.encode() for a in policy))
        return SymmetricKey(hashlib.sha256(
            b"abe:" + self.master_seed + material
        ).digest())

    def issue_key(self, user: str, attributes: Iterable[str]) -> None:
        """Give ``user`` an attribute key (replaces any prior one)."""
        self._user_attrs[user] = frozenset(attributes)

    def revoke_key(self, user: str) -> None:
        self._user_attrs.pop(user, None)

    def attributes_of(self, user: str) -> frozenset[str]:
        return self._user_attrs.get(user, frozenset())

    def encrypt(self, plaintext: bytes,
                required_attributes: Iterable[str]) -> ABECiphertext:
        policy = frozenset(required_attributes)
        if not policy:
            raise PrivacyError("ABE policy must require at least one attribute")
        return ABECiphertext(
            policy=policy,
            blob=encrypt(self._data_key(policy), plaintext),
        )

    def decrypt(self, user: str, ciphertext: ABECiphertext) -> bytes:
        attrs = self._user_attrs.get(user)
        if attrs is None:
            raise DecryptionError(f"{user} holds no ABE key")
        if not ciphertext.policy <= attrs:
            missing = sorted(ciphertext.policy - attrs)
            raise DecryptionError(
                f"{user}'s attributes do not satisfy the policy; "
                f"missing {missing}"
            )
        return decrypt(self._data_key(ciphertext.policy), ciphertext.blob)


# ---------------------------------------------------------------------------
# Searchable symmetric encryption
# ---------------------------------------------------------------------------
class SearchableIndex:
    """Keyword search over encrypted documents via keyed trapdoors.

    The index stores ``token -> document ids`` where
    ``token = HMAC(search_key, keyword)``.  The server (this object) never
    sees keywords; clients compute trapdoors with :meth:`trapdoor` and the
    server matches tokens blindly.
    """

    def __init__(self, search_key: SymmetricKey) -> None:
        self._key = search_key.key_bytes
        self._postings: dict[bytes, set[str]] = {}
        self.searches = 0

    def trapdoor(self, keyword: str) -> bytes:
        """Client-side: the search token for ``keyword``."""
        return hmac.new(self._key, b"kw:" + keyword.encode(),
                        hashlib.sha256).digest()

    def index_document(self, doc_id: str, keywords: Iterable[str]) -> None:
        """Client-side at upload time: register the doc's keyword tokens."""
        for keyword in keywords:
            token = self.trapdoor(keyword)
            self._postings.setdefault(token, set()).add(doc_id)

    def search(self, token: bytes) -> set[str]:
        """Server-side: match a trapdoor without learning the keyword."""
        self.searches += 1
        return set(self._postings.get(token, set()))

    def search_keyword(self, keyword: str) -> set[str]:
        """Convenience composition of trapdoor + search (client+server)."""
        return self.search(self.trapdoor(keyword))
