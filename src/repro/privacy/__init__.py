"""Privacy mechanisms the surveyed systems rely on.

* :mod:`~repro.privacy.commitment` — Pedersen commitments over a MODP
  group (homomorphic, the substrate for range proofs);
* :mod:`~repro.privacy.rangeproof` — bit-decomposition zero-knowledge
  range proofs with Fiat–Shamir OR-proofs (PrivChain's ZKRP);
* :mod:`~repro.privacy.groupsig` — group signatures with anonymity,
  unlinkability, and manager opening (Abouyoussef et al.'s pandemic
  platform);
* :mod:`~repro.privacy.encryption` — authenticated symmetric encryption,
  attribute-based encryption, and searchable encryption (Niu et al.'s
  EHR sharing);
* :mod:`~repro.privacy.anonymity` — pseudonym management and
  unlinkability helpers.

Cryptographic caveat: commitments and range proofs use real modular
arithmetic over an RFC 3526 group and are honest constructions, but
parameters are fixed and nonces deterministic-from-seed, so treat them as
*behaviour-preserving simulations*, not production cryptography
(DESIGN.md §2).
"""

from .commitment import PedersenCommitment, PedersenParams, DEFAULT_PARAMS
from .rangeproof import RangeProof, prove_range, verify_range
from .groupsig import GroupManager, GroupSignature
from .encryption import (
    SymmetricKey,
    encrypt,
    decrypt,
    ABECiphertext,
    ABEAuthority,
    SearchableIndex,
)
from .anonymity import PseudonymManager

__all__ = [
    "PedersenCommitment",
    "PedersenParams",
    "DEFAULT_PARAMS",
    "RangeProof",
    "prove_range",
    "verify_range",
    "GroupManager",
    "GroupSignature",
    "SymmetricKey",
    "encrypt",
    "decrypt",
    "ABECiphertext",
    "ABEAuthority",
    "SearchableIndex",
    "PseudonymManager",
]
