"""Pseudonym management and unlinkability helpers.

The RQ1 challenges section warns that "a specific provenance entry [may
be correlated] to the data owner"; healthcare designs require "anonymity
and data unlinkability" (§4.3).  The standard mitigation is to act under
rotating pseudonyms: records carry pseudonyms; only the holder of the
mapping (the user, or a regulator under due process) can re-identify.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import PrivacyError
from ..serialization import canonical_encode


@dataclass
class PseudonymManager:
    """Derives rotating pseudonyms and holds the re-identification map.

    Pseudonyms are ``H(master_seed, user, epoch)``: deterministic for
    auditability of the simulation, unlinkable across epochs for anyone
    without the seed.
    """

    master_seed: bytes = b"pseudonyms"
    _reverse: dict = field(default_factory=dict)

    def pseudonym(self, user: str, epoch: int = 0) -> str:
        """The pseudonym for ``user`` during ``epoch``."""
        digest = hashlib.sha256(
            b"pseud:" + self.master_seed
            + canonical_encode({"user": user, "epoch": epoch})
        ).hexdigest()[:24]
        name = f"anon-{digest}"
        self._reverse[name] = (user, epoch)
        return name

    def reidentify(self, pseudonym: str) -> tuple[str, int]:
        """Authority-side opening of a pseudonym."""
        identity = self._reverse.get(pseudonym)
        if identity is None:
            raise PrivacyError(f"unknown pseudonym {pseudonym!r}")
        return identity

    @staticmethod
    def are_linkable(pseudonym_a: str, pseudonym_b: str) -> bool:
        """What an outsider can test: literal equality only."""
        return pseudonym_a == pseudonym_b

    def pseudonymize_record(self, record: dict, epoch: int = 0,
                            fields: tuple[str, ...] = ("actor",)) -> dict:
        """Copy ``record`` with identity fields replaced by pseudonyms."""
        out = dict(record)
        for field_name in fields:
            if field_name in out and isinstance(out[field_name], str):
                out[field_name] = self.pseudonym(out[field_name], epoch)
        return out
