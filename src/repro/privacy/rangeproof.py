"""Zero-knowledge range proofs by bit decomposition.

PrivChain [52] lets supply-chain parties prove statements like "this
shipment's temperature stayed within [2, 8]°C" or "the origin lies within
a permitted region" *without revealing the value*, using Zero-Knowledge
Range Proofs.  This module implements the classic bit-decomposition ZKRP
over Pedersen commitments:

1. To show ``v ∈ [0, 2^n)``: commit to each bit ``b_i`` of ``v``; prove
   each commitment holds 0 or 1 with a Fiat–Shamir OR-proof (CDS
   composition of Schnorr proofs); the verifier additionally checks the
   weighted product ``Π C_i^{2^i} = C``, which forces the bits to
   recompose the committed value.
2. To show ``v ∈ [lo, hi]``: run (1) on ``C / g^lo`` (proving
   ``v - lo ≥ 0``) and on ``g^hi / C`` (proving ``hi - v ≥ 0``).

Proof size is linear in the bit width — the overhead shape the PrivChain
incentive analysis depends on (and what the EVAL-STORE bench measures).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import InvalidProof, PrivacyError
from .commitment import DEFAULT_PARAMS, PedersenCommitment, PedersenParams


def _fs_challenge(params: PedersenParams, *elements: int) -> int:
    """Fiat–Shamir challenge from a transcript of group elements."""
    h = hashlib.sha512()
    h.update(b"repro-zkrp")
    for element in elements:
        h.update(element.to_bytes((element.bit_length() + 7) // 8 or 1, "big"))
        h.update(b"|")
    return int.from_bytes(h.digest(), "big") % params.q


def _nonce(seed: bytes, label: bytes, q: int) -> int:
    digest = hashlib.sha512(b"zkrp-nonce:" + seed + b":" + label).digest()
    return int.from_bytes(digest, "big") % q


@dataclass(frozen=True)
class BitProof:
    """OR-proof that a commitment holds 0 or 1.

    ``(a0, a1)`` are the Schnorr announcements for the two branches,
    ``(e0, e1)`` the split challenges, ``(z0, z1)`` the responses.
    """

    commitment: int
    a0: int
    a1: int
    e0: int
    e1: int
    z0: int
    z1: int


@dataclass(frozen=True)
class RangeProof:
    """Proof that a committed value lies in ``[lo, hi]``."""

    lo: int
    hi: int
    n_bits: int
    lower_bits: tuple[BitProof, ...]   # for v - lo >= 0
    upper_bits: tuple[BitProof, ...]   # for hi - v >= 0

    @property
    def size_bytes(self) -> int:
        # 6 numbers per bit proof, ~192 bytes each in this group, plus
        # the bit commitment.
        per_bit = 7 * 192
        return per_bit * (len(self.lower_bits) + len(self.upper_bits)) + 32


def _prove_bit(bit: int, randomness: int, params: PedersenParams,
               seed: bytes, label: bytes) -> BitProof:
    """OR-proof for one bit commitment ``C = g^bit · h^randomness``."""
    commitment, _ = PedersenCommitment.commit(
        bit, randomness=randomness, params=params
    )
    c = commitment.value
    p, q, g, h = params.p, params.q, params.g, params.h
    # Branch statements: X0 = C (holds 0 ⇨ C = h^r);
    #                    X1 = C/g (holds 1 ⇨ C/g = h^r).
    x0 = c
    x1 = (c * pow(g, -1, p)) % p
    w = _nonce(seed, label + b":w", q)
    e_fake = _nonce(seed, label + b":e", q)
    z_fake = _nonce(seed, label + b":z", q)
    if bit == 0:
        # Real proof on branch 0; simulate branch 1.
        a0 = pow(h, w, p)
        a1 = (pow(h, z_fake, p) * pow(x1, -e_fake, p)) % p
        e = _fs_challenge(params, c, a0, a1)
        e0 = (e - e_fake) % q
        e1 = e_fake
        z0 = (w + e0 * randomness) % q
        z1 = z_fake
    elif bit == 1:
        # Real proof on branch 1; simulate branch 0.
        a1 = pow(h, w, p)
        a0 = (pow(h, z_fake, p) * pow(x0, -e_fake, p)) % p
        e = _fs_challenge(params, c, a0, a1)
        e1 = (e - e_fake) % q
        e0 = e_fake
        z1 = (w + e1 * randomness) % q
        z0 = z_fake
    else:
        raise PrivacyError(f"bit must be 0 or 1, got {bit}")
    return BitProof(commitment=c, a0=a0, a1=a1, e0=e0, e1=e1, z0=z0, z1=z1)


def _verify_bit(proof: BitProof, params: PedersenParams) -> bool:
    p, q, g, h = params.p, params.q, params.g, params.h
    c = proof.commitment
    x0 = c
    x1 = (c * pow(g, -1, p)) % p
    e = _fs_challenge(params, c, proof.a0, proof.a1)
    if (proof.e0 + proof.e1) % q != e:
        return False
    if pow(h, proof.z0, p) != (proof.a0 * pow(x0, proof.e0, p)) % p:
        return False
    if pow(h, proof.z1, p) != (proof.a1 * pow(x1, proof.e1, p)) % p:
        return False
    return True


def _prove_non_negative(
    value: int,
    randomness: int,
    n_bits: int,
    params: PedersenParams,
    seed: bytes,
    side: bytes,
) -> tuple[BitProof, ...]:
    """Prove ``0 <= value < 2^n_bits`` for a commitment with the given
    randomness; bit randomness is chosen to recompose exactly."""
    if not 0 <= value < (1 << n_bits):
        raise PrivacyError(
            f"value {value} outside [0, 2^{n_bits}) — statement is false"
        )
    q = params.q
    bits = [(value >> i) & 1 for i in range(n_bits)]
    # Choose r_i freely for i < n-1; solve the last one so that
    # sum(2^i * r_i) == randomness (mod q).
    bit_rands = [
        _nonce(seed, side + b":r%d" % i, q) for i in range(n_bits - 1)
    ]
    partial = sum((1 << i) * bit_rands[i] for i in range(n_bits - 1)) % q
    last = ((randomness - partial)
            * pow(1 << (n_bits - 1), -1, q)) % q
    bit_rands.append(last)
    return tuple(
        _prove_bit(bits[i], bit_rands[i], params, seed, side + b":%d" % i)
        for i in range(n_bits)
    )


def _verify_non_negative(
    commitment_value: int,
    bit_proofs: tuple[BitProof, ...],
    params: PedersenParams,
) -> bool:
    if not bit_proofs:
        return False
    p = params.p
    # 1. Each bit commitment holds 0 or 1.
    for proof in bit_proofs:
        if not _verify_bit(proof, params):
            return False
    # 2. The weighted product recomposes the commitment.
    product = 1
    for i, proof in enumerate(bit_proofs):
        product = (product * pow(proof.commitment, 1 << i, p)) % p
    return product == commitment_value % p


# ---------------------------------------------------------------------------
# Public interface
# ---------------------------------------------------------------------------
def prove_range(
    value: int,
    randomness: int,
    lo: int,
    hi: int,
    n_bits: int = 32,
    params: PedersenParams = DEFAULT_PARAMS,
    seed: bytes = b"",
) -> RangeProof:
    """Prove ``lo <= value <= hi`` for ``C = commit(value, randomness)``.

    Raises :class:`PrivacyError` when the statement is false (an honest
    prover cannot prove a lie; a dishonest prover's output simply fails
    verification).
    """
    if lo > hi:
        raise PrivacyError(f"empty range [{lo}, {hi}]")
    if hi - lo >= (1 << n_bits):
        raise PrivacyError(
            f"range wider than 2^{n_bits}; raise n_bits"
        )
    seed = seed or value.to_bytes(32, "big", signed=True)
    lower = _prove_non_negative(
        value - lo, randomness, n_bits, params, seed, b"lower"
    )
    # g^hi / C commits to (hi - value) with randomness -r.
    upper = _prove_non_negative(
        hi - value, (-randomness) % params.q, n_bits, params, seed, b"upper"
    )
    return RangeProof(lo=lo, hi=hi, n_bits=n_bits,
                      lower_bits=lower, upper_bits=upper)


def verify_range(
    commitment: PedersenCommitment,
    proof: RangeProof,
    params: PedersenParams = DEFAULT_PARAMS,
) -> bool:
    """Verify a range proof against a commitment (no value revealed)."""
    p = params.p
    # C / g^lo commits to v - lo.
    shifted_lower = (commitment.value * pow(params.g, -proof.lo, p)) % p
    if not _verify_non_negative(shifted_lower, proof.lower_bits, params):
        return False
    # g^hi / C commits to hi - v.
    shifted_upper = (pow(params.g, proof.hi, p)
                     * pow(commitment.value, -1, p)) % p
    return _verify_non_negative(shifted_upper, proof.upper_bits, params)


def verify_range_or_raise(
    commitment: PedersenCommitment,
    proof: RangeProof,
    params: PedersenParams = DEFAULT_PARAMS,
) -> None:
    if not verify_range(commitment, proof, params):
        raise InvalidProof(
            f"range proof for [{proof.lo}, {proof.hi}] failed"
        )
