"""Pedersen commitments over an RFC 3526 MODP group.

``C = g^v · h^r mod p`` — computationally binding (under discrete log),
perfectly hiding, and additively homomorphic:
``C(v1, r1) · C(v2, r2) = C(v1 + v2, r1 + r2)``.

The homomorphism is what the range proofs build on, and what lets
PrivChain-style designs aggregate committed quantities (e.g. total stock
moved) without opening individual values.

``h`` is derived from ``g`` by hashing ("nothing up my sleeve"), the
standard way to argue no party knows ``log_g h``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import InvalidProof, PrivacyError

# RFC 3526, 1536-bit MODP group (group 5): p is a safe prime, generator 2.
_RFC3526_1536_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
_Q = (_RFC3526_1536_P - 1) // 2  # prime order of the quadratic-residue subgroup


def _hash_to_group(label: bytes, p: int) -> int:
    """Derive a group element from a label (square to land in QR(p))."""
    digest = hashlib.sha512(label).digest()
    value = int.from_bytes(digest * 4, "big") % p
    return pow(value, 2, p)  # squaring maps into the QR subgroup


@dataclass(frozen=True)
class PedersenParams:
    """Group parameters shared by all commitments in a deployment."""

    p: int
    q: int
    g: int
    h: int

    @classmethod
    def default(cls) -> "PedersenParams":
        p = _RFC3526_1536_P
        g = 4  # 2² — generator of the QR subgroup
        h = _hash_to_group(b"repro-pedersen-h", p)
        return cls(p=p, q=_Q, g=g, h=h)


DEFAULT_PARAMS = PedersenParams.default()


def _derive_randomness(seed: bytes, q: int) -> int:
    digest = hashlib.sha512(b"pedersen-r:" + seed).digest()
    return int.from_bytes(digest, "big") % q


@dataclass(frozen=True)
class PedersenCommitment:
    """A commitment value plus the parameters it lives in."""

    value: int            # the group element C
    params: PedersenParams = DEFAULT_PARAMS

    # ------------------------------------------------------------------
    @classmethod
    def commit(
        cls,
        v: int,
        randomness: int | None = None,
        seed: bytes = b"",
        params: PedersenParams = DEFAULT_PARAMS,
    ) -> tuple["PedersenCommitment", int]:
        """Commit to integer ``v``; returns ``(commitment, randomness)``.

        ``v`` may be any integer (reduced mod q); negative values commit
        to ``v mod q``, which the range-proof layer exploits.
        """
        if randomness is None:
            randomness = _derive_randomness(
                seed or v.to_bytes(32, "big", signed=True), params.q
            )
        r = randomness % params.q
        c = (pow(params.g, v % params.q, params.p)
             * pow(params.h, r, params.p)) % params.p
        return cls(value=c, params=params), r

    def open(self, v: int, r: int) -> bool:
        """Check that ``(v, r)`` opens this commitment."""
        expected = (pow(self.params.g, v % self.params.q, self.params.p)
                    * pow(self.params.h, r % self.params.q, self.params.p)
                    ) % self.params.p
        return expected == self.value

    def open_or_raise(self, v: int, r: int) -> None:
        if not self.open(v, r):
            raise InvalidProof("Pedersen opening failed")

    # ------------------------------------------------------------------
    # Homomorphism
    # ------------------------------------------------------------------
    def __mul__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Commitment to the *sum* of the two committed values."""
        self._same_group(other)
        return PedersenCommitment(
            value=(self.value * other.value) % self.params.p,
            params=self.params,
        )

    def __truediv__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Commitment to the *difference* of the committed values."""
        self._same_group(other)
        inverse = pow(other.value, -1, self.params.p)
        return PedersenCommitment(
            value=(self.value * inverse) % self.params.p,
            params=self.params,
        )

    def __pow__(self, k: int) -> "PedersenCommitment":
        """Commitment to ``k`` times the committed value."""
        return PedersenCommitment(
            value=pow(self.value, k, self.params.p), params=self.params
        )

    def shift(self, delta: int) -> "PedersenCommitment":
        """Commitment to ``v + delta`` with unchanged randomness
        (multiply by ``g^delta``)."""
        g_delta = pow(self.params.g, delta % self.params.q, self.params.p)
        return PedersenCommitment(
            value=(self.value * g_delta) % self.params.p, params=self.params
        )

    def _same_group(self, other: "PedersenCommitment") -> None:
        if self.params != other.params:
            raise PrivacyError("commitments from different parameter sets")

    def to_canonical(self) -> dict:
        return {"pedersen": self.value}
