"""Group signatures (API-faithful simulation).

Abouyoussef et al. [3] build patient anonymity on group signatures: any
group member can sign on behalf of the group; verifiers learn only that
*some* member signed (anonymity) and cannot tell whether two signatures
came from the same member (unlinkability); the group manager alone can
*open* a signature to identify the signer (accountability).

Simulation strategy: the manager holds a group MAC key.  A member's
signature is ``(tag, pseudonym)`` where the tag is a MAC over the message
under the group key, and the pseudonym is a fresh per-signature token the
manager can map back to the member.  Verification uses only the group's
public identity; the member registry lives inside the manager, preserving
exactly the anonymity/opening split of the real primitive within one
process.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from ..errors import PrivacyError
from ..serialization import canonical_encode


@dataclass(frozen=True)
class GroupSignature:
    """A signature attributable only to "some member of the group"."""

    group_id: str
    tag: bytes
    pseudonym: bytes

    def to_canonical(self) -> dict:
        return {"group_id": self.group_id, "tag": self.tag,
                "pseudonym": self.pseudonym}


class GroupManager:
    """Issues membership, verifies signatures, and opens them."""

    def __init__(self, group_id: str, seed: Any = 0) -> None:
        self.group_id = group_id
        material = canonical_encode({"group": group_id, "seed": seed})
        self._group_key = hashlib.sha256(b"gsk:" + material).digest()
        self._members: dict[str, bytes] = {}        # member id -> member key
        self._sign_counters: dict[str, int] = {}
        self._opening_table: dict[bytes, str] = {}  # pseudonym -> member

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def enroll(self, member_id: str) -> None:
        if member_id in self._members:
            raise PrivacyError(f"{member_id} already enrolled")
        member_key = hashlib.sha256(
            b"gmk:" + self._group_key + member_id.encode()
        ).digest()
        self._members[member_id] = member_key
        self._sign_counters[member_id] = 0

    def is_member(self, member_id: str) -> bool:
        return member_id in self._members

    @property
    def member_count(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------
    # Signing / verification
    # ------------------------------------------------------------------
    def sign(self, member_id: str, message: Any) -> GroupSignature:
        """Produce a signature as ``member_id`` (who must be enrolled)."""
        member_key = self._members.get(member_id)
        if member_key is None:
            raise PrivacyError(f"{member_id} is not a group member")
        counter = self._sign_counters[member_id]
        self._sign_counters[member_id] = counter + 1
        # Fresh pseudonym per signature -> unlinkability.
        pseudonym = hashlib.sha256(
            b"pseud:" + member_key + counter.to_bytes(8, "big")
        ).digest()
        self._opening_table[pseudonym] = member_id
        tag = hmac.new(
            self._group_key,
            pseudonym + canonical_encode(message),
            hashlib.sha256,
        ).digest()
        return GroupSignature(group_id=self.group_id, tag=tag,
                              pseudonym=pseudonym)

    def verify(self, message: Any, signature: GroupSignature) -> bool:
        """Anyone holding the group's identity can verify; the signer's
        identity is not revealed."""
        if signature.group_id != self.group_id:
            return False
        expected = hmac.new(
            self._group_key,
            signature.pseudonym + canonical_encode(message),
            hashlib.sha256,
        ).digest()
        return hmac.compare_digest(expected, signature.tag)

    # ------------------------------------------------------------------
    # Opening (manager-only de-anonymization)
    # ------------------------------------------------------------------
    def open(self, signature: GroupSignature) -> str:
        """Reveal which member produced ``signature``."""
        member = self._opening_table.get(signature.pseudonym)
        if member is None:
            raise PrivacyError("signature does not open to any member")
        return member

    def are_linkable(self, sig_a: GroupSignature, sig_b: GroupSignature) -> bool:
        """What an outside observer can tell: only pseudonym equality —
        which is never equal across two honest signatures."""
        return sig_a.pseudonym == sig_b.pseudonym
