"""Simulated peer-to-peer network.

A deterministic discrete-event network: messages between registered nodes
are delayed by a seeded latency model, can be dropped, and respect
partitions.  Consensus engines and cross-chain protocols run on top of it,
so their message counts and latency profiles are measurable without real
sockets.
"""

from .message import NetMessage, SizedList
from .simnet import LatencyModel, SimNet, NetStats, TopicFaults
from .node import ChainNode
from .gossip import GossipProtocol

__all__ = [
    "NetMessage",
    "SizedList",
    "LatencyModel",
    "SimNet",
    "NetStats",
    "TopicFaults",
    "ChainNode",
    "GossipProtocol",
]
