"""Gossip (flooding) dissemination protocol.

Public-chain style propagation: a node that first sees an item forwards it
to ``fanout`` random peers; duplicates are ignored.  Used for transaction
and block propagation in the consensus benches, and to measure coverage
versus message overhead (the dissemination trade-off the paper's
evaluation axis "network size" touches).
"""

from __future__ import annotations

import random
from typing import Callable

from .message import NetMessage
from .simnet import SimNet

OnDeliver = Callable[[str, dict], None]


class GossipProtocol:
    """Flooding gossip among a fixed peer set.

    Each participating node must call :meth:`attach` once; the protocol
    registers per-node message handling under the ``"gossip"`` topic
    namespace through the node's own dispatcher, so it composes with other
    traffic on the same :class:`SimNet`.
    """

    def __init__(self, net: SimNet, fanout: int = 4, seed: int = 0) -> None:
        self.net = net
        self.fanout = fanout
        self.rng = random.Random(seed)
        self._peers: dict[str, list[str]] = {}
        self._seen: dict[str, set[str]] = {}
        self._on_deliver: dict[str, OnDeliver] = {}

    def attach(self, node_id: str, on_deliver: OnDeliver) -> None:
        """Join ``node_id`` to the gossip mesh."""
        self._peers[node_id] = []
        self._seen[node_id] = set()
        self._on_deliver[node_id] = on_deliver
        self._rebuild_meshes()

    def _rebuild_meshes(self) -> None:
        members = sorted(self._peers)
        for node_id in members:
            others = [m for m in members if m != node_id]
            self._peers[node_id] = others

    def publish(self, origin: str, item_id: str, body: dict) -> None:
        """Inject a new item at ``origin`` and start flooding."""
        if origin not in self._peers:
            raise KeyError(f"node not attached: {origin}")
        self._seen[origin].add(item_id)
        self._on_deliver[origin](item_id, body)
        self._forward(origin, item_id, body, exclude=origin)

    def handle(self, node_id: str, msg: NetMessage) -> None:
        """Entry point a node's dispatcher calls for gossip messages."""
        item_id = str(msg.body["item_id"])
        if item_id in self._seen[node_id]:
            return
        self._seen[node_id].add(item_id)
        payload = dict(msg.body.get("payload", {}))
        self._on_deliver[node_id](item_id, payload)
        self._forward(node_id, item_id, payload, exclude=msg.sender)

    def _forward(self, sender: str, item_id: str, body: dict, exclude: str) -> None:
        candidates = [p for p in self._peers[sender] if p != exclude]
        if not candidates:
            return
        k = min(self.fanout, len(candidates))
        targets = self.rng.sample(candidates, k)
        for target in targets:
            self.net.send(
                NetMessage(
                    sender=sender,
                    recipient=target,
                    topic="gossip",
                    body={"item_id": item_id, "payload": body},
                )
            )

    def coverage(self, item_id: str) -> float:
        """Fraction of attached nodes that have seen ``item_id``."""
        if not self._seen:
            return 0.0
        holders = sum(1 for seen in self._seen.values() if item_id in seen)
        return holders / len(self._seen)

    def anti_entropy(self, item_id: str, body: dict) -> int:
        """Pull-based repair: every node still missing ``item_id``
        fetches it from a random holder.

        Probabilistic flooding leaves a small miss tail (a node may be
        chosen by none of its peers); production gossip closes it with
        periodic anti-entropy exactly like this.  Costs 2 messages
        (request + response) per missing node; returns how many nodes
        were repaired.
        """
        holders = [node for node, seen in self._seen.items()
                   if item_id in seen]
        if not holders:
            return 0
        repaired = 0
        for node, seen in self._seen.items():
            if item_id in seen:
                continue
            source = self.rng.choice(holders)
            self.net.send(NetMessage(sender=node, recipient=source,
                                     topic="gossip/pull",
                                     body={"item_id": item_id}))
            self.net.send(NetMessage(sender=source, recipient=node,
                                     topic="gossip",
                                     body={"item_id": item_id,
                                           "payload": body}))
            repaired += 1
        return repaired
