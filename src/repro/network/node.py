"""A blockchain node: chain replica + mempool + message dispatch.

``ChainNode`` is the unit the consensus clusters coordinate.  Each node
holds its own :class:`~repro.chain.blockchain.Blockchain` replica and
mempool; the consensus layer decides when a node may seal a block and how
commits propagate.
"""

from __future__ import annotations

from typing import Callable

from ..chain import Block, Blockchain, ChainParams, Mempool, Transaction
from ..errors import ChainError, SyncError
from .gossip import GossipProtocol
from .message import NetMessage
from .simnet import SimNet

TopicHandler = Callable[[NetMessage], None]


class ChainNode:
    """One network participant maintaining a chain replica."""

    def __init__(
        self,
        node_id: str,
        net: SimNet,
        params: ChainParams | None = None,
        region: str = "default",
    ) -> None:
        self.node_id = node_id
        self.net = net
        self.chain = Blockchain(params)
        self.mempool = Mempool()
        self._topic_handlers: dict[str, TopicHandler] = {}
        self.gossip: GossipProtocol | None = None
        self._sharded = None       # set by serve_shards()
        self._sync_server = None   # set by serve_sync()
        self._ops_telemetry = None   # set by serve_ops()
        self._ops_health = None
        self._ops_responses: dict[str, dict] = {}
        self._ops_seq = 0
        net.register(node_id, self.dispatch, region=region)
        self.on_topic("tx", self._handle_tx)
        self.on_topic("block", self._handle_block)
        self.on_topic("ops/metrics", self._handle_ops)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def on_topic(self, topic: str, handler: TopicHandler,
                 replace: bool = False) -> None:
        """Register the handler for ``topic``.

        A topic has exactly one handler.  Registering a *different*
        handler on an occupied topic raises :class:`ChainError` instead
        of silently shadowing the first one — a gateway, sync server,
        and ops server racing to claim overlapping topics used to win
        or lose with no diagnostic.  Pass ``replace=True`` for a
        deliberate takeover (e.g. a fresh :class:`~repro.sync.client.
        SnapshotClient` superseding the previous attempt's mailbox).
        Re-registering the *same* handler is an idempotent no-op, so
        ``serve_shards``/``serve_sync`` can be called again after a
        facade reopen.
        """
        existing = self._topic_handlers.get(topic)
        if existing is not None and existing != handler and not replace:
            raise ChainError(
                f"node {self.node_id}: topic {topic!r} already has a "
                f"handler ({existing!r}); pass replace=True to take it "
                "over deliberately"
            )
        self._topic_handlers[topic] = handler

    def dispatch(self, msg: NetMessage) -> None:
        if msg.topic == "gossip" and self.gossip is not None:
            self.gossip.handle(self.node_id, msg)
            return
        handler = self._topic_handlers.get(msg.topic)
        if handler is not None:
            handler(msg)
        # Unknown topics are silently ignored, as on a real P2P network.

    def join_gossip(self, gossip: GossipProtocol) -> None:
        self.gossip = gossip
        gossip.attach(self.node_id, self._gossip_deliver)

    def _gossip_deliver(self, item_id: str, body: dict) -> None:
        if body.get("kind") == "tx":
            tx = _tx_from_body(body)
            self.mempool.add(tx)

    # ------------------------------------------------------------------
    # Built-in handlers
    # ------------------------------------------------------------------
    def _handle_tx(self, msg: NetMessage) -> None:
        self.mempool.add(_tx_from_body(dict(msg.body)))

    def _handle_shard_tx(self, msg: NetMessage) -> None:
        # A gateway node fronting a sharded chain routes client
        # transactions into the right shard's mempool.  Routine rejects
        # (lock conflicts, full mempool) are the sender's problem to
        # retry, not grounds to abort the network's event loop.
        if self._sharded is None:
            return
        try:
            self._sharded.submit(_tx_from_body(dict(msg.body)))
        except (ChainError, TypeError):
            # TypeError: malformed body carrying no transaction.
            pass

    def _handle_block(self, msg: NetMessage) -> None:
        # Direct block push is used by the simpler consensus engines; the
        # body carries an in-process reference (simulation convenience —
        # structural validation still runs in append_block).
        block = msg.body.get("_block_ref")
        if isinstance(block, Block) and block.height == self.chain.height + 1:
            self.chain.append_block(block)
            self.mempool.remove(tx.tx_id for tx in block.transactions)

    # ------------------------------------------------------------------
    # Client-side operations
    # ------------------------------------------------------------------
    def serve_shards(self, sharded_chain) -> None:
        """Become a shard gateway: route ``"shard_tx"`` messages into a
        :class:`~repro.sharding.shardchain.ShardedChain`.  Also starts
        answering ``ops/metrics`` with the facade's telemetry snapshot
        and :meth:`~repro.sharding.shardchain.ShardedChain.health_report`
        rollup."""
        self._sharded = sharded_chain
        self.on_topic("shard_tx", self._handle_shard_tx)
        self.serve_ops(telemetry=sharded_chain.telemetry,
                       health=sharded_chain.health_report)

    def serve_ops(self, telemetry=None, health=None) -> None:
        """Answer ``ops/metrics`` requests with a metrics snapshot from
        ``telemetry`` (default: the process default) plus, when given,
        the result of the zero-arg ``health`` callable — any
        canonical-encodable mapping (a facade's ``health_report``, a
        replica's sync status)."""
        if telemetry is None:
            from ..obs.runtime import telemetry as default_telemetry

            telemetry = default_telemetry()
        self._ops_telemetry = telemetry
        if health is not None:
            self._ops_health = health

    def serve_sync(self, server) -> None:
        """Become a snapshot-sync peer: answer ``sync/offer``,
        ``sync/chunk``, and ``sync/tail`` requests from a
        :class:`~repro.sync.server.SnapshotServer`."""
        self._sync_server = server
        for topic in ("sync/offer", "sync/chunk", "sync/tail"):
            self.on_topic(topic, self._handle_sync_request)

    def _handle_sync_request(self, msg: NetMessage) -> None:
        # Requests carry {"req": True}; anything else on these topics is
        # a response addressed to a client and not ours to answer.
        body = dict(msg.body)
        if self._sync_server is None or not body.get("req"):
            return
        try:
            resp = dict(self._sync_server.handle(msg.topic, body))
        except SyncError as exc:
            resp = {"error": exc.as_dict(), "message": str(exc)}
        except (ChainError, KeyError, TypeError, ValueError) as exc:
            # A malformed request must not abort the network event loop.
            resp = {
                "error": {"reason": "bad_request"},
                "message": f"{type(exc).__name__}: {exc}",
            }
        resp["req_id"] = body.get("req_id")
        resp["resp"] = True
        self.net.send(NetMessage(sender=self.node_id,
                                 recipient=msg.sender,
                                 topic=msg.topic, body=resp))

    def _handle_ops(self, msg: NetMessage) -> None:
        """Both halves of the ``ops/metrics`` req/resp exchange (one
        node may serve and request): requests are answered iff
        :meth:`serve_ops` armed this node; responses are stashed for the
        :meth:`request_ops` that sent them."""
        body = dict(msg.body)
        if body.get("resp") and body.get("req_id"):
            self._ops_responses[body["req_id"]] = body
            return
        if not body.get("req") or self._ops_telemetry is None:
            return
        try:
            resp: dict = {
                "node": self.node_id,
                "snapshot": self._ops_telemetry.registry.snapshot(),
            }
            if self._ops_health is not None:
                resp["health"] = dict(self._ops_health())
        except Exception as exc:  # noqa: BLE001 - never kill the loop
            resp = {
                "error": {"reason": "ops_error"},
                "message": f"{type(exc).__name__}: {exc}",
            }
        resp["req_id"] = body.get("req_id")
        resp["resp"] = True
        self.net.send(NetMessage(sender=self.node_id,
                                 recipient=msg.sender,
                                 topic="ops/metrics", body=resp))

    def request_ops(self, peer: str, max_retries: int = 3) -> dict:
        """Client side: fetch ``peer``'s metrics snapshot (and health
        rollup, if it serves one) over the network.  Stop-and-wait via
        the shared :mod:`repro.net_retry` policy (exponential backoff,
        seeded jitter), like the sync client; raises :class:`SyncError`
        when the peer never answers or answered with an error."""
        from ..net_retry import RetryPolicy, request_with_retries

        req_id = f"{self.node_id}:ops:{self._ops_seq}"
        self._ops_seq += 1
        resp = request_with_retries(
            self, peer, "ops/metrics",
            body={"req": True, "req_id": req_id},
            req_id=req_id,
            responses=self._ops_responses,
            policy=RetryPolicy(max_retries=max_retries),
        )
        if resp is None:
            raise SyncError(
                f"peer {peer} did not answer ops/metrics after "
                f"{max_retries + 1} attempts", reason="peer_unresponsive",
            )
        if "error" in resp:
            raise SyncError(
                f"peer {peer} refused ops/metrics: "
                f"{resp.get('message', '')}",
                reason=str(resp["error"].get("reason", "peer_error")),
            )
        return resp

    def send_shard_transaction(self, gateway_id: str, tx: Transaction) -> bool:
        """Client-side: submit a transaction to a shard gateway node."""
        return self.net.send(
            NetMessage(sender=self.node_id, recipient=gateway_id,
                       topic="shard_tx", body=_tx_to_body(tx))
        )

    def submit_transaction(self, tx: Transaction, gossip: bool = False) -> None:
        """Accept a client transaction locally and optionally gossip it."""
        self.mempool.add(tx)
        if gossip and self.gossip is not None:
            self.gossip.publish(
                self.node_id, f"tx:{tx.tx_id}", _tx_to_body(tx)
            )

    def push_block(self, block: Block) -> None:
        """Send a committed block to every peer (proposer's broadcast)."""
        for peer in self.net.node_ids:
            if peer == self.node_id:
                continue
            self.net.send(
                NetMessage(
                    sender=self.node_id,
                    recipient=peer,
                    topic="block",
                    body={"height": block.height, "_block_ref": block},
                )
            )


def _tx_to_body(tx: Transaction) -> dict:
    return {"kind": "tx", "_tx_ref": tx}


def _tx_from_body(body: dict) -> Transaction:
    tx = body.get("_tx_ref")
    if not isinstance(tx, Transaction):
        raise TypeError("message body does not carry a transaction")
    return tx
