"""Network message envelope."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..serialization import canonical_encode


class SizedList(list):
    """A message-body value that declares its serialized size up front.

    :attr:`NetMessage.size_bytes` honors a ``size_bytes`` attribute on
    body values instead of re-encoding them; bulk payloads (snapshot
    tail batches) use this so stats accounting stays O(1) per message
    instead of re-serializing megabytes of frames it already carries.
    """

    def __init__(self, items=(), size_bytes: int = 0) -> None:
        super().__init__(items)
        self.size_bytes = size_bytes


@dataclass(frozen=True)
class NetMessage:
    """A typed message between two simulated nodes.

    ``topic`` routes the message to a handler on the receiving node
    (e.g. ``"tx"``, ``"block"``, ``"pbft/prepare"``, ``"bridge/vote"``).
    """

    sender: str
    recipient: str
    topic: str
    body: Mapping[str, Any] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        # Bodies may carry in-process object references (blocks,
        # transactions) for simulation convenience; account for their real
        # serialized size instead of failing canonical encoding.
        total = len(self.topic) + 16
        for key, value in self.body.items():
            total += len(key)
            declared = getattr(value, "size_bytes", None)
            if isinstance(declared, int):
                total += declared
                continue
            try:
                total += len(canonical_encode(value))
            except Exception:  # noqa: BLE001 - best-effort accounting
                total += 64
        return total

    def to_canonical(self) -> dict:
        return {
            "sender": self.sender,
            "recipient": self.recipient,
            "topic": self.topic,
            "body": dict(self.body),
        }
