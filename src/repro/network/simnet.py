"""Discrete-event network simulator.

The simulator owns a :class:`~repro.clock.SimClock`; sending a message
schedules its delivery at ``now + latency(src, dst)``.  Running the event
loop advances the clock to each delivery time in order, so end-to-end
protocol latencies come out of the same timeline as HTLC timelocks and
block timestamps.

Determinism: all jitter and drop decisions come from a ``random.Random``
seeded at construction.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..clock import SimClock
from ..errors import NetworkError
from ..obs.runtime import telemetry as default_telemetry
from .message import NetMessage

Handler = Callable[[NetMessage], None]


@dataclass
class LatencyModel:
    """Per-link latency: ``base + jitter`` ticks, optionally per-region.

    ``region_penalty`` is added when the two endpoints are in different
    regions — the knob used to model geo-distributed consortium members.
    """

    base: int = 5
    jitter: int = 3
    region_penalty: int = 20

    def sample(self, rng: random.Random, same_region: bool) -> int:
        latency = self.base
        if self.jitter > 0:
            latency += rng.randrange(self.jitter + 1)
        if not same_region:
            latency += self.region_penalty
        return latency


@dataclass
class TopicFaults:
    """Deterministic fault plan for one topic (snapshot-sync hardening).

    Probabilities are sampled from the net's seeded RNG, so a given
    ``(seed, traffic)`` pair always injects the same faults:

    * ``drop`` — the message silently disappears;
    * ``duplicate`` — a second copy is queued with an independent
      latency sample (the receiver sees it twice, possibly far apart);
    * ``reorder`` — the message is held ``reorder_delay`` extra ticks so
      later sends overtake it.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: int = 50

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder"):
            p = getattr(self, name)
            if not 0.0 <= p < 1.0:
                raise NetworkError(f"{name} probability must be in [0, 1)")


@dataclass
class NetStats:
    """Counters the benchmarks read off after a run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_reordered: int = 0
    bytes_sent: int = 0
    by_topic: dict = field(default_factory=dict)

    def record_send(self, msg: NetMessage) -> None:
        self.messages_sent += 1
        self.bytes_sent += msg.size_bytes
        self.by_topic[msg.topic] = self.by_topic.get(msg.topic, 0) + 1


class SimNet:
    """The network fabric nodes register with.

    Per-instance counters stay on :attr:`stats` (the accessor the
    benchmarks read); every update is mirrored into the telemetry
    registry with a ``topic`` label — drops, duplicates, and reorders
    attributable per topic from one ``snapshot()`` — and a collector
    publishes the pending-queue depth gauge.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        drop_rate: float = 0.0,
        seed: int = 0,
        clock: SimClock | None = None,
        telemetry=None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        self.latency = latency or LatencyModel()
        self.drop_rate = drop_rate
        self.rng = random.Random(seed)
        self.clock = clock or SimClock()
        self.stats = NetStats()
        self.telemetry = telemetry if telemetry is not None \
            else default_telemetry()
        registry = self.telemetry.registry
        self._m_delivered = registry.counter("net_messages_delivered_total")
        self._m_bytes = registry.counter("net_bytes_sent_total")
        # (sent, dropped, duplicated, reordered) counter handles per
        # topic, cached so a send pays dict probes, not label hashing.
        self._m_by_topic: dict[str, tuple] = {}
        registry.gauge("net_pending_messages")
        registry.register_collector(self._collect_metrics)
        self._handlers: dict[str, Handler] = {}
        self._regions: dict[str, str] = {}
        # Nodes that were registered and have since unregistered: frames
        # addressed to them count as undeliverable instead of raising.
        self._departed: set[str] = set()
        self._partitions: list[frozenset[str]] = []
        self._topic_faults: dict[str, TopicFaults] = {}
        # Event queue entries: (deliver_at, seq, message)
        self._queue: list[tuple[int, int, NetMessage]] = []
        self._seq = 0

    def _collect_metrics(self) -> None:
        self.telemetry.registry.gauge("net_pending_messages").set(
            len(self._queue)
        )

    def _count_undeliverable(self, topic: str) -> None:
        """One frame addressed to a just-disconnected node: same metric
        name the asyncio gateway uses for its socket writes, so
        operators read disconnect races off one series."""
        self.telemetry.registry.counter(
            "gateway_frames_undeliverable_total",
            topic=topic, transport="simnet",
        ).inc()

    def _topic_counters(self, topic: str) -> tuple:
        handles = self._m_by_topic.get(topic)
        if handles is None:
            registry = self.telemetry.registry
            handles = tuple(
                registry.counter(f"net_messages_{verb}_total", topic=topic)
                for verb in ("sent", "dropped", "duplicated", "reordered")
            )
            self._m_by_topic[topic] = handles
        return handles

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def register(self, node_id: str, handler: Handler, region: str = "default") -> None:
        """Attach a node; ``handler`` receives its messages."""
        if node_id in self._handlers:
            raise NetworkError(f"node id already registered: {node_id}")
        self._handlers[node_id] = handler
        self._regions[node_id] = region
        self._departed.discard(node_id)

    def unregister(self, node_id: str) -> None:
        """Detach a node (client disconnect).  The id is remembered so a
        frame already addressed to it — a reply racing the disconnect —
        is *counted* as undeliverable rather than raising ``unknown
        recipient`` in the middle of the sender's handler (which would
        abort the whole event loop) or silently vanishing."""
        if self._handlers.pop(node_id, None) is not None:
            self._departed.add(node_id)
        self._regions.pop(node_id, None)

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._handlers)

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the network: messages may only flow within a group.

        Call with no arguments to heal all partitions.
        """
        self._partitions = [frozenset(g) for g in groups]

    def heal(self) -> None:
        self._partitions = []

    # ------------------------------------------------------------------
    # Fault injection (per-topic, deterministic under the net's seed)
    # ------------------------------------------------------------------
    def inject_faults(self, topic: str, drop: float = 0.0,
                      duplicate: float = 0.0, reorder: float = 0.0,
                      reorder_delay: int = 50) -> None:
        """Attach a :class:`TopicFaults` plan to ``topic`` (replacing any
        existing plan; all-zero probabilities remove it)."""
        plan = TopicFaults(drop=drop, duplicate=duplicate,
                           reorder=reorder, reorder_delay=reorder_delay)
        if drop == duplicate == reorder == 0.0:
            self._topic_faults.pop(topic, None)
        else:
            self._topic_faults[topic] = plan

    def clear_faults(self, topic: str | None = None) -> None:
        """Remove the fault plan for ``topic`` (all topics when None)."""
        if topic is None:
            self._topic_faults.clear()
        else:
            self._topic_faults.pop(topic, None)

    def _can_reach(self, src: str, dst: str) -> bool:
        if not self._partitions:
            return True
        for group in self._partitions:
            if src in group and dst in group:
                return True
        return False

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, msg: NetMessage) -> bool:
        """Queue a message for delivery; returns False if dropped/cut.

        Sending to a node that was *never* registered is a programming
        error and raises.  Sending to a node that has **unregistered**
        (a capture client that just disconnected — the reply half of an
        in-flight exchange) is a normal race on a real network: the
        frame is counted undeliverable and ``False`` comes back, so a
        reply inside a dispatch handler never aborts the event loop.
        """
        if msg.recipient not in self._handlers:
            if msg.recipient in self._departed:
                self.stats.record_send(msg)
                self.stats.messages_dropped += 1
                self._topic_counters(msg.topic)[1].inc()
                self._count_undeliverable(msg.topic)
                return False
            raise NetworkError(f"unknown recipient: {msg.recipient}")
        self.stats.record_send(msg)
        sent, dropped, duplicated, reordered = \
            self._topic_counters(msg.topic)
        sent.inc()
        self._m_bytes.inc(msg.size_bytes)
        if not self._can_reach(msg.sender, msg.recipient):
            self.stats.messages_dropped += 1
            dropped.inc()
            return False
        if self.drop_rate > 0 and self.rng.random() < self.drop_rate:
            self.stats.messages_dropped += 1
            dropped.inc()
            return False
        faults = self._topic_faults.get(msg.topic)
        if faults is not None and faults.drop > 0 \
                and self.rng.random() < faults.drop:
            self.stats.messages_dropped += 1
            dropped.inc()
            return False
        same_region = (
            self._regions.get(msg.sender) == self._regions.get(msg.recipient)
        )
        latency = self.latency.sample(self.rng, same_region)
        if faults is not None:
            if faults.reorder > 0 and self.rng.random() < faults.reorder:
                latency += faults.reorder_delay
                self.stats.messages_reordered += 1
                reordered.inc()
            if faults.duplicate > 0 and self.rng.random() < faults.duplicate:
                extra = self.latency.sample(self.rng, same_region)
                heapq.heappush(
                    self._queue,
                    (self.clock.now() + extra, self._seq, msg),
                )
                self._seq += 1
                self.stats.messages_duplicated += 1
                duplicated.inc()
        deliver_at = self.clock.now() + latency
        heapq.heappush(self._queue, (deliver_at, self._seq, msg))
        self._seq += 1
        return True

    def broadcast(self, sender: str, topic: str, body: dict,
                  exclude: Iterable[str] = ()) -> int:
        """Send to every registered node except sender and ``exclude``."""
        skip = set(exclude) | {sender}
        count = 0
        for node_id in self.node_ids:
            if node_id in skip:
                continue
            self.send(NetMessage(sender=sender, recipient=node_id,
                                 topic=topic, body=body))
            count += 1
        return count

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> NetMessage | None:
        """Deliver the single next message (advancing the clock to it)."""
        if not self._queue:
            return None
        deliver_at, _, msg = heapq.heappop(self._queue)
        self.clock.advance_to(deliver_at)
        handler = self._handlers.get(msg.recipient)
        if handler is None:  # node left after the send
            self.stats.messages_dropped += 1
            self._topic_counters(msg.topic)[1].inc()
            self._count_undeliverable(msg.topic)
            return None
        handler(msg)
        self.stats.messages_delivered += 1
        self._m_delivered.inc()
        return msg

    def run(self, max_messages: int | None = None, until: int | None = None) -> int:
        """Deliver queued messages until idle, a cap, or a deadline.

        Handlers may send more messages; those are processed too.  Returns
        the number of messages delivered.
        """
        delivered = 0
        while self._queue:
            if max_messages is not None and delivered >= max_messages:
                break
            if until is not None and self._queue[0][0] > until:
                break
            if self.step() is not None:
                delivered += 1
        return delivered
