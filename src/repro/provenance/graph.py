"""The provenance DAG.

Provenance points backwards in time: a generated entity points at the
activity that generated it, an activity points at the entities it used.
The graph is therefore acyclic by construction, and this class *enforces*
that — an edge that would close a cycle is rejected, because a cyclic
provenance story ("A was derived from B, which was derived from A") is
logically meaningless and usually indicates forgery or a capture bug.

Queries:

* :meth:`lineage` — everything an artifact transitively came from
  (Vassago's "provenance query" primitive);
* :meth:`impact` — everything transitively derived from an artifact
  (what SciLedger's invalidation mechanism must cascade over);
* :meth:`derivation_chain` — the entity-only ancestry path;
* :meth:`topological_order` — a replay schedule for workflow re-execution.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Callable, Iterable, Iterator

from ..errors import CycleDetected, ProvenanceError, UnknownEntity
from .model import (
    LINEAGE_RELATIONS,
    NodeKind,
    ProvNode,
    Relation,
    RelationKind,
    check_relation_signature,
)


class ProvenanceGraph:
    """A typed, acyclic provenance graph."""

    def __init__(self) -> None:
        self._nodes: dict[str, ProvNode] = {}
        self._out: defaultdict[str, list[Relation]] = defaultdict(list)
        self._in: defaultdict[str, list[Relation]] = defaultdict(list)
        self._edge_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: ProvNode) -> ProvNode:
        """Add a node; re-adding the same id with different content fails."""
        existing = self._nodes.get(node.node_id)
        if existing is not None:
            if existing != node:
                raise ProvenanceError(
                    f"node {node.node_id!r} already exists with different "
                    "content; provenance nodes are immutable"
                )
            return existing
        self._nodes[node.node_id] = node
        return node

    def add_entity(self, node_id: str, created_at: int = 0, **attrs) -> ProvNode:
        from .model import entity

        return self.add_node(entity(node_id, created_at, **attrs))

    def add_activity(self, node_id: str, created_at: int = 0, **attrs) -> ProvNode:
        from .model import activity

        return self.add_node(activity(node_id, created_at, **attrs))

    def add_agent(self, node_id: str, created_at: int = 0, **attrs) -> ProvNode:
        from .model import agent

        return self.add_node(agent(node_id, created_at, **attrs))

    def relate(
        self,
        source: str,
        kind: RelationKind,
        target: str,
        timestamp: int = 0,
        **attributes,
    ) -> Relation:
        """Add a typed edge; validates node kinds and acyclicity."""
        src = self._require(source)
        dst = self._require(target)
        check_relation_signature(kind, src.kind, dst.kind)
        if source == target:
            raise CycleDetected(f"self-loop on {source!r}")
        if self._reaches(target, source):
            raise CycleDetected(
                f"edge {source!r} -> {target!r} ({kind.value}) would close "
                "a cycle"
            )
        relation = Relation(source=source, target=target, kind=kind,
                            attributes=attributes, timestamp=timestamp)
        self._out[source].append(relation)
        self._in[target].append(relation)
        self._edge_count += 1
        return relation

    def _reaches(self, start: str, goal: str) -> bool:
        """Is ``goal`` reachable from ``start`` along existing edges?"""
        if start == goal:
            return True
        seen = {start}
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for rel in self._out[current]:
                nxt = rel.target
                if nxt == goal:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return False

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def _require(self, node_id: str) -> ProvNode:
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownEntity(f"no provenance node {node_id!r}")
        return node

    def node(self, node_id: str) -> ProvNode:
        return self._require(node_id)

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def nodes(self, kind: NodeKind | None = None) -> Iterator[ProvNode]:
        for node in self._nodes.values():
            if kind is None or node.kind == kind:
                yield node

    def edges(self, kind: RelationKind | None = None) -> Iterator[Relation]:
        for relations in self._out.values():
            for rel in relations:
                if kind is None or rel.kind == kind:
                    yield rel

    def out_edges(self, node_id: str) -> list[Relation]:
        self._require(node_id)
        return list(self._out[node_id])

    def in_edges(self, node_id: str) -> list[Relation]:
        self._require(node_id)
        return list(self._in[node_id])

    # ------------------------------------------------------------------
    # Traversals
    # ------------------------------------------------------------------
    def _walk(
        self,
        start: str,
        edge_map: defaultdict[str, list[Relation]],
        follow: Callable[[Relation], bool],
        pick: Callable[[Relation], str],
    ) -> list[str]:
        self._require(start)
        seen: set[str] = set()
        order: list[str] = []
        frontier = deque([start])
        while frontier:
            current = frontier.popleft()
            for rel in edge_map[current]:
                if not follow(rel):
                    continue
                nxt = pick(rel)
                if nxt not in seen:
                    seen.add(nxt)
                    order.append(nxt)
                    frontier.append(nxt)
        return order

    def lineage(
        self,
        node_id: str,
        relations: Iterable[RelationKind] = LINEAGE_RELATIONS,
    ) -> list[str]:
        """Transitive origins of ``node_id`` (BFS order, excl. itself)."""
        allowed = frozenset(relations)
        return self._walk(
            node_id,
            self._out,
            follow=lambda rel: rel.kind in allowed,
            pick=lambda rel: rel.target,
        )

    def impact(
        self,
        node_id: str,
        relations: Iterable[RelationKind] = LINEAGE_RELATIONS,
    ) -> list[str]:
        """Everything transitively built *from* ``node_id``.

        This is the set an invalidation must cascade over: if the node is
        found to be wrong, all of these are suspect.
        """
        allowed = frozenset(relations)
        return self._walk(
            node_id,
            self._in,
            follow=lambda rel: rel.kind in allowed,
            pick=lambda rel: rel.source,
        )

    def derivation_chain(self, node_id: str) -> list[str]:
        """Entity-only ancestry following ``WAS_DERIVED_FROM`` edges,
        oldest last.  Raises if the node is not an entity."""
        node = self._require(node_id)
        if node.kind != NodeKind.ENTITY:
            raise ProvenanceError("derivation chains start at entities")
        chain = [node_id]
        current = node_id
        while True:
            derived = [r for r in self._out[current]
                       if r.kind == RelationKind.WAS_DERIVED_FROM]
            if not derived:
                break
            # Deterministic choice when multiple parents exist.
            derived.sort(key=lambda r: (r.timestamp, r.target))
            current = derived[0].target
            chain.append(current)
        return chain

    def generating_activity(self, entity_id: str) -> str | None:
        """The activity that generated ``entity_id``, if recorded."""
        for rel in self._out[entity_id]:
            if rel.kind == RelationKind.WAS_GENERATED_BY:
                return rel.target
        return None

    def attributed_agents(self, entity_id: str) -> list[str]:
        self._require(entity_id)
        return [r.target for r in self._out[entity_id]
                if r.kind == RelationKind.WAS_ATTRIBUTED_TO]

    def topological_order(self) -> list[str]:
        """All nodes, dependencies (edge targets) first.

        Since provenance edges point backwards in time, reversing a
        standard Kahn order over out-edges yields a valid re-execution
        schedule.
        """
        in_degree = {node_id: 0 for node_id in self._nodes}
        for relations in self._out.values():
            for rel in relations:
                in_degree[rel.target] += 1
        frontier = deque(sorted(
            node_id for node_id, deg in in_degree.items() if deg == 0
        ))
        order: list[str] = []
        while frontier:
            current = frontier.popleft()
            order.append(current)
            for rel in sorted(self._out[current],
                              key=lambda r: (r.target, r.kind.value)):
                in_degree[rel.target] -= 1
                if in_degree[rel.target] == 0:
                    frontier.append(rel.target)
        if len(order) != len(self._nodes):  # pragma: no cover - guarded by relate()
            raise CycleDetected("graph contains a cycle")
        order.reverse()
        return order

    # ------------------------------------------------------------------
    # Subgraphs & export
    # ------------------------------------------------------------------
    def subgraph(self, node_ids: Iterable[str]) -> "ProvenanceGraph":
        """The induced subgraph over ``node_ids``."""
        wanted = set(node_ids)
        sub = ProvenanceGraph()
        for node_id in wanted:
            sub.add_node(self._require(node_id))
        for relations in self._out.values():
            for rel in relations:
                if rel.source in wanted and rel.target in wanted:
                    sub._out[rel.source].append(rel)
                    sub._in[rel.target].append(rel)
                    sub._edge_count += 1
        return sub

    def lineage_subgraph(self, node_id: str) -> "ProvenanceGraph":
        """The induced subgraph over a node and its full lineage."""
        return self.subgraph([node_id, *self.lineage(node_id)])

    def to_dict(self) -> dict:
        """Canonical-encodable snapshot (what gets hashed/anchored)."""
        return {
            "nodes": [n.to_canonical()
                      for n in sorted(self._nodes.values(),
                                      key=lambda n: n.node_id)],
            "edges": sorted(
                (r.to_canonical() for rels in self._out.values() for r in rels),
                key=lambda e: (e["source"], e["target"], e["kind"]),
            ),
        }

    def digest(self) -> bytes:
        from ..crypto.hashing import hash_canonical

        return hash_canonical(self.to_dict())
