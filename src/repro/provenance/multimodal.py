"""Multi-modal data tokenization (paper §6.2 future work).

"Another important topic is managing multi-modal data, which includes
various types such as text, images, and videos.  Different data types
require unique tokenization and methods to ensure their uniqueness,
essential for accurate provenance tracking."

Each modality gets a tokenizer that reduces the raw artifact to a
*canonical token set* plus a digest:

* **text** — normalized (case/whitespace-folded) content hash plus
  shingled token digests, so reformatted copies of the same text map to
  the same identity while edits are localized;
* **image** — a perceptual-style block-mean signature over the decoded
  byte grid (synthetic stand-in for pHash), robust to byte-level
  re-encoding of identical pixel content;
* **video** — per-segment digests over fixed windows plus a rolling
  signature, so a clipped segment can be matched to its source;
* **binary** — plain content hash (the fallback).

The :class:`MultiModalTokenizer` registry picks by declared modality and
produces :class:`ModalToken` records that drop straight into the capture
pipeline, giving every artifact a modality-aware, deduplicatable
identity (the "uniqueness" requirement).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from ..errors import ProvenanceError


@dataclass(frozen=True)
class ModalToken:
    """The modality-aware identity of one artifact."""

    modality: str
    digest: bytes                     # primary identity
    feature_digests: tuple[bytes, ...] = ()   # sub-identities for matching

    @property
    def token_id(self) -> str:
        return f"{self.modality}:{self.digest.hex()[:24]}"

    def similarity(self, other: "ModalToken") -> float:
        """Fraction of shared feature digests (0 when modalities differ)."""
        if self.modality != other.modality:
            return 0.0
        if not self.feature_digests or not other.feature_digests:
            return 1.0 if self.digest == other.digest else 0.0
        mine = set(self.feature_digests)
        theirs = set(other.feature_digests)
        union = mine | theirs
        if not union:
            return 0.0
        return len(mine & theirs) / len(union)


def _digest(data: bytes, tag: bytes) -> bytes:
    return hashlib.sha256(tag + data).digest()


# ---------------------------------------------------------------------------
# Tokenizers
# ---------------------------------------------------------------------------
def tokenize_text(content: bytes, shingle_words: int = 4) -> ModalToken:
    """Normalize and shingle text so formatting changes do not change
    identity but edits are detectable and localizable."""
    try:
        text = content.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProvenanceError(f"not valid utf-8 text: {exc}") from exc
    words = text.lower().split()
    normalized = " ".join(words).encode()
    shingles = []
    for i in range(max(1, len(words) - shingle_words + 1)):
        window = " ".join(words[i:i + shingle_words]).encode()
        shingles.append(_digest(window, b"txt-sh"))
    return ModalToken(
        modality="text",
        digest=_digest(normalized, b"txt"),
        feature_digests=tuple(shingles),
    )


def tokenize_image(content: bytes, grid: int = 8) -> ModalToken:
    """Block-mean signature over the byte grid (perceptual-hash
    stand-in): identical 'pixel' content re-wrapped in a different
    container keeps its identity."""
    if not content:
        raise ProvenanceError("empty image")
    block_size = max(1, len(content) // (grid * grid))
    means = []
    for i in range(grid * grid):
        block = content[i * block_size:(i + 1) * block_size]
        if block:
            means.append(sum(block) // len(block))
        else:
            means.append(0)
    signature = bytes(means)
    features = tuple(
        _digest(signature[i:i + grid], b"img-row") for i in
        range(0, len(signature), grid)
    )
    return ModalToken(
        modality="image",
        digest=_digest(signature, b"img"),
        feature_digests=features,
    )


def tokenize_video(content: bytes, segment_bytes: int = 1024) -> ModalToken:
    """Per-segment digests: a clip excised from the source shares the
    source's segment features, so lineage can be established."""
    if not content:
        raise ProvenanceError("empty video")
    segments = tuple(
        _digest(content[i:i + segment_bytes], b"vid-seg")
        for i in range(0, len(content), segment_bytes)
    )
    return ModalToken(
        modality="video",
        digest=_digest(b"".join(segments), b"vid"),
        feature_digests=segments,
    )


def tokenize_binary(content: bytes) -> ModalToken:
    return ModalToken(modality="binary", digest=_digest(content, b"bin"))


Tokenizer = Callable[[bytes], ModalToken]


@dataclass
class MultiModalTokenizer:
    """Registry dispatching artifacts to modality tokenizers."""

    tokenizers: dict = field(default_factory=lambda: {
        "text": tokenize_text,
        "image": tokenize_image,
        "video": tokenize_video,
        "binary": tokenize_binary,
    })

    def register(self, modality: str, tokenizer: Tokenizer) -> None:
        self.tokenizers[modality] = tokenizer

    def tokenize(self, modality: str, content: bytes) -> ModalToken:
        tokenizer = self.tokenizers.get(modality)
        if tokenizer is None:
            raise ProvenanceError(
                f"no tokenizer for modality {modality!r}; "
                f"known: {sorted(self.tokenizers)}"
            )
        return tokenizer(content)

    def to_record_fields(self, modality: str, content: bytes) -> dict:
        """Fields ready to merge into a provenance record."""
        token = self.tokenize(modality, content)
        return {
            "modality": token.modality,
            "token_id": token.token_id,
            "feature_count": len(token.feature_digests),
        }

    def match(self, modality: str, a: bytes, b: bytes) -> float:
        """Similarity of two artifacts of the same modality."""
        return self.tokenize(modality, a).similarity(
            self.tokenize(modality, b)
        )
