"""PROV-DM-style provenance model.

The paper defines provenance as metadata describing "the origins, history,
and evolution of an end product", spanning "data, processes, activities,
and users" (§2.2).  The W3C PROV data model captures exactly this with
three node kinds and a small set of relations; we implement the subset
every surveyed system's model reduces to, plus the *invalidation* relation
SciBlock/SciLedger add for workflow re-execution.

Node kinds
----------
* **Entity** — a data artifact (file version, dataset, evidence item).
* **Activity** — a process that uses and generates entities.
* **Agent** — a user, organization, or software component bearing
  responsibility.

Relations (source kind → target kind)
-------------------------------------
* ``WAS_GENERATED_BY``   entity → activity
* ``USED``               activity → entity
* ``WAS_DERIVED_FROM``   entity → entity
* ``WAS_ATTRIBUTED_TO``  entity → agent
* ``WAS_ASSOCIATED_WITH`` activity → agent
* ``WAS_INFORMED_BY``    activity → activity
* ``ACTED_ON_BEHALF_OF`` agent → agent
* ``WAS_INVALIDATED_BY`` entity → activity
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..crypto.hashing import DOMAIN_RECORD, hash_canonical
from ..errors import ProvenanceError


class NodeKind(str, Enum):
    ENTITY = "entity"
    ACTIVITY = "activity"
    AGENT = "agent"


class RelationKind(str, Enum):
    WAS_GENERATED_BY = "wasGeneratedBy"
    USED = "used"
    WAS_DERIVED_FROM = "wasDerivedFrom"
    WAS_ATTRIBUTED_TO = "wasAttributedTo"
    WAS_ASSOCIATED_WITH = "wasAssociatedWith"
    WAS_INFORMED_BY = "wasInformedBy"
    ACTED_ON_BEHALF_OF = "actedOnBehalfOf"
    WAS_INVALIDATED_BY = "wasInvalidatedBy"


# Allowed (source_kind, target_kind) per relation.
RELATION_SIGNATURES: dict[RelationKind, tuple[NodeKind, NodeKind]] = {
    RelationKind.WAS_GENERATED_BY: (NodeKind.ENTITY, NodeKind.ACTIVITY),
    RelationKind.USED: (NodeKind.ACTIVITY, NodeKind.ENTITY),
    RelationKind.WAS_DERIVED_FROM: (NodeKind.ENTITY, NodeKind.ENTITY),
    RelationKind.WAS_ATTRIBUTED_TO: (NodeKind.ENTITY, NodeKind.AGENT),
    RelationKind.WAS_ASSOCIATED_WITH: (NodeKind.ACTIVITY, NodeKind.AGENT),
    RelationKind.WAS_INFORMED_BY: (NodeKind.ACTIVITY, NodeKind.ACTIVITY),
    RelationKind.ACTED_ON_BEHALF_OF: (NodeKind.AGENT, NodeKind.AGENT),
    RelationKind.WAS_INVALIDATED_BY: (NodeKind.ENTITY, NodeKind.ACTIVITY),
}

# Relations along which "where did this come from?" (lineage) flows.
LINEAGE_RELATIONS = frozenset({
    RelationKind.WAS_GENERATED_BY,
    RelationKind.USED,
    RelationKind.WAS_DERIVED_FROM,
    RelationKind.WAS_INFORMED_BY,
})


@dataclass(frozen=True)
class ProvNode:
    """A node in the provenance graph."""

    node_id: str
    kind: NodeKind
    attributes: Mapping[str, Any] = field(default_factory=dict)
    created_at: int = 0

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ProvenanceError("node_id must be non-empty")

    def to_canonical(self) -> dict:
        return {
            "node_id": self.node_id,
            "kind": self.kind.value,
            "attributes": dict(self.attributes),
            "created_at": self.created_at,
        }

    def digest(self) -> bytes:
        return hash_canonical(self.to_canonical(), DOMAIN_RECORD)

    def attr(self, key: str, default: Any = None) -> Any:
        return self.attributes.get(key, default)


@dataclass(frozen=True)
class Relation:
    """A typed edge ``source --kind--> target``."""

    source: str
    target: str
    kind: RelationKind
    attributes: Mapping[str, Any] = field(default_factory=dict)
    timestamp: int = 0

    def to_canonical(self) -> dict:
        return {
            "source": self.source,
            "target": self.target,
            "kind": self.kind.value,
            "attributes": dict(self.attributes),
            "timestamp": self.timestamp,
        }

    def digest(self) -> bytes:
        return hash_canonical(self.to_canonical(), DOMAIN_RECORD)


def check_relation_signature(
    kind: RelationKind, source_kind: NodeKind, target_kind: NodeKind
) -> None:
    """Raise :class:`ProvenanceError` when the edge typing is illegal."""
    expected = RELATION_SIGNATURES[kind]
    if (source_kind, target_kind) != expected:
        raise ProvenanceError(
            f"{kind.value} must connect {expected[0].value} -> "
            f"{expected[1].value}, got {source_kind.value} -> "
            f"{target_kind.value}"
        )


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------
def entity(node_id: str, created_at: int = 0, **attributes: Any) -> ProvNode:
    """Build an entity node."""
    return ProvNode(node_id=node_id, kind=NodeKind.ENTITY,
                    attributes=attributes, created_at=created_at)


def activity(node_id: str, created_at: int = 0, **attributes: Any) -> ProvNode:
    """Build an activity node."""
    return ProvNode(node_id=node_id, kind=NodeKind.ACTIVITY,
                    attributes=attributes, created_at=created_at)


def agent(node_id: str, created_at: int = 0, **attributes: Any) -> ProvNode:
    """Build an agent node."""
    return ProvNode(node_id=node_id, kind=NodeKind.AGENT,
                    attributes=attributes, created_at=created_at)
