"""Anchoring provenance records to a blockchain.

The storage-locus decision the paper's §6.1 highlights: storing full
records on-chain is simple but expensive; the scalable design batches
record *hashes* into a Merkle tree and anchors only the root in a chain
transaction.  A record is then provable with:

* the record itself (from the off-chain database),
* a Merkle inclusion proof against the anchored root,
* the block header containing the anchor transaction.

``AnchorService`` implements the batched design (and, for the EVAL-STORE
ablation, an ``inline`` mode that puts whole records on-chain).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..chain import Blockchain, Transaction, TxKind
from ..crypto.merkle import MerkleProof, MerkleTree, verify_proof
from ..errors import AnchorError
from .records import record_digest


@dataclass(frozen=True)
class AnchorReceipt:
    """Where one batch landed on-chain."""

    anchor_id: str
    merkle_root: bytes
    block_height: int
    tx_id: str
    record_count: int


@dataclass(frozen=True)
class AnchoredProof:
    """Everything needed to verify a record against the chain."""

    anchor_id: str
    merkle_proof: MerkleProof
    merkle_root: bytes
    block_height: int
    tx_id: str

    @property
    def size_bytes(self) -> int:
        return self.merkle_proof.size_bytes + len(self.merkle_root) + 48


@dataclass
class _PendingBatch:
    records: list[dict] = field(default_factory=list)
    digests: list[bytes] = field(default_factory=list)
    # Pending ids mirrored in a set so per-enqueue dedup is O(1) instead
    # of a scan over the pending batch.
    ids: set[str] = field(default_factory=set)


class AnchorService:
    """Batches provenance records and anchors them on a chain.

    ``mode``:

    * ``"batched"`` (default) — Merkle root per batch on-chain, bodies
      off-chain;
    * ``"inline"`` — every record fully on-chain (the expensive baseline).

    The service tracks, per record id, which anchor covers it and the
    record's leaf index, so proofs are O(log batch) to produce.
    """

    def __init__(
        self,
        chain: Blockchain,
        sealer=None,
        batch_size: int = 64,
        mode: str = "batched",
        sender: str = "anchor-service",
    ) -> None:
        if mode not in ("batched", "inline"):
            raise AnchorError(f"unknown anchor mode {mode!r}")
        if batch_size < 1:
            raise AnchorError("batch_size must be >= 1")
        self.chain = chain
        self.sealer = sealer            # ConsensusEngine or None (direct append)
        self.batch_size = batch_size
        self.mode = mode
        self.sender = sender
        self._pending = _PendingBatch()
        self._anchor_count = 0
        self.receipts: list[AnchorReceipt] = []
        # record_id -> (anchor position in receipts, leaf index, digest)
        self._locator: dict[str, tuple[int, int, bytes]] = {}
        self._trees: list[MerkleTree] = []
        self.bytes_on_chain = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def enqueue(self, record: Mapping[str, Any]) -> AnchorReceipt | None:
        """Queue a record; flushes automatically at ``batch_size``.

        Returns the receipt when this enqueue triggered a flush.
        """
        record = dict(record)
        record_id = str(record.get("record_id", ""))
        if not record_id:
            raise AnchorError("record lacks record_id")
        if record_id in self._locator or record_id in self._pending.ids:
            raise AnchorError(f"record {record_id!r} already anchored/pending")
        self._pending.records.append(record)
        self._pending.digests.append(record_digest(record))
        self._pending.ids.add(record_id)
        if len(self._pending.records) >= self.batch_size:
            return self.flush()
        return None

    def flush(self) -> AnchorReceipt | None:
        """Anchor whatever is pending; returns the receipt (or ``None``
        when nothing was pending)."""
        if not self._pending.records:
            return None
        batch, self._pending = self._pending, _PendingBatch()
        anchor_id = f"anchor-{self.chain.chain_id}-{self._anchor_count:06d}"
        self._anchor_count += 1
        tree = MerkleTree(batch.digests)
        payload: dict[str, Any] = {
            "anchor_id": anchor_id,
            "merkle_root": tree.root,
            "record_count": len(batch.records),
            "mode": self.mode,
        }
        if self.mode == "inline":
            payload["records"] = batch.records
        # Sealed: the anchor tx is hashed (id), sized (bytes_on_chain),
        # and Merkle-hashed (block build) — sealing pins one canonical
        # encoding for all three and freezes the payload.
        tx = Transaction(
            sender=self.sender,
            kind=TxKind.PROVENANCE,
            payload=payload,
            timestamp=self.chain.head.header.timestamp,
        ).seal()
        if self.sealer is not None:
            block, _ = self.sealer.seal(self.chain, [tx])
            self.chain.append_block(block)
        else:
            self.chain.append_block(self.chain.build_block([tx]))
        receipt = AnchorReceipt(
            anchor_id=anchor_id,
            merkle_root=tree.root,
            block_height=self.chain.height,
            tx_id=tx.tx_id,
            record_count=len(batch.records),
        )
        position = len(self.receipts)
        self.receipts.append(receipt)
        self._trees.append(tree)
        for index, record in enumerate(batch.records):
            self._locator[str(record["record_id"])] = (
                position, index, batch.digests[index]
            )
        self.bytes_on_chain += tx.size_bytes
        return receipt

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def is_anchored(self, record_id: str) -> bool:
        return record_id in self._locator

    def receipt_for(self, record_id: str) -> AnchorReceipt | None:
        loc = self._locator.get(record_id)
        return self.receipts[loc[0]] if loc else None

    def prove(self, record_id: str) -> AnchoredProof:
        """Produce the inclusion proof for an anchored record."""
        loc = self._locator.get(record_id)
        if loc is None:
            raise AnchorError(f"record {record_id!r} is not anchored")
        position, index, _ = loc
        receipt = self.receipts[position]
        return AnchoredProof(
            anchor_id=receipt.anchor_id,
            merkle_proof=self._trees[position].prove(index),
            merkle_root=receipt.merkle_root,
            block_height=receipt.block_height,
            tx_id=receipt.tx_id,
        )

    def verify(self, record: Mapping[str, Any], proof: AnchoredProof) -> bool:
        """Full verification against the live chain:

        1. the record's digest is under the proof's Merkle root;
        2. that root is what the anchor transaction committed on-chain;
        3. the anchor transaction is in the block the proof claims.
        """
        digest = record_digest(dict(record))
        if proof.merkle_proof.root_from(
            _leaf(digest)
        ) != proof.merkle_root:
            return False
        found = self.chain.find_transaction(proof.tx_id)
        if found is None:
            return False
        block, tx = found
        if block.height != proof.block_height:
            return False
        return tx.payload.get("merkle_root") == proof.merkle_root

    def verify_or_raise(self, record: Mapping[str, Any],
                        proof: AnchoredProof) -> None:
        if not self.verify(record, proof):
            raise AnchorError(
                f"anchored proof failed for record "
                f"{record.get('record_id')!r}"
            )

    def prove_for_light_client(self, record_id: str):
        """Produce the header-only verification bundle for a record.

        Unlike :meth:`prove`/:meth:`verify`, the result is checkable by a
        :class:`~repro.chain.lightclient.LightClient` holding nothing but
        the chain's headers.
        """
        from ..chain.lightclient import LightAnchorBundle

        loc = self._locator.get(record_id)
        if loc is None:
            raise AnchorError(f"record {record_id!r} is not anchored")
        position, index, _ = loc
        receipt = self.receipts[position]
        located = self.chain.prove_transaction(receipt.tx_id)
        if located is None:
            raise AnchorError(
                f"anchor transaction {receipt.tx_id[:12]} not on chain"
            )
        block, tx_proof = located
        anchor_tx = block.find_transaction(receipt.tx_id)[1]
        return LightAnchorBundle(
            record_proof=self._trees[position].prove(index),
            batch_root=receipt.merkle_root,
            anchor_tx=anchor_tx,
            tx_proof=tx_proof,
            block_height=block.height,
        )

    # ------------------------------------------------------------------
    # Durability (state dump/restore for persistent deployments)
    # ------------------------------------------------------------------
    def dump_state(self) -> dict:
        """Everything needed to rebuild the service after a restart, as a
        canonical-encodable mapping: anchored batch membership (record
        ids + digests, from which the Merkle trees are rebuilt), receipt
        fields, and the pending batch.  The anchor *transactions* are not
        here — they live on the chain, which has its own store."""
        batches: list[list] = [
            [None] * receipt.record_count for receipt in self.receipts
        ]
        for record_id, (pos, index, digest) in self._locator.items():
            batches[pos][index] = [record_id, digest]
        return {
            "anchor_count": self._anchor_count,
            "bytes_on_chain": self.bytes_on_chain,
            "receipts": [
                {
                    "anchor_id": r.anchor_id,
                    "merkle_root": r.merkle_root,
                    "block_height": r.block_height,
                    "tx_id": r.tx_id,
                    "record_count": r.record_count,
                }
                for r in self.receipts
            ],
            "batches": batches,
            "pending_records": list(self._pending.records),
        }

    def restore_state(self, state: Mapping[str, Any]) -> None:
        """Inverse of :meth:`dump_state`; replaces all service state."""
        self._anchor_count = int(state["anchor_count"])
        self.bytes_on_chain = int(state["bytes_on_chain"])
        self.receipts = [
            AnchorReceipt(
                anchor_id=r["anchor_id"],
                merkle_root=r["merkle_root"],
                block_height=r["block_height"],
                tx_id=r["tx_id"],
                record_count=r["record_count"],
            )
            for r in state["receipts"]
        ]
        self._trees = []
        self._locator = {}
        for position, members in enumerate(state["batches"]):
            digests = [digest for _, digest in members]
            self._trees.append(MerkleTree(digests))
            for index, (record_id, digest) in enumerate(members):
                self._locator[str(record_id)] = (position, index, digest)
        self._pending = _PendingBatch()
        for record in state["pending_records"]:
            self._pending.records.append(dict(record))
            self._pending.digests.append(record_digest(dict(record)))
            self._pending.ids.add(str(record["record_id"]))

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending.records)

    @property
    def anchored_count(self) -> int:
        return len(self._locator)


def _leaf(digest: bytes) -> bytes:
    from ..crypto.merkle import leaf_hash

    return leaf_hash(digest)
