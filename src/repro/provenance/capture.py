"""Provenance capture pathways — the paper's Figure 3, executable.

Figure 3 sketches four ways metadata reaches provenance storage:

1. **Direct**: the user has direct access to the data store and sends the
   metadata to provenance storage themselves.
2. **Store-mediated**: the user accesses the data; the *data store* sends
   the metadata (ProvChain's hooked cloud store works this way).
3. **Third-party**: the user lacks direct access; a centralized or
   decentralized third party authenticates the access and forwards the
   metadata.
4. **Multi-source**: several parties each contribute part of the record,
   possibly to different provenance stores.

Each pathway is a class delivering records into a shared
:class:`CaptureSink`.  The pathways differ — measurably, see the FIG3
bench — in hop count, authentication work, and failure modes; the sink
normalizes everything into the provenance database and, optionally, the
anchor pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from ..errors import AccessDenied, CaptureError
from ..storage.cloudstore import CloudObjectStore, StoreOperation
from ..storage.provdb import ProvenanceDatabase
from .records import DOMAIN_SCHEMAS, validate_record

Authenticator = Callable[[str, str], bool]   # (actor, resource) -> allowed?
RecordBuilder = Callable[[StoreOperation], dict]


@dataclass
class CaptureMetrics:
    """Per-pathway accounting read by the FIG3 bench."""

    pathway: str
    operations: int = 0
    records_delivered: int = 0
    records_rejected: int = 0
    messages: int = 0          # logical hops metadata travelled
    auth_checks: int = 0


class CaptureSink:
    """Terminal point of every pathway: validate, store, optionally anchor."""

    def __init__(self, database: ProvenanceDatabase | None = None,
                 anchor_service=None) -> None:
        self.database = database if database is not None else ProvenanceDatabase()
        self.anchor_service = anchor_service
        self.delivered = 0

    def deliver(self, record: Mapping[str, Any]) -> dict:
        """Accept one record: schema-validate (when the domain is known),
        insert into the database, and enqueue for anchoring."""
        record = dict(record)
        if record.get("domain") in DOMAIN_SCHEMAS:
            validate_record(record)
        if "record_id" not in record:
            raise CaptureError("record lacks record_id")
        self.database.insert(record)
        if self.anchor_service is not None:
            self.anchor_service.enqueue(record)
        self.delivered += 1
        return record


class DirectCapture:
    """Pathway 1: the data owner reports their own operations.

    Cheapest (one hop) but trusts the reporter completely — the integrity
    argument only starts once the record is anchored.
    """

    def __init__(self, sink: CaptureSink) -> None:
        self.sink = sink
        self.metrics = CaptureMetrics(pathway="direct")

    def record_operation(self, record: Mapping[str, Any]) -> dict:
        self.metrics.operations += 1
        self.metrics.messages += 1           # user -> provenance storage
        delivered = self.sink.deliver(record)
        self.metrics.records_delivered += 1
        return delivered


class StoreMediatedCapture:
    """Pathway 2: the data store itself emits the metadata.

    Subscribes to a :class:`CloudObjectStore`'s operation stream and
    converts each operation into a provenance record.  The reporter is
    the infrastructure, not the user — ProvChain's design.
    """

    def __init__(
        self,
        sink: CaptureSink,
        store: CloudObjectStore,
        record_builder: RecordBuilder | None = None,
        record_prefix: str = "cap",
    ) -> None:
        self.sink = sink
        self.store = store
        self.metrics = CaptureMetrics(pathway="store_mediated")
        self._builder = record_builder or self._default_builder
        self._prefix = record_prefix
        store.add_observer(self._on_operation)

    def _default_builder(self, op: StoreOperation) -> dict:
        return {
            "record_id": f"{self._prefix}-{op.op_id:08d}",
            "domain": "cloud_storage",
            "subject": op.object_key,
            "actor": op.user,
            "operation": op.op,
            "timestamp": op.timestamp,
            "version": op.version,
            "content_hash": op.content_hash.hex(),
            "details": dict(op.details),
        }

    def _on_operation(self, op: StoreOperation) -> None:
        self.metrics.operations += 1
        self.metrics.messages += 1           # store -> provenance storage
        try:
            self.sink.deliver(self._builder(op))
            self.metrics.records_delivered += 1
        except CaptureError:
            self.metrics.records_rejected += 1


class ThirdPartyCapture:
    """Pathways 3a/3b: a third party authenticates access, then reports.

    * centralized — a single authenticator decides (one auth check, two
      hops: user → third party → provenance storage);
    * decentralized — a quorum of ``authenticators`` must approve (k auth
      checks and k+1 hops), removing the single point of trust at the
      price the FIG3 bench quantifies.
    """

    def __init__(
        self,
        sink: CaptureSink,
        authenticators: Sequence[Authenticator],
        quorum: int | None = None,
    ) -> None:
        if not authenticators:
            raise CaptureError("need at least one authenticator")
        self.sink = sink
        self.authenticators = list(authenticators)
        self.quorum = len(authenticators) if quorum is None else quorum
        if not 1 <= self.quorum <= len(self.authenticators):
            raise CaptureError("quorum out of range")
        mode = "centralized" if len(self.authenticators) == 1 else "decentralized"
        self.metrics = CaptureMetrics(pathway=f"third_party_{mode}")

    def request(self, actor: str, resource: str,
                record: Mapping[str, Any]) -> dict:
        """Mediated capture: authenticate ``actor`` on ``resource``,
        then deliver the record.  Raises :class:`AccessDenied` when the
        quorum is not met (and counts the rejection)."""
        self.metrics.operations += 1
        self.metrics.messages += 1            # user -> third party
        approvals = 0
        for authenticator in self.authenticators:
            self.metrics.auth_checks += 1
            self.metrics.messages += 1        # consult each authenticator
            if authenticator(actor, resource):
                approvals += 1
            if approvals >= self.quorum:
                break
        if approvals < self.quorum:
            self.metrics.records_rejected += 1
            raise AccessDenied(
                f"{actor} denied on {resource}: {approvals}/{self.quorum} "
                "authenticator approvals"
            )
        self.metrics.messages += 1            # third party -> prov storage
        delivered = self.sink.deliver(record)
        self.metrics.records_delivered += 1
        return delivered


class MultiSourceCapture:
    """Pathway 4: several reporters contribute fragments of one record.

    A record becomes deliverable once ``required_sources`` *distinct*
    reporters have contributed.  Overlapping fields must agree —
    a disagreement is evidence of a lying reporter and fails the capture
    loudly rather than recording a half-true story.
    """

    def __init__(self, sink: CaptureSink, required_sources: int = 2) -> None:
        if required_sources < 1:
            raise CaptureError("required_sources must be >= 1")
        self.sink = sink
        self.required_sources = required_sources
        self.metrics = CaptureMetrics(pathway="multi_source")
        self._pending: dict[str, dict] = {}
        self._sources: dict[str, set[str]] = {}

    def report(self, source: str, record_id: str,
               fragment: Mapping[str, Any]) -> dict | None:
        """Contribute a fragment; returns the merged record once complete."""
        self.metrics.operations += 1
        self.metrics.messages += 1
        pending = self._pending.setdefault(record_id, {"record_id": record_id})
        for key, value in fragment.items():
            if key == "record_id":
                continue
            if key in pending and pending[key] != value:
                self.metrics.records_rejected += 1
                del self._pending[record_id]
                self._sources.pop(record_id, None)
                raise CaptureError(
                    f"conflicting fragment for {record_id!r} field {key!r}: "
                    f"{pending[key]!r} vs {value!r}"
                )
            pending[key] = value
        sources = self._sources.setdefault(record_id, set())
        sources.add(source)
        if len(sources) < self.required_sources:
            return None
        record = self._pending.pop(record_id)
        self._sources.pop(record_id, None)
        delivered = self.sink.deliver(record)
        self.metrics.records_delivered += 1
        return delivered

    @property
    def pending_count(self) -> int:
        return len(self._pending)
