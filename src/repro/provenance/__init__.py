"""Provenance core.

A domain-neutral provenance layer modeled on W3C PROV-DM:

* :mod:`~repro.provenance.model` — entities, activities, agents and the
  relations between them;
* :mod:`~repro.provenance.graph` — the provenance DAG with lineage and
  impact queries;
* :mod:`~repro.provenance.records` — the per-domain record schemas of the
  paper's Table 1;
* :mod:`~repro.provenance.capture` — the four capture pathways of
  Figure 3;
* :mod:`~repro.provenance.anchor` — batching records into Merkle roots
  anchored on a blockchain, with verifiable inclusion proofs;
* :mod:`~repro.provenance.query` — point/range/lineage queries, optional
  cryptographic verification, and the repeated-query cache the paper's
  §6.2 calls for.
"""

from .model import (
    NodeKind,
    ProvNode,
    Relation,
    RelationKind,
    entity,
    activity,
    agent,
)
from .graph import ProvenanceGraph
from .records import (
    DOMAIN_SCHEMAS,
    RecordSchema,
    make_record,
    validate_record,
)
from .capture import (
    CaptureSink,
    DirectCapture,
    StoreMediatedCapture,
    ThirdPartyCapture,
    MultiSourceCapture,
)
from .anchor import AnchorReceipt, AnchorService, AnchoredProof
from .query import ProvenanceQueryEngine, QueryCache, QueryStats, VerifiedAnswer
from .multimodal import ModalToken, MultiModalTokenizer

__all__ = [
    "NodeKind",
    "ProvNode",
    "Relation",
    "RelationKind",
    "entity",
    "activity",
    "agent",
    "ProvenanceGraph",
    "DOMAIN_SCHEMAS",
    "RecordSchema",
    "make_record",
    "validate_record",
    "CaptureSink",
    "DirectCapture",
    "StoreMediatedCapture",
    "ThirdPartyCapture",
    "MultiSourceCapture",
    "AnchorReceipt",
    "AnchorService",
    "AnchoredProof",
    "ProvenanceQueryEngine",
    "QueryCache",
    "QueryStats",
    "VerifiedAnswer",
    "ModalToken",
    "MultiModalTokenizer",
]
