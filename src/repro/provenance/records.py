"""Domain provenance record schemas — the paper's Table 1, executable.

Table 1 lists the fields a provenance record carries in three domains:

=========================  ========================  =====================
Product Supply Chain       Digital Forensics         Scientific Collab.
=========================  ========================  =====================
Unique Product ID          Case Number               Task ID
Batch or Lot Number        Investigation Stage       Workflow ID
Mfg & Expiration Date      Case Start Date           Execution Time
Travel Trace               Case Closure Date         User ID
Product Type or Category   File Types                Input Data
Manufacturer ID            Access Patterns           Output Data
Quick Access URL/QR Code   Files Dependency          Invalidated Results
=========================  ========================  =====================

Each column becomes a :class:`RecordSchema`; healthcare and machine
learning (the remaining Table 2 domains) get schemas assembled from the
considerations in §4.3–4.4.  ``analysis.tables.render_table1`` regenerates
the published table from these registrations, which is the TAB1
experiment.

Records are plain dicts so they flow directly into
:class:`~repro.storage.provdb.ProvenanceDatabase` and the anchor layer;
the schema provides construction, validation, and hashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..crypto.hashing import DOMAIN_RECORD, hash_canonical
from ..errors import RecordValidationError

# Core fields every record carries regardless of domain; these drive the
# ProvenanceDatabase indexes.
CORE_FIELDS = ("record_id", "domain", "subject", "actor", "operation",
               "timestamp")

Validator = Callable[[Any], bool]


def _non_empty_str(value: Any) -> bool:
    return isinstance(value, str) and bool(value)


def _non_negative_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def _str_list(value: Any) -> bool:
    return isinstance(value, (list, tuple)) and all(
        isinstance(v, str) for v in value
    )


@dataclass(frozen=True)
class RecordSchema:
    """A domain's provenance record layout.

    ``fields`` maps field name -> (validator, paper_label, required).
    ``paper_label`` preserves the exact Table 1 wording so the table can
    be regenerated verbatim from code.
    """

    domain: str
    fields: Mapping[str, tuple[Validator, str, bool]] = field(
        default_factory=dict
    )

    def required_fields(self) -> list[str]:
        return [name for name, (_, _, req) in self.fields.items() if req]

    def paper_labels(self) -> list[str]:
        return [label for (_, label, _) in self.fields.values()]

    def validate(self, record: Mapping[str, Any]) -> None:
        """Raise :class:`RecordValidationError` on any schema violation."""
        for core in CORE_FIELDS:
            if core not in record:
                raise RecordValidationError(
                    f"{self.domain}: missing core field {core!r}"
                )
        if record["domain"] != self.domain:
            raise RecordValidationError(
                f"record domain {record['domain']!r} does not match schema "
                f"{self.domain!r}"
            )
        for name, (validator, label, required) in self.fields.items():
            if name not in record:
                if required:
                    raise RecordValidationError(
                        f"{self.domain}: missing field {name!r} ({label})"
                    )
                continue
            if not validator(record[name]):
                raise RecordValidationError(
                    f"{self.domain}: field {name!r} ({label}) failed "
                    f"validation with value {record[name]!r}"
                )
        unknown = (
            set(record)
            - set(self.fields)
            - set(CORE_FIELDS)
            - {"extra", "anchor"}
        )
        if unknown:
            raise RecordValidationError(
                f"{self.domain}: unknown fields {sorted(unknown)}"
            )


SUPPLY_CHAIN_SCHEMA = RecordSchema(
    domain="supply_chain",
    fields={
        "product_id": (_non_empty_str, "Unique Product ID", True),
        "batch_number": (_non_empty_str, "Batch or Lot Number", True),
        "manufacturing_date": (_non_negative_int,
                               "Manufacturing and Expiration Date", True),
        "expiration_date": (_non_negative_int,
                            "Manufacturing and Expiration Date", False),
        "travel_trace": (_str_list, "Travel Trace", True),
        "product_type": (_non_empty_str, "Product Type or Category", True),
        "manufacturer_id": (_non_empty_str, "Manufacturer ID", True),
        "access_url": (_non_empty_str, "Quick Access URL or QR Code", False),
    },
)

FORENSICS_SCHEMA = RecordSchema(
    domain="digital_forensics",
    fields={
        "case_number": (_non_empty_str, "Case Number", True),
        "stage": (_non_empty_str, "Investigation Stage", True),
        "case_start": (_non_negative_int, "Case Start Date", True),
        "case_closure": (_non_negative_int, "Case Closure Date", False),
        "file_types": (_str_list, "File Types", True),
        "access_patterns": (_str_list, "Access Patterns", False),
        "file_dependencies": (_str_list, "Files Dependency", False),
    },
)

SCIENTIFIC_SCHEMA = RecordSchema(
    domain="scientific",
    fields={
        "task_id": (_non_empty_str, "Task ID", True),
        "workflow_id": (_non_empty_str, "Workflow ID", True),
        "execution_time": (_non_negative_int, "Execution Time", True),
        "user_id": (_non_empty_str, "User ID", True),
        "input_data": (_str_list, "Input Data", True),
        "output_data": (_str_list, "Output Data", True),
        "invalidated_results": (_str_list, "Invalidated Results", False),
    },
)

# The remaining Table 2 domains, with fields assembled from the paper's
# §4.3 (healthcare: EHR lifecycle, consent, regulation) and §4.4
# (ML: datasets, operations, models, training rounds).
HEALTHCARE_SCHEMA = RecordSchema(
    domain="healthcare",
    fields={
        "patient_pseudonym": (_non_empty_str, "Patient Pseudonym", True),
        "ehr_id": (_non_empty_str, "EHR Record ID", True),
        "provider_id": (_non_empty_str, "Provider ID", True),
        "consent_ref": (_non_empty_str, "Consent Reference", False),
        "record_types": (_str_list, "Record Types", True),
        "regulation": (_non_empty_str, "Governing Regulation", False),
    },
)

ML_SCHEMA = RecordSchema(
    domain="machine_learning",
    fields={
        "asset_id": (_non_empty_str, "Asset ID", True),
        "asset_type": (lambda v: v in ("dataset", "operation", "model"),
                       "Asset Type", True),
        "training_round": (_non_negative_int, "Training Round", False),
        "parent_assets": (_str_list, "Parent Assets", True),
        "metrics_digest": (_non_empty_str, "Metrics Digest", False),
        "contributor_id": (_non_empty_str, "Contributor ID", True),
    },
)

DOMAIN_SCHEMAS: dict[str, RecordSchema] = {
    schema.domain: schema
    for schema in (
        SUPPLY_CHAIN_SCHEMA,
        FORENSICS_SCHEMA,
        SCIENTIFIC_SCHEMA,
        HEALTHCARE_SCHEMA,
        ML_SCHEMA,
    )
}

# Table 1's published columns (the regeneration target for TAB1).
TABLE1_DOMAINS = ("supply_chain", "digital_forensics", "scientific")


def make_record(
    domain: str,
    record_id: str,
    subject: str,
    actor: str,
    operation: str,
    timestamp: int,
    **domain_fields: Any,
) -> dict:
    """Build and validate a provenance record for ``domain``.

    >>> rec = make_record(
    ...     "scientific", "r1", subject="out.csv", actor="alice",
    ...     operation="execute", timestamp=5, task_id="t1",
    ...     workflow_id="w1", execution_time=3, user_id="alice",
    ...     input_data=["in.csv"], output_data=["out.csv"])
    >>> rec["domain"]
    'scientific'
    """
    schema = DOMAIN_SCHEMAS.get(domain)
    if schema is None:
        raise RecordValidationError(
            f"unknown domain {domain!r}; known: {sorted(DOMAIN_SCHEMAS)}"
        )
    record = {
        "record_id": record_id,
        "domain": domain,
        "subject": subject,
        "actor": actor,
        "operation": operation,
        "timestamp": timestamp,
        **domain_fields,
    }
    schema.validate(record)
    return record


def validate_record(record: Mapping[str, Any]) -> None:
    """Validate against the schema named in the record's ``domain``."""
    domain = record.get("domain")
    schema = DOMAIN_SCHEMAS.get(str(domain))
    if schema is None:
        raise RecordValidationError(f"unknown domain {domain!r}")
    schema.validate(record)


def record_digest(record: Mapping[str, Any]) -> bytes:
    """The hash that goes into Merkle batches and on-chain registries."""
    # The anchor annotation is excluded: it is added *after* hashing.
    content = {k: v for k, v in record.items() if k != "anchor"}
    return hash_canonical(content, DOMAIN_RECORD)
