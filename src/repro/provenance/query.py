"""Provenance query engine.

Implements the paper's §6.1 "Provenance Query" consideration and the
§6.2 future-work item on repeated queries:

* **point** queries by record id,
* **history** queries over a subject (all operations on one artifact),
* **actor** and **time-range** queries,
* **lineage** queries over a :class:`~repro.provenance.graph.ProvenanceGraph`,
* each optionally **verified** — every returned record is accompanied by
  an anchored Merkle proof checked against the chain, so the caller gets
  the "alternative validation method" §6.1 asks for;
* a **repeated-query cache** with hit/latency accounting, since
  "identical queries are frequently made, leading to redundant data
  retrievals" (§6.2).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import QueryError
from ..storage.provdb import ProvenanceDatabase
from .anchor import AnchorService, AnchoredProof
from .graph import ProvenanceGraph


@dataclass
class QueryStats:
    """Engine-level accounting (the EVAL-QUERY bench reads this)."""

    queries: int = 0
    records_returned: int = 0
    proofs_produced: int = 0
    proofs_verified: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


@dataclass(frozen=True)
class VerifiedAnswer:
    """A query result with integrity evidence.

    ``verified`` is True only if *every* record carried a valid anchored
    proof.  ``unanchored`` lists record ids found in the database but not
    (yet) covered by any anchor — the caller decides whether to trust
    them (they may simply be in a pending batch).
    """

    records: tuple[dict, ...]
    proofs: tuple[AnchoredProof | None, ...]
    verified: bool
    unanchored: tuple[str, ...] = ()


class QueryCache:
    """A bounded LRU cache over query results keyed by query signature."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise QueryError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[tuple, Any] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def get(self, key: tuple) -> Any | None:
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: tuple, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate_all(self) -> None:
        """Writers call this after new records land (coarse but safe)."""
        self.invalidations += len(self._entries)
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class ProvenanceQueryEngine:
    """Queries over the provenance database, graph, and chain anchors."""

    def __init__(
        self,
        database: ProvenanceDatabase,
        anchor_service: AnchorService | None = None,
        graph: ProvenanceGraph | None = None,
        cache: QueryCache | None = None,
    ) -> None:
        self.database = database
        self.anchor_service = anchor_service
        self.graph = graph
        self.cache = cache
        self.stats = QueryStats()
        # Proof memo for repeated verified queries: an anchored record's
        # proof is immutable once its anchor transaction is committed, so
        # re-proving on every repeat is pure waste.  Verification against
        # the live chain still runs per query (trust is not cached).
        self._proof_memo: dict[str, AnchoredProof] = {}

    # ------------------------------------------------------------------
    # Unverified queries
    # ------------------------------------------------------------------
    def point(self, record_id: str) -> dict:
        """Fetch one record by id."""
        return self._cached(("point", record_id),
                            lambda: self.database.get(record_id))

    def history(self, subject: str) -> list[dict]:
        """All records about ``subject``, oldest first."""
        def run() -> list[dict]:
            records = self.database.by_subject(subject)
            records.sort(key=lambda r: (r.get("timestamp", 0),
                                        r.get("record_id", "")))
            return records
        return self._cached(("history", subject), run)

    def by_actor(self, actor: str) -> list[dict]:
        return self._cached(("actor", actor),
                            lambda: self.database.by_actor(actor))

    def time_range(self, start: int, end: int) -> list[dict]:
        return self._cached(("range", start, end),
                            lambda: self.database.by_time_range(start, end))

    def lineage_ids(self, node_id: str) -> list[str]:
        """Transitive origins of a graph node (requires a graph)."""
        if self.graph is None:
            raise QueryError("engine has no provenance graph")
        return self._cached(("lineage", node_id),
                            lambda: self.graph.lineage(node_id))

    def impact_ids(self, node_id: str) -> list[str]:
        if self.graph is None:
            raise QueryError("engine has no provenance graph")
        return self._cached(("impact", node_id),
                            lambda: self.graph.impact(node_id))

    # ------------------------------------------------------------------
    # Verified queries
    # ------------------------------------------------------------------
    def point_verified(self, record_id: str) -> VerifiedAnswer:
        self._require_anchor_service()
        return self._verify_records([self.point(record_id)])

    def history_verified(self, subject: str) -> VerifiedAnswer:
        self._require_anchor_service()
        return self._verify_records(self.history(subject))

    def _require_anchor_service(self) -> None:
        if self.anchor_service is None:
            raise QueryError("verified queries need an anchor service")

    def _verify_records(self, records: list[dict]) -> VerifiedAnswer:
        if self.anchor_service is None:
            raise QueryError("verified queries need an anchor service")
        proofs: list[AnchoredProof | None] = []
        unanchored: list[str] = []
        all_good = True
        for record in records:
            record_id = str(record.get("record_id"))
            if not self.anchor_service.is_anchored(record_id):
                proofs.append(None)
                unanchored.append(record_id)
                all_good = False
                continue
            proof = self._proof_memo.get(record_id)
            if proof is None:
                proof = self.anchor_service.prove(record_id)
                self.stats.proofs_produced += 1
                self._proof_memo[record_id] = proof
            # The anchor annotation added post-hoc must not break hashes:
            # record_digest excludes it (see records.record_digest).
            ok = self.anchor_service.verify(record, proof)
            self.stats.proofs_verified += 1
            if not ok:
                all_good = False
            proofs.append(proof)
        return VerifiedAnswer(
            records=tuple(records),
            proofs=tuple(proofs),
            verified=all_good and bool(records),
            unanchored=tuple(unanchored),
        )

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _cached(self, key: tuple, producer: Callable[[], Any]) -> Any:
        self.stats.queries += 1
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.stats.cache_hits += 1
                self._count(hit)
                return hit
            self.stats.cache_misses += 1
        result = producer()
        if self.cache is not None:
            self.cache.put(key, result)
        self._count(result)
        return result

    def _count(self, result: Any) -> None:
        if isinstance(result, list):
            self.stats.records_returned += len(result)
        elif isinstance(result, dict):
            self.stats.records_returned += 1

    def notify_write(self) -> None:
        """Invalidate caches after new records are ingested."""
        if self.cache is not None:
            self.cache.invalidate_all()
        # Conservative: a write may coincide with a reorg that re-anchors
        # records, so drop memoized proofs too.
        self._proof_memo.clear()
