"""Distributed Merkle forest for case integrity (ForensiBlock-style).

ForensiBlock [12] verifies the integrity of a forensic *case* — a growing
set of records spread across investigation stages — with a "distributed
Merkle tree": each stage maintains its own subtree, and a top tree commits
to the per-stage roots.  Verifying one record therefore needs only the
record's stage subtree plus the small top tree, and stages can be checked
(or delegated to different custodians) independently.

The same structure serves any sharded provenance log, so it lives in
``crypto`` rather than the forensics domain module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import InvalidProof, UnknownEntity
from .merkle import MerkleProof, MerkleTree, leaf_hash, verify_proof


@dataclass(frozen=True)
class ForestProof:
    """Two-level proof: record → stage root → forest root."""

    stage: str
    stage_proof: MerkleProof
    stage_root: bytes
    top_proof: MerkleProof

    @property
    def size_bytes(self) -> int:
        return (
            self.stage_proof.size_bytes
            + self.top_proof.size_bytes
            + len(self.stage_root)
            + len(self.stage)
        )


class CaseForest:
    """A forest of per-stage Merkle trees with a committing top tree.

    Stages are ordered by first insertion; the top tree's leaves are
    ``(stage_name, stage_root)`` pairs, so renaming or reordering stages
    is tamper-evident too.

    >>> forest = CaseForest()
    >>> forest.add("collection", {"evidence": "disk-image-1"})
    0
    >>> proof = forest.prove("collection", 0)
    >>> forest.verify({"evidence": "disk-image-1"}, proof)
    True
    """

    def __init__(self) -> None:
        self._stages: dict[str, MerkleTree] = {}
        self._stage_order: list[str] = []
        self._top: MerkleTree | None = None
        self._dirty = True

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, stage: str, record: Any) -> int:
        """Add ``record`` under ``stage``; returns the leaf index."""
        if stage not in self._stages:
            self._stages[stage] = MerkleTree()
            self._stage_order.append(stage)
        index = self._stages[stage].append(record)
        self._dirty = True
        return index

    def add_many(self, stage: str, records: Iterable[Any]) -> None:
        for record in records:
            self.add(stage, record)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def stages(self) -> list[str]:
        return list(self._stage_order)

    def stage_size(self, stage: str) -> int:
        self._require_stage(stage)
        return len(self._stages[stage])

    def stage_root(self, stage: str) -> bytes:
        self._require_stage(stage)
        return self._stages[stage].root

    @property
    def root(self) -> bytes:
        """Forest root committing to every stage subtree."""
        self._rebuild_top()
        assert self._top is not None
        return self._top.root

    def _rebuild_top(self) -> None:
        if not self._dirty and self._top is not None:
            return
        leaves = [
            {"stage": name, "root": self._stages[name].root}
            for name in self._stage_order
        ]
        self._top = MerkleTree(leaves)
        self._dirty = False

    def _require_stage(self, stage: str) -> None:
        if stage not in self._stages:
            raise UnknownEntity(f"no such stage: {stage!r}")

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove(self, stage: str, index: int) -> ForestProof:
        """Prove that leaf ``index`` of ``stage`` is under the forest root."""
        self._require_stage(stage)
        self._rebuild_top()
        assert self._top is not None
        stage_tree = self._stages[stage]
        stage_position = self._stage_order.index(stage)
        return ForestProof(
            stage=stage,
            stage_proof=stage_tree.prove(index),
            stage_root=stage_tree.root,
            top_proof=self._top.prove(stage_position),
        )

    def verify(self, record: Any, proof: ForestProof) -> bool:
        """Check a two-level proof against the current forest root."""
        return self.verify_against(self.root, record, proof)

    @staticmethod
    def verify_against(root: bytes, record: Any, proof: ForestProof) -> bool:
        """Check ``proof`` for ``record`` against an explicit forest ``root``.

        This is what an external auditor does: they hold only the anchored
        forest root, not the forest.
        """
        # Level 1: record under the claimed stage root.
        if proof.stage_proof.root_from(leaf_hash(record)) != proof.stage_root:
            return False
        # Level 2: (stage, stage_root) under the forest root.
        top_leaf = {"stage": proof.stage, "root": proof.stage_root}
        return verify_proof(root, top_leaf, proof.top_proof)

    def verify_or_raise(self, record: Any, proof: ForestProof) -> None:
        if not self.verify(record, proof):
            raise InvalidProof(
                f"forest proof failed for stage {proof.stage!r} "
                f"leaf {proof.stage_proof.leaf_index}"
            )
