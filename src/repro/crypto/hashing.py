"""Hashing helpers with domain separation.

All hashes in the library are SHA-256.  Each *kind* of hash (transaction,
block header, Merkle leaf, Merkle interior node, provenance record) is
domain-separated with a one-byte tag so that, e.g., a Merkle leaf can never
be reinterpreted as an interior node — the classic second-preimage attack
on naive Merkle trees (CVE-2012-2459 style).
"""

from __future__ import annotations

import hashlib
from typing import Any

from ..serialization import canonical_encode

# Domain-separation tags.  One byte each; listed here so the whole
# namespace is visible at a glance.
DOMAIN_LEAF = b"\x00"
DOMAIN_NODE = b"\x01"
DOMAIN_TX = b"\x02"
DOMAIN_BLOCK = b"\x03"
DOMAIN_RECORD = b"\x04"
DOMAIN_SIG = b"\x05"
DOMAIN_COMMIT = b"\x06"
DOMAIN_KEY = b"\x07"
DOMAIN_XCHAIN = b"\x08"
DOMAIN_SHARD = b"\x09"

HASH_SIZE = 32
ZERO_HASH = b"\x00" * HASH_SIZE


def hash_bytes(data: bytes, domain: bytes = b"") -> bytes:
    """SHA-256 of ``domain || data`` as raw bytes."""
    h = hashlib.sha256()
    h.update(domain)
    h.update(data)
    return h.digest()


def hash_canonical(value: Any, domain: bytes = b"") -> bytes:
    """Hash an arbitrary canonical-encodable value."""
    return hash_bytes(canonical_encode(value), domain)


def hash_hex(value: Any, domain: bytes = b"") -> str:
    """Hex digest of :func:`hash_canonical` — the form stored in headers."""
    return hash_canonical(value, domain).hex()


def combine(left: bytes, right: bytes, domain: bytes = DOMAIN_NODE) -> bytes:
    """Hash two child digests into a parent digest (Merkle interior)."""
    return hash_bytes(left + right, domain)


class HashChain:
    """An append-only hash chain: ``h_i = H(h_{i-1} || item_i)``.

    This is the primitive behind both the block header chain and
    tamper-evident operation logs.  ``head`` commits to the entire
    history; replaying the items recomputes it.

    >>> chain = HashChain()
    >>> h1 = chain.append("op-1")
    >>> h2 = chain.append("op-2")
    >>> chain.head == h2
    True
    >>> HashChain.replay(["op-1", "op-2"]) == chain.head
    True
    """

    __slots__ = ("head", "length")

    def __init__(self, genesis: bytes = ZERO_HASH) -> None:
        self.head = genesis
        self.length = 0

    def append(self, item: Any) -> bytes:
        """Fold ``item`` into the chain and return the new head."""
        encoded = canonical_encode(item)
        self.head = hash_bytes(self.head + encoded, DOMAIN_RECORD)
        self.length += 1
        return self.head

    @classmethod
    def replay(cls, items: list, genesis: bytes = ZERO_HASH) -> bytes:
        """Recompute the head over ``items`` (integrity verification)."""
        chain = cls(genesis)
        for item in items:
            chain.append(item)
        return chain.head
