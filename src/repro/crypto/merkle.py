"""Merkle trees with inclusion and consistency proofs.

The Merkle root is the integrity anchor the paper's Figure 2 describes:
each block header stores the root of its transactions, so mutating any
transaction changes the root, which changes the header hash, which
invalidates every subsequent block.

The construction follows Certificate Transparency's hygiene:

* leaves are hashed with a leaf domain tag, interior nodes with a node tag
  (closing the second-preimage/reinterpretation attacks);
* odd nodes are promoted, not duplicated (avoids the Bitcoin duplicate-leaf
  ambiguity);
* inclusion proofs ("leaf i is under root R") are succinct; append-only
  growth is auditable via :meth:`MerkleTree.prefix_root` — an auditor who
  remembers the root at size n recomputes the prefix root from the
  current tree and compares (a full prefix audit rather than RFC 6962's
  succinct consistency proof, whose tree shape differs from this one).

Performance invariants (the hot-path contract):

* :meth:`MerkleTree.append` / :meth:`MerkleTree.extend` update the tree
  *incrementally* — O(log n) node hashes per appended leaf, touching only
  the right edge — and are guaranteed to produce byte-identical levels to
  a from-scratch :meth:`MerkleTree._build` over the same leaves (the
  property suite checks every size 0–65, covering odd-promotion edges);
* :func:`leaf_hash` memoizes digests for hashable values, keyed by
  ``(type, value)`` so cross-type equalities (``True == 1``,
  ``TxKind.DATA == "data"``) can never alias a cache entry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Iterable, Sequence

from ..errors import InvalidProof
from .hashing import DOMAIN_LEAF, DOMAIN_NODE, hash_bytes, hash_canonical


@lru_cache(maxsize=1 << 16)
def _leaf_hash_cached(tp: type, value: Any) -> bytes:
    if tp is bytes:
        return hash_bytes(value, DOMAIN_LEAF)
    return hash_canonical(value, DOMAIN_LEAF)


# Only types whose equality implies an identical canonical encoding may
# share a memo entry.  Floats are excluded (0.0 == -0.0 but they encode
# differently via repr), as are containers that could nest one.
_MEMOIZABLE_LEAF_TYPES = (bytes, str, int)


def leaf_hash(value: Any) -> bytes:
    """Hash a leaf value with the leaf domain tag (memoized).

    Digest-like values (the common case: 32-byte tx hashes) are served
    from a type-keyed LRU; every other type computes directly — both
    because most are unhashable and because cross-value equality (e.g.
    ``0.0 == -0.0`` with distinct encodings) must never alias a cache
    entry.
    """
    tp = type(value)
    if tp in _MEMOIZABLE_LEAF_TYPES:
        return _leaf_hash_cached(tp, value)
    if isinstance(value, bytes):
        return hash_bytes(value, DOMAIN_LEAF)
    return hash_canonical(value, DOMAIN_LEAF)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash an interior node from its children."""
    return hash_bytes(left + right, DOMAIN_NODE)


EMPTY_ROOT = hash_bytes(b"", DOMAIN_LEAF)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the audit path from a leaf to the root.

    ``path`` holds ``(sibling_hash, sibling_is_right)`` pairs from the leaf
    level upward.
    """

    leaf_index: int
    tree_size: int
    path: tuple[tuple[bytes, bool], ...] = field(default_factory=tuple)

    def root_from(self, leaf: bytes) -> bytes:
        """Recompute the root implied by this proof for ``leaf``."""
        current = leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = node_hash(current, sibling)
            else:
                current = node_hash(sibling, current)
        return current

    @property
    def size_bytes(self) -> int:
        """Wire size of the proof (for the storage-overhead benches)."""
        return sum(len(h) + 1 for h, _ in self.path) + 16


class MerkleTree:
    """A static Merkle tree over a sequence of values.

    >>> tree = MerkleTree(["a", "b", "c"])
    >>> proof = tree.prove(1)
    >>> verify_proof(tree.root, "b", proof)
    True
    >>> verify_proof(tree.root, "x", proof)
    False
    """

    def __init__(self, values: Iterable[Any] = ()) -> None:
        self._leaves: list[bytes] = [leaf_hash(v) for v in values]
        # _levels[0] is the leaf level; _levels[-1] is [root].
        self._levels: list[list[bytes]] = []
        self._build()

    def _build(self) -> None:
        if not self._leaves:
            self._levels = [[]]
            return
        levels = [list(self._leaves)]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            nxt: list[bytes] = []
            for i in range(0, len(prev) - 1, 2):
                nxt.append(node_hash(prev[i], prev[i + 1]))
            if len(prev) % 2 == 1:
                nxt.append(prev[-1])  # promote the odd node
            levels.append(nxt)
        self._levels = levels

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def root(self) -> bytes:
        """Root digest (``EMPTY_ROOT`` for an empty tree)."""
        if not self._leaves:
            return EMPTY_ROOT
        return self._levels[-1][0]

    @property
    def root_hex(self) -> str:
        return self.root.hex()

    def leaf(self, index: int) -> bytes:
        return self._leaves[index]

    # ------------------------------------------------------------------
    # Mutation (incremental: O(log n) node hashes per appended leaf)
    # ------------------------------------------------------------------
    def append(self, value: Any) -> int:
        """Append a leaf incrementally and return its index.

        Only the right-edge path from the new leaf to the root is
        rehashed (a CT-style frontier update), so appends cost O(log n)
        instead of the O(n) full rebuild.  The resulting levels are
        byte-identical to a from-scratch build over the same leaves.
        """
        self._append_leaf(leaf_hash(value))
        return len(self._leaves) - 1

    def extend(self, values: Iterable[Any]) -> None:
        """Append several leaves; O(k log n) total."""
        for value in values:
            self._append_leaf(leaf_hash(value))

    def _append_leaf(self, leaf: bytes) -> None:
        self._leaves.append(leaf)
        if len(self._leaves) == 1:
            self._levels = [[leaf]]
            return
        self._levels[0].append(leaf)
        level = 0
        while len(self._levels[level]) > 1:
            current = self._levels[level]
            size = len(current)
            # Parent of the right edge: a real node when the level is
            # even-sized, the promoted odd node otherwise.
            if size % 2 == 0:
                parent_value = node_hash(current[-2], current[-1])
            else:
                parent_value = current[-1]
            parent_size = (size + 1) // 2
            if level + 1 == len(self._levels):
                self._levels.append([parent_value])
            else:
                parent = self._levels[level + 1]
                if len(parent) == parent_size:
                    parent[-1] = parent_value
                else:
                    parent.append(parent_value)
            level += 1

    # ------------------------------------------------------------------
    # Proofs
    # ------------------------------------------------------------------
    def prove(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaves):
            raise IndexError(f"leaf index {index} out of range")
        path: list[tuple[bytes, bool]] = []
        i = index
        for level in self._levels[:-1]:
            if i % 2 == 0:
                sibling_index = i + 1
                sibling_is_right = True
            else:
                sibling_index = i - 1
                sibling_is_right = False
            if sibling_index < len(level):
                path.append((level[sibling_index], sibling_is_right))
            # else: odd node promoted with no sibling at this level.
            i //= 2
        return MerkleProof(
            leaf_index=index, tree_size=len(self._leaves), path=tuple(path)
        )

    def verify_value(self, value: Any, proof: MerkleProof) -> bool:
        """Convenience: check ``value`` against this tree's root."""
        return verify_proof(self.root, value, proof)

    # ------------------------------------------------------------------
    # Append-only auditing
    # ------------------------------------------------------------------
    def prefix_root(self, size: int) -> bytes:
        """Root the tree had when it held its first ``size`` leaves.

        An auditor who recorded the root at ``size`` compares it with
        this value on the grown tree: equality proves the log is
        append-only (no historical leaf was changed or removed).
        """
        if not 0 <= size <= len(self._leaves):
            raise IndexError(f"prefix size {size} out of range")
        prefix = MerkleTree()
        prefix._leaves = list(self._leaves[:size])
        prefix._build()
        return prefix.root

    def is_append_of(self, old_root: bytes, old_size: int) -> bool:
        """Does this tree extend the tree that had ``old_root`` at
        ``old_size`` leaves?"""
        if old_size > len(self._leaves):
            return False
        return self.prefix_root(old_size) == old_root


def verify_proof(root: bytes, value: Any, proof: MerkleProof) -> bool:
    """Check that ``value`` is included under ``root`` via ``proof``."""
    return proof.root_from(leaf_hash(value)) == root


def verify_proof_or_raise(root: bytes, value: Any, proof: MerkleProof) -> None:
    """Like :func:`verify_proof` but raises :class:`InvalidProof`."""
    if not verify_proof(root, value, proof):
        raise InvalidProof(
            f"Merkle inclusion proof failed for leaf {proof.leaf_index} "
            f"of tree size {proof.tree_size}"
        )


def root_of(values: Sequence[Any]) -> bytes:
    """One-shot root computation without keeping the tree around."""
    return MerkleTree(values).root
