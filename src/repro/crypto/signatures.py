"""Digital signatures (API-faithful simulation).

The library needs signatures for transactions, provenance records, notary
attestations, and bridge votes.  Real asymmetric cryptography is outside
this reproduction's scope (DESIGN.md §2), so we simulate:

* a :class:`PrivateKey` is 32 random-looking bytes derived from a seed;
* the matching :class:`PublicKey` is a hash of the private key;
* ``sign(message, sk)`` is ``HMAC-like: H(sk || H(message))``;
* ``verify`` recomputes the tag — which requires the private key, so the
  *simulation* verifier keeps a registry mapping public→private keys.

The crucial property preserved is the one every caller relies on: a
signature verifies **iff** it was produced over exactly that message by the
holder of the key matching the public key, and signatures are
deterministic.  What is *not* preserved is public verifiability without the
registry — acceptable because the whole system runs in one process.
"""

from __future__ import annotations

import hashlib
import hmac
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable

from ..errors import CryptoError, InvalidSignature
from ..obs.runtime import telemetry
from ..serialization import canonical_encode
from .hashing import DOMAIN_KEY, DOMAIN_SIG, hash_bytes


@dataclass(frozen=True)
class PublicKey:
    """A verification key.  Hex form is used as an address."""

    key_bytes: bytes

    @property
    def address(self) -> str:
        """Short printable address derived from the key."""
        return self.key_bytes.hex()[:40]

    def to_canonical(self) -> dict:
        return {"pub": self.key_bytes}


@dataclass(frozen=True)
class PrivateKey:
    """A signing key.  Never serialize this into records."""

    key_bytes: bytes

    def public_key(self) -> PublicKey:
        return PublicKey(hash_bytes(self.key_bytes, DOMAIN_KEY))


# Registry mapping public key bytes -> private key bytes.  In-process
# simulation of public verifiability; see module docstring.
_KEY_REGISTRY: dict[bytes, bytes] = {}


@dataclass(frozen=True)
class KeyPair:
    """Convenience bundle of a private key and its public key."""

    private: PrivateKey
    public: PublicKey

    @classmethod
    def generate(cls, seed: Any) -> "KeyPair":
        """Deterministically derive a keypair from ``seed``.

        Two calls with the same seed return the same pair, which keeps
        workloads reproducible.
        """
        material = canonical_encode(seed)
        sk_bytes = hashlib.sha256(b"seed-key:" + material).digest()
        private = PrivateKey(sk_bytes)
        public = private.public_key()
        _KEY_REGISTRY[public.key_bytes] = sk_bytes
        return cls(private=private, public=public)

    @property
    def address(self) -> str:
        return self.public.address

    def sign(self, message: Any) -> bytes:
        return sign(message, self.private)


@dataclass(frozen=True)
class Signature:
    """A detached signature over a canonical message."""

    tag: bytes
    signer: PublicKey

    def to_canonical(self) -> dict:
        return {"tag": self.tag, "signer": self.signer.key_bytes}


def sign(message: Any, private: PrivateKey) -> bytes:
    """Sign ``message`` (any canonical-encodable value)."""
    return sign_encoded(canonical_encode(message), private)


def sign_encoded(encoded: bytes, private: PrivateKey) -> bytes:
    """Sign already-canonically-encoded bytes.

    Fast path for callers that cache their canonical encoding (sealed
    transactions): produces exactly the same tag as ``sign`` over the
    decoded value, without re-encoding.
    """
    digest = hash_bytes(encoded, DOMAIN_SIG)
    return hmac.new(private.key_bytes, digest, hashlib.sha256).digest()


def verify(message: Any, tag: bytes, public: PublicKey) -> bool:
    """Return ``True`` iff ``tag`` is ``public``'s signature on ``message``."""
    return verify_encoded(canonical_encode(message), tag, public)


# Bounded memo of verification outcomes keyed by
# (message digest, public key, tag).  Ingest re-verifies the same sealed
# transaction at admission, seal, and audit time; the digest pins the
# exact message bytes, so a hit is sound — the HMAC would recompute the
# same verdict.  Only successful verifications are cached: failures are
# cold-path and should stay loud and re-checkable.  Guarded by a lock:
# the parallel sealing round verifies from worker threads.
_VERIFY_CACHE: OrderedDict[tuple[bytes, bytes, bytes], bool] = OrderedDict()
_VERIFY_CACHE_MAX = 8192
_VERIFY_CACHE_LOCK = threading.Lock()

# Hit/miss counters live in the telemetry registry (ISSUE 7) so an
# ops/metrics snapshot sees them; `cache_stats()` keeps its old shape by
# reading them back.  Handles are cached per default-telemetry instance
# — the identity check keeps the probe off the registry's label path,
# and a test that resets the default picks up fresh counters.
_COUNTER_HANDLES: tuple | None = None


def _cache_counters():
    global _COUNTER_HANDLES
    tel = telemetry()
    handles = _COUNTER_HANDLES
    if handles is None or handles[0] is not tel:
        registry = tel.registry
        handles = (
            tel,
            registry.counter("sig_verify_cache_hits_total",
                             cache="verify_encoded"),
            registry.counter("sig_verify_cache_misses_total",
                             cache="verify_encoded"),
        )
        _COUNTER_HANDLES = handles
    return handles


def _verify_cache_hit(key: tuple[bytes, bytes, bytes]) -> bool:
    _, hits, misses = _cache_counters()
    with _VERIFY_CACHE_LOCK:
        if _VERIFY_CACHE.get(key):
            _VERIFY_CACHE.move_to_end(key)
            hits.inc()
            return True
        misses.inc()
    return False


def _verify_cache_put(key: tuple[bytes, bytes, bytes]) -> None:
    with _VERIFY_CACHE_LOCK:
        _VERIFY_CACHE[key] = True
        _VERIFY_CACHE.move_to_end(key)
        while len(_VERIFY_CACHE) > _VERIFY_CACHE_MAX:
            _VERIFY_CACHE.popitem(last=False)


def clear_verify_cache() -> None:
    """Drop the verification memo (tests and benchmarks)."""
    with _VERIFY_CACHE_LOCK:
        _VERIFY_CACHE.clear()


def cache_stats() -> dict:
    """Hit/miss/size counters for both signature-verification LRUs —
    this module's digest-keyed memo and the transaction layer's
    ``(tx_id, signer, tag)`` memo.  The observability the process-pool
    path needs: offloaded verification must *populate* these caches in
    the parent (see :func:`record_verified`), not silently run cold."""
    from ..chain import transaction as tx_mod

    _, hits, misses = _cache_counters()
    with _VERIFY_CACHE_LOCK:
        verify_encoded_stats = {
            "hits": hits.value,
            "misses": misses.value,
            "size": len(_VERIFY_CACHE),
            "capacity": _VERIFY_CACHE_MAX,
        }
    return {
        "verify_encoded": verify_encoded_stats,
        "verify_signature": tx_mod._signature_cache_stats(),
    }


def reset_cache_stats() -> None:
    """Zero the hit/miss counters (cache contents are untouched)."""
    from ..chain import transaction as tx_mod

    _, hits, misses = _cache_counters()
    with _VERIFY_CACHE_LOCK:
        hits.reset()
        misses.reset()
    tx_mod._reset_signature_cache_stats()


def key_material(public: PublicKey) -> bytes | None:
    """Registry lookup: the signing bytes for ``public``, or ``None``
    for an unregistered key.  The parent-side half of offloaded
    verification — workers receive raw key material with each batch, so
    fork timing never makes a registered key "unknown" in a child."""
    return _KEY_REGISTRY.get(public.key_bytes)


def verify_digest(digest: bytes, key: bytes, tag: bytes) -> bool:
    """Recompute-and-compare on a prehashed message digest.  Shared by
    the exec worker's ``verify`` handler and the pool's inline fallback,
    so both compute exactly what :func:`verify_encoded` would."""
    expected = hmac.new(key, digest, hashlib.sha256).digest()
    return hmac.compare_digest(expected, tag)


def record_verified(digest: bytes, public_bytes: bytes,
                    tag: bytes) -> None:
    """Memoize an externally-established pass (a worker's verdict) so
    later in-process re-validation of the same item is a cache probe."""
    _verify_cache_put((digest, public_bytes, tag))


def check_verified(digest: bytes, public_bytes: bytes,
                   tag: bytes) -> bool:
    """Probe the memo without computing anything — lets the offload
    path skip shipping already-verified items to a worker."""
    return _verify_cache_hit((digest, public_bytes, tag))


def verify_encoded(encoded: bytes, tag: bytes, public: PublicKey) -> bool:
    """Verify a tag against already-canonically-encoded bytes.

    Successful verifications are memoized on the message digest, so
    re-validating a sealed transaction later in the pipeline is one
    cache probe instead of an HMAC recompute.
    """
    sk_bytes = _KEY_REGISTRY.get(public.key_bytes)
    if sk_bytes is None:
        raise CryptoError(
            "unknown public key; keypair was not generated via KeyPair.generate"
        )
    digest = hash_bytes(encoded, DOMAIN_SIG)
    key = (digest, public.key_bytes, tag)
    if _verify_cache_hit(key):
        return True
    expected = hmac.new(sk_bytes, digest, hashlib.sha256).digest()
    ok = hmac.compare_digest(expected, tag)
    if ok:
        _verify_cache_put(key)
    return ok


def verify_encoded_batch(
    items: Iterable[tuple[bytes, bytes, PublicKey]],
) -> list[bool]:
    """Verify ``(encoded, tag, public)`` triples in one pass.

    The batch surface the ingest pipeline's admission step uses: one
    call per admitted batch instead of one per transaction, with every
    item still getting an individual verdict — one bad signature never
    poisons its batch.  Each item goes through :func:`verify_encoded`
    so the cache and registry rules live in exactly one place.
    """
    return [verify_encoded(encoded, tag, public)
            for encoded, tag, public in items]


def verify_or_raise(message: Any, tag: bytes, public: PublicKey) -> None:
    """Raise :class:`InvalidSignature` when verification fails."""
    if not verify(message, tag, public):
        raise InvalidSignature(f"bad signature from {public.address}")
