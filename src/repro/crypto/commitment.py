"""Salted hash commitments.

The simplest commitment scheme: ``C = H(salt || value)``.  Hiding comes
from the salt, binding from collision resistance of SHA-256.  Used by the
HTLC hashlock, sealed-bid style flows, and as the fallback commitment for
privacy-sensitive provenance fields.  (Pedersen-style *homomorphic*
commitments, needed by the range proofs, live in ``repro.privacy``.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from ..errors import InvalidProof
from ..serialization import canonical_encode
from .hashing import DOMAIN_COMMIT, hash_bytes


@dataclass(frozen=True)
class HashCommitment:
    """A published commitment; reveals nothing about the value."""

    digest: bytes

    def to_canonical(self) -> dict:
        return {"commit": self.digest}

    @property
    def hex(self) -> str:
        return self.digest.hex()


def _derive_salt(seed: Any) -> bytes:
    """Deterministic salt derivation so simulations are replayable."""
    return hashlib.sha256(b"commit-salt:" + canonical_encode(seed)).digest()


def commit(value: Any, salt: bytes | None = None, *, seed: Any = None) -> tuple[HashCommitment, bytes]:
    """Commit to ``value``; returns ``(commitment, salt)``.

    Provide either an explicit ``salt`` or a ``seed`` from which one is
    derived deterministically; with neither, a zero salt is used (binding
    but not hiding — fine for public values).
    """
    if salt is None:
        salt = _derive_salt(seed) if seed is not None else b"\x00" * 32
    digest = hash_bytes(salt + canonical_encode(value), DOMAIN_COMMIT)
    return HashCommitment(digest), salt


def open_commitment(commitment: HashCommitment, value: Any, salt: bytes) -> bool:
    """Check that ``(value, salt)`` opens ``commitment``."""
    digest = hash_bytes(salt + canonical_encode(value), DOMAIN_COMMIT)
    return digest == commitment.digest


def open_or_raise(commitment: HashCommitment, value: Any, salt: bytes) -> None:
    if not open_commitment(commitment, value, salt):
        raise InvalidProof("commitment opening failed")
