"""Cryptographic primitives for the provenance library.

Hashing is real SHA-256.  Signatures and commitments are *API-faithful
simulations* built on keyed hashing: they preserve the verify/forge
semantics the higher layers rely on, but are not production cryptography
(see DESIGN.md §2).
"""

from .hashing import (
    DOMAIN_BLOCK,
    DOMAIN_LEAF,
    DOMAIN_NODE,
    DOMAIN_RECORD,
    DOMAIN_TX,
    HashChain,
    hash_bytes,
    hash_canonical,
    hash_hex,
)
from .merkle import MerkleProof, MerkleTree, verify_proof
from .distributed_merkle import CaseForest, ForestProof
from .signatures import KeyPair, PrivateKey, PublicKey, sign, verify
from .commitment import HashCommitment, commit, open_commitment

__all__ = [
    "DOMAIN_BLOCK",
    "DOMAIN_LEAF",
    "DOMAIN_NODE",
    "DOMAIN_RECORD",
    "DOMAIN_TX",
    "HashChain",
    "hash_bytes",
    "hash_canonical",
    "hash_hex",
    "MerkleProof",
    "MerkleTree",
    "verify_proof",
    "CaseForest",
    "ForestProof",
    "KeyPair",
    "PrivateKey",
    "PublicKey",
    "sign",
    "verify",
    "HashCommitment",
    "commit",
    "open_commitment",
]
