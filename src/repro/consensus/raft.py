"""Raft consensus over the simulated network.

Crash-fault-tolerant leader-based replication: a leader is elected by
majority vote (RequestVote), then replicates blocks to followers
(AppendEntries) and commits once a majority acknowledges.  Message
complexity per block is O(n) — the linear counterpart the EVAL-CONS bench
contrasts with PBFT's O(n²).

Raft appears in the survey as half of the consortium recipe of the Earth
observation system [87] ("Raft and PBFT consensus algorithms to achieve
high throughput"); it is the right choice when nodes are trusted to fail
only by crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain import Block, Blockchain, ChainParams, Transaction
from ..errors import ConsensusError
from ..network import NetMessage, SimNet
from .base import RoundMetrics


class _RaftNode:
    """One Raft participant: chain replica + persistent term state."""

    def __init__(self, node_id: str, cluster: "RaftCluster") -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.chain = Blockchain(
            ChainParams(chain_id=cluster.chain_id,
                        max_block_txs=cluster.max_block_txs)
        )
        self.crashed = False
        self.term = 0
        self.voted_for: dict[int, str] = {}
        self.role = "follower"          # follower | candidate | leader
        self.votes_received: set[str] = set()
        self.acks: dict[str, set[str]] = {}   # block_id -> followers acked
        cluster.net.register(node_id, self.handle)

    # ------------------------------------------------------------------
    def handle(self, msg: NetMessage) -> None:
        if self.crashed:
            return
        body = dict(msg.body)
        if msg.topic == "raft/request_vote":
            self._on_request_vote(msg.sender, body)
        elif msg.topic == "raft/vote":
            self._on_vote(msg.sender, body)
        elif msg.topic == "raft/append":
            self._on_append(msg.sender, body)
        elif msg.topic == "raft/ack":
            self._on_ack(msg.sender, body)
        elif msg.topic == "raft/commit":
            self._on_commit_notice(msg.sender, body)

    # ------------------------------------------------------------------
    # Election
    # ------------------------------------------------------------------
    def start_election(self) -> None:
        if self.crashed:
            return
        self.term += 1
        self.role = "candidate"
        self.votes_received = {self.node_id}
        self.voted_for[self.term] = self.node_id
        for peer in self.cluster.node_ids():
            if peer == self.node_id:
                continue
            self.cluster.net.send(NetMessage(
                sender=self.node_id, recipient=peer,
                topic="raft/request_vote",
                body={"term": self.term, "last_height": self.chain.height},
            ))

    def _on_request_vote(self, sender: str, body: dict) -> None:
        term = int(body["term"])
        if term > self.term:
            self.term = term
            self.role = "follower"
        # Grant at most one vote per term, and only to candidates whose
        # log is at least as long (Raft's up-to-date check).
        grant = (
            term >= self.term
            and self.voted_for.get(term) in (None, sender)
            and int(body["last_height"]) >= self.chain.height
        )
        if grant:
            self.voted_for[term] = sender
        self.cluster.net.send(NetMessage(
            sender=self.node_id, recipient=sender, topic="raft/vote",
            body={"term": term, "granted": grant},
        ))

    def _on_vote(self, sender: str, body: dict) -> None:
        if self.role != "candidate" or int(body["term"]) != self.term:
            return
        if body["granted"]:
            self.votes_received.add(sender)
            if len(self.votes_received) >= self.cluster.majority:
                self.role = "leader"
                self.cluster.leader_id = self.node_id

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------
    def replicate(self, block: Block) -> None:
        """Leader-side: ship ``block`` to all followers."""
        self.acks[block.block_id] = {self.node_id}
        for peer in self.cluster.node_ids():
            if peer == self.node_id:
                continue
            self.cluster.net.send(NetMessage(
                sender=self.node_id, recipient=peer, topic="raft/append",
                body={"term": self.term, "_block_ref": block},
            ))

    def _on_append(self, sender: str, body: dict) -> None:
        term = int(body["term"])
        if term < self.term:
            return  # stale leader
        self.term = term
        self.role = "follower"
        block = body["_block_ref"]
        ok = isinstance(block, Block) and block.height == self.chain.height + 1
        if ok:
            self.chain.append_block(block)
        self.cluster.net.send(NetMessage(
            sender=self.node_id, recipient=sender, topic="raft/ack",
            body={"term": term, "block_id": block.block_id if ok else "",
                  "ok": ok},
        ))

    def _on_ack(self, sender: str, body: dict) -> None:
        if not body.get("ok"):
            return
        block_id = str(body["block_id"])
        acked = self.acks.setdefault(block_id, {self.node_id})
        acked.add(sender)
        if len(acked) == self.cluster.majority:
            # Majority replicated: commit locally and notify followers.
            for peer in self.cluster.node_ids():
                if peer == self.node_id:
                    continue
                self.cluster.net.send(NetMessage(
                    sender=self.node_id, recipient=peer, topic="raft/commit",
                    body={"term": self.term, "block_id": block_id},
                ))

    def _on_commit_notice(self, sender: str, body: dict) -> None:
        # Followers already appended on AppendEntries in this simplified
        # model; the notice is informational (it is counted for fidelity
        # of the message profile).
        return


class RaftCluster:
    """A Raft replica group on a shared :class:`SimNet`."""

    name = "raft"

    def __init__(
        self,
        net: SimNet,
        n_nodes: int = 3,
        chain_id: str = "raft-chain",
        max_block_txs: int = 1024,
    ) -> None:
        if n_nodes < 3:
            raise ValueError("Raft needs n >= 3 for a meaningful majority")
        self.net = net
        self.chain_id = chain_id
        self.max_block_txs = max_block_txs
        self.nodes: list[_RaftNode] = [
            _RaftNode(f"raft-{i}", self) for i in range(n_nodes)
        ]
        self._by_id = {n.node_id: n for n in self.nodes}
        self.leader_id: str | None = None

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.nodes)

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def node_ids(self) -> list[str]:
        return [n.node_id for n in self.nodes]

    def crash(self, node_id: str) -> None:
        self._by_id[node_id].crashed = True
        if self.leader_id == node_id:
            self.leader_id = None

    def recover(self, node_id: str) -> None:
        node = self._by_id[node_id]
        node.crashed = False
        live = [n for n in self.nodes if not n.crashed]
        best = max(live, key=lambda n: n.chain.height)
        for block in best.chain.blocks[node.chain.height + 1:]:
            node.chain.append_block(block)

    # ------------------------------------------------------------------
    def elect(self, preferred: str | None = None) -> str:
        """Run leader election; returns the elected leader's id."""
        live = [n for n in self.nodes if not n.crashed]
        if len(live) < self.majority:
            raise ConsensusError(
                f"only {len(live)} of {self.n} nodes alive; no majority"
            )
        candidate = self._by_id[preferred] if preferred else live[0]
        if candidate.crashed:
            raise ConsensusError(f"candidate {candidate.node_id} is crashed")
        candidate.start_election()
        self.net.run()
        if self.leader_id is None:
            raise ConsensusError("election failed to produce a leader")
        return self.leader_id

    def propose(
        self, transactions: list[Transaction], timestamp: int = 0
    ) -> RoundMetrics:
        """Replicate and commit one block of transactions.

        An election triggered by a missing/crashed leader is part of the
        round and counted in its metrics.
        """
        msgs_before = self.net.stats.messages_sent
        bytes_before = self.net.stats.bytes_sent
        t_before = self.net.clock.now()
        if self.leader_id is None or self._by_id[self.leader_id].crashed:
            self.elect(self._first_live())
        leader = self._by_id[self.leader_id]
        block = leader.chain.build_block(
            transactions,
            timestamp=timestamp,
            proposer=leader.node_id,
            consensus_meta={"algo": self.name, "term": leader.term,
                            "n": self.n},
        )
        leader.chain.append_block(block)
        leader.replicate(block)
        self.net.run()
        replicated = sum(
            1 for n in self.nodes
            if not n.crashed and n.chain.height >= block.height
        )
        if replicated < self.majority:
            raise ConsensusError(
                f"block replicated to {replicated} nodes; "
                f"majority is {self.majority}"
            )
        return RoundMetrics(
            engine=self.name,
            proposer=leader.node_id,
            messages=self.net.stats.messages_sent - msgs_before,
            bytes_sent=self.net.stats.bytes_sent - bytes_before,
            latency_ticks=self.net.clock.now() - t_before,
            committed=True,
            extra={"term": leader.term, "replicated": replicated},
        )

    def _first_live(self) -> str:
        for node in self.nodes:
            if not node.crashed:
                return node.node_id
        raise ConsensusError("all nodes crashed")

    def heights(self) -> dict[str, int]:
        return {n.node_id: n.chain.height for n in self.nodes}

    @staticmethod
    def analytic_messages(n: int) -> int:
        """Per-block: append (n-1) + ack (n-1) + commit notice (n-1)."""
        return 3 * (n - 1)
