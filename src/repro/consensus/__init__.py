"""Consensus engines.

Two families, matching the paper's §2.1 taxonomy:

* **Proposer-selection engines** (PoW, PoS, PoA) — a single node wins the
  right to seal the next block; the network then gossips it.  These
  implement :class:`~repro.consensus.base.ConsensusEngine` and can be used
  standalone on a single chain.
* **Agreement clusters** (PBFT, Raft) — explicit message-passing state
  machines over the simulated network, committing a block once a quorum of
  replicas agrees.  Their empirical message counts are what the
  EVAL-CONS bench measures against the analytic O(n²) / O(n) expectations.
"""

from .base import ConsensusEngine, RoundMetrics
from .pow import ProofOfWork
from .pos import ProofOfStake, Validator
from .poa import ProofOfAuthority
from .pbft import PBFTCluster
from .raft import RaftCluster

__all__ = [
    "ConsensusEngine",
    "RoundMetrics",
    "ProofOfWork",
    "ProofOfStake",
    "Validator",
    "ProofOfAuthority",
    "PBFTCluster",
    "RaftCluster",
]
