"""Practical Byzantine Fault Tolerance (PBFT) over the simulated network.

A faithful (crash-fault simplified) implementation of the three-phase
protocol: PRE-PREPARE from the primary, all-to-all PREPARE, all-to-all
COMMIT.  A replica *prepares* once it holds the pre-prepare plus ``2f``
matching prepares, and *commits* once it holds ``2f + 1`` matching
commits.  With ``n = 3f + 1`` replicas the cluster tolerates ``f``
failures.

Message complexity is the textbook O(n²) per block — the EVAL-CONS bench
measures it empirically off :class:`~repro.network.simnet.NetStats` and
checks the quadratic growth against Raft's linear profile.

View changes are modeled: if the primary is crashed, a round times out and
the cluster moves to the next view (new primary) after exchanging
VIEW-CHANGE messages, as §4.4 of the original paper prescribes (without
the certificate bookkeeping, which crash faults don't need).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chain import Block, Blockchain, ChainParams, Transaction
from ..errors import ConsensusError
from ..network import NetMessage, SimNet
from .base import RoundMetrics


@dataclass
class _RoundState:
    """Per-(view, sequence) vote bookkeeping on one replica."""

    block: Block | None = None
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    prepared: bool = False
    committed: bool = False


class _Replica:
    """One PBFT replica: chain copy + protocol state machine."""

    def __init__(self, node_id: str, cluster: "PBFTCluster") -> None:
        self.node_id = node_id
        self.cluster = cluster
        self.chain = Blockchain(
            ChainParams(chain_id=cluster.chain_id,
                        max_block_txs=cluster.max_block_txs)
        )
        self.crashed = False
        self.view = 0
        self._rounds: dict[tuple[int, int], _RoundState] = {}
        self.view_change_votes: dict[int, set[str]] = {}
        cluster.net.register(node_id, self.handle)

    # ------------------------------------------------------------------
    def _round(self, view: int, seq: int) -> _RoundState:
        return self._rounds.setdefault((view, seq), _RoundState())

    def handle(self, msg: NetMessage) -> None:
        if self.crashed:
            return
        body = dict(msg.body)
        topic = msg.topic
        if topic == "pbft/preprepare":
            self._on_preprepare(msg.sender, body)
        elif topic == "pbft/prepare":
            self._on_prepare(msg.sender, body)
        elif topic == "pbft/commit":
            self._on_commit(msg.sender, body)
        elif topic == "pbft/viewchange":
            self._on_viewchange(msg.sender, body)

    # ------------------------------------------------------------------
    # Phase 1: pre-prepare
    # ------------------------------------------------------------------
    def _on_preprepare(self, sender: str, body: dict) -> None:
        view, seq = int(body["view"]), int(body["seq"])
        if view < self.view:
            return  # stale view
        if sender != self.cluster.primary_of(view):
            return  # only the view's primary may pre-prepare
        block = body["_block_ref"]
        if not isinstance(block, Block):
            return
        if block.height != self.chain.height + 1:
            return
        state = self._round(view, seq)
        state.block = block
        # Pre-prepare counts as the primary's prepare vote.
        state.prepares.add(sender)
        state.prepares.add(self.node_id)
        self.cluster._multicast(
            self.node_id, "pbft/prepare",
            {"view": view, "seq": seq, "digest": block.block_id},
        )
        self._maybe_advance(view, seq)

    # ------------------------------------------------------------------
    # Phase 2: prepare
    # ------------------------------------------------------------------
    def _on_prepare(self, sender: str, body: dict) -> None:
        view, seq = int(body["view"]), int(body["seq"])
        state = self._round(view, seq)
        state.prepares.add(sender)
        self._maybe_advance(view, seq)

    # ------------------------------------------------------------------
    # Phase 3: commit
    # ------------------------------------------------------------------
    def _on_commit(self, sender: str, body: dict) -> None:
        view, seq = int(body["view"]), int(body["seq"])
        state = self._round(view, seq)
        state.commits.add(sender)
        self._maybe_advance(view, seq)

    def _maybe_advance(self, view: int, seq: int) -> None:
        state = self._round(view, seq)
        quorum = self.cluster.quorum  # 2f + 1
        if (not state.prepared and state.block is not None
                and len(state.prepares) >= quorum):
            state.prepared = True
            state.commits.add(self.node_id)
            self.cluster._multicast(
                self.node_id, "pbft/commit",
                {"view": view, "seq": seq, "digest": state.block.block_id},
            )
        if (not state.committed and state.prepared
                and state.block is not None
                and len(state.commits) >= quorum):
            state.committed = True
            if state.block.height == self.chain.height + 1:
                self.chain.append_block(state.block)

    # ------------------------------------------------------------------
    # View change (crash-fault simplified)
    # ------------------------------------------------------------------
    def start_viewchange(self, new_view: int) -> None:
        if self.crashed or new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        votes.add(self.node_id)
        self.cluster._multicast(
            self.node_id, "pbft/viewchange", {"new_view": new_view}
        )
        self._maybe_install_view(new_view)

    def _on_viewchange(self, sender: str, body: dict) -> None:
        new_view = int(body["new_view"])
        if new_view <= self.view:
            return
        votes = self.view_change_votes.setdefault(new_view, set())
        votes.add(sender)
        if self.node_id not in votes:
            votes.add(self.node_id)
            self.cluster._multicast(
                self.node_id, "pbft/viewchange", {"new_view": new_view}
            )
        self._maybe_install_view(new_view)

    def _maybe_install_view(self, new_view: int) -> None:
        if len(self.view_change_votes.get(new_view, ())) >= self.cluster.quorum:
            self.view = new_view


class PBFTCluster:
    """An ``n = 3f + 1`` PBFT replica group on a shared :class:`SimNet`."""

    name = "pbft"

    def __init__(
        self,
        net: SimNet,
        n_replicas: int = 4,
        chain_id: str = "pbft-chain",
        max_block_txs: int = 1024,
    ) -> None:
        if n_replicas < 4:
            raise ValueError("PBFT needs n >= 4 (f >= 1)")
        self.net = net
        self.chain_id = chain_id
        self.max_block_txs = max_block_txs
        self.f = (n_replicas - 1) // 3
        self.replicas: list[_Replica] = [
            _Replica(f"pbft-{i}", self) for i in range(n_replicas)
        ]
        self._by_id = {r.node_id: r for r in self.replicas}
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return len(self.replicas)

    @property
    def quorum(self) -> int:
        return 2 * self.f + 1

    def primary_of(self, view: int) -> str:
        return self.replicas[view % self.n].node_id

    @property
    def view(self) -> int:
        # The cluster's view is the max installed on a live quorum member.
        live = [r.view for r in self.replicas if not r.crashed]
        return max(live) if live else 0

    def crash(self, node_id: str) -> None:
        """Silence a replica (crash fault)."""
        self._by_id[node_id].crashed = True

    def recover(self, node_id: str) -> None:
        replica = self._by_id[node_id]
        replica.crashed = False
        # A recovering replica syncs from the longest live peer.
        best = max(
            (r for r in self.replicas if not r.crashed),
            key=lambda r: r.chain.height,
        )
        if best.chain.height > replica.chain.height:
            for block in best.chain.blocks[replica.chain.height + 1:]:
                replica.chain.append_block(block)

    def _multicast(self, sender: str, topic: str, body: dict) -> None:
        for replica in self.replicas:
            if replica.node_id == sender:
                continue
            self.net.send(NetMessage(sender=sender, recipient=replica.node_id,
                                     topic=topic, body=body))

    # ------------------------------------------------------------------
    def propose(
        self, transactions: list[Transaction], timestamp: int = 0,
        max_view_changes: int = 8,
    ) -> RoundMetrics:
        """Run one full consensus instance for one block of transactions.

        Returns metrics measured off the network simulator.  Raises
        :class:`ConsensusError` if agreement is impossible (more than
        ``f`` replicas crashed).
        """
        crashed = sum(1 for r in self.replicas if r.crashed)
        if crashed > self.f:
            raise ConsensusError(
                f"{crashed} of {self.n} replicas crashed; f={self.f} "
                "tolerance exceeded"
            )
        msgs_before = self.net.stats.messages_sent
        bytes_before = self.net.stats.bytes_sent
        t_before = self.net.clock.now()
        view_changes = 0

        for _ in range(max_view_changes + 1):
            view = self.view
            primary = self._by_id[self.primary_of(view)]
            if primary.crashed:
                self._run_viewchange(view + 1)
                view_changes += 1
                continue
            self._seq += 1
            block = primary.chain.build_block(
                transactions,
                timestamp=timestamp,
                proposer=primary.node_id,
                consensus_meta={"algo": self.name, "view": view,
                                "seq": self._seq, "n": self.n, "f": self.f},
            )
            # Primary's own round state.
            state = primary._round(view, self._seq)
            state.block = block
            state.prepares.add(primary.node_id)
            self._multicast(
                primary.node_id, "pbft/preprepare",
                {"view": view, "seq": self._seq, "_block_ref": block},
            )
            self.net.run()
            # Success: a full quorum of replicas committed the block.
            if self._committed_count(block) >= self.quorum:
                return RoundMetrics(
                    engine=self.name,
                    proposer=primary.node_id,
                    messages=self.net.stats.messages_sent - msgs_before,
                    bytes_sent=self.net.stats.bytes_sent - bytes_before,
                    latency_ticks=self.net.clock.now() - t_before,
                    committed=True,
                    extra={"view": view, "view_changes": view_changes,
                           "quorum": self.quorum},
                )
            # No progress: force a view change and retry.
            self._run_viewchange(view + 1)
            view_changes += 1
        raise ConsensusError("PBFT could not commit within view-change budget")

    def _run_viewchange(self, new_view: int) -> None:
        for replica in self.replicas:
            replica.start_viewchange(new_view)
        self.net.run()

    def _committed_count(self, block: Block) -> int:
        return sum(
            1
            for r in self.replicas
            if not r.crashed and r.chain.height >= block.height
            and r.chain.blocks[block.height].block_id == block.block_id
        )

    # ------------------------------------------------------------------
    def heights(self) -> dict[str, int]:
        return {r.node_id: r.chain.height for r in self.replicas}

    @staticmethod
    def analytic_messages(n: int) -> int:
        """Per-block message count of this implementation: pre-prepare
        (n-1) + prepares from the n-1 backups ((n-1)²) + commits from all
        n replicas (n(n-1)).  O(n²), like the textbook protocol (which
        adds one more prepare multicast from the primary)."""
        return (n - 1) + (n - 1) * (n - 1) + n * (n - 1)
