"""Consensus engine interface and round metrics."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from ..chain import Block, Blockchain, Transaction


@dataclass
class RoundMetrics:
    """What one consensus round cost.

    ``work`` is engine-specific: hash attempts for PoW, messages for the
    agreement clusters.  ``latency_ticks`` is measured on the shared
    simulated clock where an engine runs on a network, else modeled.
    """

    engine: str
    proposer: str = ""
    work: int = 0
    messages: int = 0
    bytes_sent: int = 0
    latency_ticks: int = 0
    committed: bool = True
    extra: dict = field(default_factory=dict)


class ConsensusEngine(abc.ABC):
    """Interface for proposer-selection engines.

    ``seal`` produces the next block for a chain (doing whatever work the
    mechanism requires); ``validate`` checks a received block's consensus
    metadata.  The two analytic methods let benches compare mechanisms at
    node counts too large to simulate.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def seal(
        self,
        chain: Blockchain,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
    ) -> tuple[Block, RoundMetrics]:
        """Produce and return the next block plus round metrics.

        The block is *not* appended; the caller decides (it may be racing
        other proposers in a simulation).
        """

    @abc.abstractmethod
    def validate(self, chain: Blockchain, block: Block) -> None:
        """Raise :class:`~repro.errors.ConsensusError` on a bad seal."""

    def message_complexity(self, n_nodes: int) -> int:
        """Messages needed to disseminate one block to ``n_nodes``."""
        return max(0, n_nodes - 1)

    def expected_commit_latency(self, n_nodes: int, link_latency: int) -> int:
        """Modeled ticks from proposal to network-wide commit."""
        return link_latency  # one broadcast hop by default

    def seal_and_append(
        self,
        chain: Blockchain,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
    ) -> RoundMetrics:
        """Convenience for single-chain use: seal, validate, append."""
        block, metrics = self.seal(chain, transactions, timestamp)
        self.validate(chain, block)
        chain.append_block(block)
        return metrics
