"""Proof of Work.

The real thing at laptop scale: the sealer iterates nonces until the block
header hash falls below a difficulty target.  Verification is a single
hash — the asymmetry that makes PoW usable.  The ``estimated_hashes``
model extrapolates the cost to difficulties we do not want to actually
grind in a benchmark, preserving the cost *ordering* the paper discusses
(BlockCloud adopts PoS precisely to avoid this work, §3).
"""

from __future__ import annotations

from typing import Sequence

from ..chain import Block, Blockchain, Transaction
from ..errors import ConsensusError
from .base import ConsensusEngine, RoundMetrics

MAX_TARGET = 2**256


class ProofOfWork(ConsensusEngine):
    """Hash-below-target proof of work.

    ``difficulty_bits`` is the number of leading zero bits required;
    expected work is ``2**difficulty_bits`` hashes.  Keep it ≤ ~18 for
    interactive runs.
    """

    name = "pow"

    def __init__(self, difficulty_bits: int = 12, max_attempts: int = 2**26,
                 miner_id: str = "miner-0") -> None:
        if not 0 <= difficulty_bits <= 64:
            raise ValueError("difficulty_bits out of sane range")
        self.difficulty_bits = difficulty_bits
        self.max_attempts = max_attempts
        self.miner_id = miner_id

    @property
    def target(self) -> int:
        return MAX_TARGET >> self.difficulty_bits

    def estimated_hashes(self) -> int:
        """Expected number of hash attempts per block."""
        return 2**self.difficulty_bits

    # ------------------------------------------------------------------
    def seal(
        self,
        chain: Blockchain,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
    ) -> tuple[Block, RoundMetrics]:
        attempts = 0
        nonce = 0
        meta = {"difficulty_bits": self.difficulty_bits, "algo": self.name}
        # Build the block (and its Merkle tree) once; each attempt only
        # bumps the header nonce, which invalidates the cached header
        # hash — so a mining attempt costs one header hash, not a full
        # block rebuild.
        block = chain.build_block(
            list(transactions),
            timestamp=timestamp,
            proposer=self.miner_id,
            consensus_meta=meta,
            nonce=nonce,
        )
        while attempts < self.max_attempts:
            block.header.nonce = nonce
            attempts += 1
            if int.from_bytes(block.block_hash, "big") < self.target:
                metrics = RoundMetrics(
                    engine=self.name,
                    proposer=self.miner_id,
                    work=attempts,
                    extra={"nonce": nonce,
                           "difficulty_bits": self.difficulty_bits},
                )
                return block, metrics
            nonce += 1
        raise ConsensusError(
            f"PoW gave up after {attempts} attempts at "
            f"{self.difficulty_bits} bits"
        )

    def validate(self, chain: Blockchain, block: Block) -> None:
        bits = int(block.header.consensus_meta.get("difficulty_bits", -1))
        if bits != self.difficulty_bits:
            raise ConsensusError(
                f"block declares {bits} difficulty bits, engine expects "
                f"{self.difficulty_bits}"
            )
        if int.from_bytes(block.block_hash, "big") >= self.target:
            raise ConsensusError(
                f"block hash does not meet the {self.difficulty_bits}-bit target"
            )

    # ------------------------------------------------------------------
    # Difficulty retargeting (paper §6.1 names "difficulty level" an
    # evaluation axis for new-chain designs)
    # ------------------------------------------------------------------
    def retarget(self, chain, window: int = 8,
                 target_spacing: int = 10) -> int:
        """Adjust difficulty toward ``target_spacing`` ticks per block.

        Looks at the timestamps of the last ``window`` blocks: blocks
        arriving more than twice as fast as the target raise difficulty
        by one bit; more than twice as slow lowers it by one bit.  The
        one-bit step keeps adjustments stable (Bitcoin-style clamping).
        Returns the (possibly unchanged) difficulty.
        """
        if len(chain.blocks) < window + 1:
            return self.difficulty_bits
        recent = chain.blocks[-(window + 1):]
        elapsed = recent[-1].header.timestamp - recent[0].header.timestamp
        average = elapsed / window
        if average < target_spacing / 2 and self.difficulty_bits < 64:
            self.difficulty_bits += 1
        elif average > target_spacing * 2 and self.difficulty_bits > 0:
            self.difficulty_bits -= 1
        return self.difficulty_bits

    # ------------------------------------------------------------------
    def expected_commit_latency(self, n_nodes: int, link_latency: int) -> int:
        # Mining time dominates; model it as proportional to expected
        # hashes at a nominal hash rate of 1000 hashes/tick, plus one
        # gossip hop.
        mining_ticks = max(1, self.estimated_hashes() // 1000)
        return mining_ticks + link_latency
