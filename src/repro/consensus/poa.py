"""Proof of Authority.

Permissioned round-robin sealing among a fixed authority set — the
simplest consortium arrangement and the closest analogue to how the
surveyed Hyperledger-based prototypes (Cui et al., LedgerView, HealthBlock)
order transactions.
"""

from __future__ import annotations

from typing import Sequence

from ..chain import Block, Blockchain, Transaction
from ..errors import ConsensusError
from .base import ConsensusEngine, RoundMetrics


class ProofOfAuthority(ConsensusEngine):
    """Round-robin among named authorities: authority ``h mod n`` seals
    block ``h``."""

    name = "poa"

    def __init__(self, authorities: Sequence[str]) -> None:
        if not authorities:
            raise ValueError("need at least one authority")
        if len(set(authorities)) != len(authorities):
            raise ValueError("duplicate authority ids")
        self.authorities = list(authorities)

    def scheduled_authority(self, height: int) -> str:
        return self.authorities[height % len(self.authorities)]

    def seal(
        self,
        chain: Blockchain,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
    ) -> tuple[Block, RoundMetrics]:
        height = chain.height + 1
        proposer = self.scheduled_authority(height)
        block = chain.build_block(
            list(transactions),
            timestamp=timestamp,
            proposer=proposer,
            consensus_meta={"algo": self.name,
                            "authority_set_size": len(self.authorities)},
        )
        return block, RoundMetrics(engine=self.name, proposer=proposer, work=1)

    def validate(self, chain: Blockchain, block: Block) -> None:
        expected = self.scheduled_authority(block.height)
        if block.header.proposer != expected:
            raise ConsensusError(
                f"height {block.height} is {expected}'s slot, "
                f"not {block.header.proposer}'s"
            )
