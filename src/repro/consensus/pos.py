"""Proof of Stake.

Stake-weighted proposer selection: the chance of sealing block ``h`` is
proportional to a validator's stake, drawn deterministically from a seed
that commits to the chain head (so every replica computes the same winner,
and the winner cannot be predicted far ahead without the head hash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..chain import Block, Blockchain, Transaction
from ..crypto.hashing import hash_canonical
from ..errors import ConsensusError
from .base import ConsensusEngine, RoundMetrics


@dataclass(frozen=True)
class Validator:
    """A staking participant."""

    validator_id: str
    stake: int

    def __post_init__(self) -> None:
        if self.stake <= 0:
            raise ValueError("stake must be positive")


class ProofOfStake(ConsensusEngine):
    """Deterministic stake-weighted proposer lottery."""

    name = "pos"

    def __init__(self, validators: Sequence[Validator]) -> None:
        if not validators:
            raise ValueError("need at least one validator")
        ids = [v.validator_id for v in validators]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate validator ids")
        # Sorted for replica-independent determinism.
        self.validators = sorted(validators, key=lambda v: v.validator_id)
        self.total_stake = sum(v.stake for v in self.validators)

    # ------------------------------------------------------------------
    def select_proposer(self, chain: Blockchain, height: int) -> Validator:
        """The validator entitled to seal ``height`` on this chain."""
        seed = hash_canonical(
            {
                "prev": chain.head.block_hash,
                "height": height,
                "chain": chain.chain_id,
            }
        )
        # Map the seed uniformly onto cumulative stake.
        point = int.from_bytes(seed[:8], "big") % self.total_stake
        cumulative = 0
        for validator in self.validators:
            cumulative += validator.stake
            if point < cumulative:
                return validator
        raise ConsensusError("stake lottery fell off the end")  # pragma: no cover

    def seal(
        self,
        chain: Blockchain,
        transactions: Sequence[Transaction],
        timestamp: int = 0,
    ) -> tuple[Block, RoundMetrics]:
        proposer = self.select_proposer(chain, chain.height + 1)
        block = chain.build_block(
            list(transactions),
            timestamp=timestamp,
            proposer=proposer.validator_id,
            consensus_meta={
                "algo": self.name,
                "stake": proposer.stake,
                "total_stake": self.total_stake,
            },
        )
        metrics = RoundMetrics(
            engine=self.name,
            proposer=proposer.validator_id,
            work=1,
            extra={"stake": proposer.stake},
        )
        return block, metrics

    def validate(self, chain: Blockchain, block: Block) -> None:
        expected = self.select_proposer(chain, block.height)
        if block.header.proposer != expected.validator_id:
            raise ConsensusError(
                f"block {block.height} proposed by {block.header.proposer}, "
                f"but the stake lottery selected {expected.validator_id}"
            )
