"""Wire codec for snapshot sync: image chunking, manifests, frame scans.

Three concerns, all byte-exact:

* **Image encoding** — one shard's snapshot material (state entries,
  anchor-service state, provenance records) as a single canonical byte
  string, split into fixed-size chunks that are downloaded, verified,
  and resumed independently.
* **Manifest** — the contract the client holds the server to: the
  snapshot's shard / height / head block hash / state root plus the
  domain-separated hash of every chunk.  The manifest itself is *not*
  trusted as received — the client cross-checks its height, head hash,
  and state root against a beacon-anchored commitment before any chunk
  is accepted.
* **Header scan** — a structural parse of a raw block frame (the
  canonical block encoding the segment logs store) that extracts the
  header fields *without* constructing ``Transaction`` objects or
  rebuilding the Merkle tree.  Hash-chaining scanned headers from
  genesis to the beacon-verified head is how the client verifies a
  2 000-block tail at a small fraction of full-decode cost; the frame
  bytes are installed verbatim, so every later read still runs the full
  ``decode_block`` integrity check against the indexed hash.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..chain.block import BlockHeader
from ..crypto.hashing import hash_bytes, hash_canonical
from ..errors import SerializationError, SyncError
from ..persist.codec import _decode_from, _read_length, canonical_decode
from ..serialization import canonical_encode

# Domain separation for sync artifacts (string prefixes, like the state
# root's "state-root-v2:" — these never collide with the one-byte tags).
CHUNK_DOMAIN = b"sync-chunk-v1:"
MANIFEST_DOMAIN = b"sync-manifest-v1:"

DEFAULT_CHUNK_SIZE = 256 * 1024


def chunk_digest(data: bytes) -> bytes:
    """Domain-separated digest of one chunk's raw bytes."""
    return hash_bytes(data, CHUNK_DOMAIN)


def split_chunks(data: bytes, chunk_size: int) -> list[bytes]:
    """Split ``data`` into ``chunk_size`` pieces (last may be short).
    An empty payload still yields one (empty) chunk so the manifest
    always has at least one verifiable unit."""
    if chunk_size < 1:
        raise SyncError("chunk_size must be >= 1", reason="bad_manifest")
    if not data:
        return [b""]
    return [data[i:i + chunk_size]
            for i in range(0, len(data), chunk_size)]


@dataclass(frozen=True)
class SnapshotManifest:
    """Hash-bound description of one shard snapshot image.

    ``height`` / ``block_hash`` / ``state_root`` tie the image to one
    specific beacon-anchored shard head; ``chunk_hashes`` tie every
    downloadable chunk to the image.  ``chain_id`` pins the shard chain
    the image belongs to (a replica refuses an image for a different
    deployment).
    """

    shard_id: int
    chain_id: str
    height: int
    block_hash: bytes
    state_root: bytes
    chunk_size: int
    total_bytes: int
    chunk_hashes: tuple[bytes, ...]

    @property
    def chunk_count(self) -> int:
        return len(self.chunk_hashes)

    def to_mapping(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "chain_id": self.chain_id,
            "height": self.height,
            "block_hash": self.block_hash,
            "state_root": self.state_root,
            "chunk_size": self.chunk_size,
            "total_bytes": self.total_bytes,
            "chunk_hashes": list(self.chunk_hashes),
        }

    @classmethod
    def from_mapping(cls, m: dict) -> "SnapshotManifest":
        try:
            return cls(
                shard_id=int(m["shard_id"]),
                chain_id=str(m["chain_id"]),
                height=int(m["height"]),
                block_hash=bytes(m["block_hash"]),
                state_root=bytes(m["state_root"]),
                chunk_size=int(m["chunk_size"]),
                total_bytes=int(m["total_bytes"]),
                chunk_hashes=tuple(bytes(h) for h in m["chunk_hashes"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SyncError(f"malformed manifest: {exc}",
                            reason="bad_manifest") from exc

    def digest(self) -> bytes:
        """Identity of this manifest (staging-resume match key)."""
        return hash_canonical(self.to_mapping(), MANIFEST_DOMAIN)

    @classmethod
    def for_image(cls, *, shard_id: int, chain_id: str, height: int,
                  block_hash: bytes, state_root: bytes,
                  image: bytes,
                  chunk_size: int = DEFAULT_CHUNK_SIZE,
                  ) -> tuple["SnapshotManifest", list[bytes]]:
        """Chunk ``image`` and build the matching manifest."""
        chunks = split_chunks(image, chunk_size)
        manifest = cls(
            shard_id=shard_id,
            chain_id=chain_id,
            height=height,
            block_hash=block_hash,
            state_root=state_root,
            chunk_size=chunk_size,
            total_bytes=len(image),
            chunk_hashes=tuple(chunk_digest(c) for c in chunks),
        )
        return manifest, chunks


# ---------------------------------------------------------------------------
# Image payload (state + anchor state + records, one canonical value)
# ---------------------------------------------------------------------------
def encode_image(state_entries, anchor_state, records) -> bytes:
    """One shard's snapshot material as canonical bytes."""
    return canonical_encode({
        "anchor": anchor_state,
        "records": list(records),
        "state": [[ns, key, value] for ns, key, value in state_entries],
    })


def decode_image(data: bytes) -> dict:
    """Inverse of :func:`encode_image`; raises :class:`SyncError` when
    the bytes are not a well-formed image."""
    try:
        image = canonical_decode(data)
    except SerializationError as exc:
        raise SyncError(f"image does not decode: {exc}",
                        reason="corrupt_image") from exc
    if (not isinstance(image, dict)
            or not {"anchor", "records", "state"} <= set(image)):
        raise SyncError("image lacks state/anchor/records sections",
                        reason="corrupt_image")
    image["state"] = [(str(ns), str(key), value)
                      for ns, key, value in image["state"]]
    return image


# ---------------------------------------------------------------------------
# Raw block-frame header scan
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ScannedBlock:
    """Header-level view of one raw block frame."""

    header: BlockHeader
    tx_count: int

    @property
    def block_hash(self) -> bytes:
        return self.header.block_hash

    @property
    def height(self) -> int:
        return self.header.height


def scan_block_frame(payload: bytes) -> ScannedBlock:
    """Parse the header of a raw block frame (canonical block encoding)
    without constructing transactions.

    The frame is the mapping :func:`repro.persist.codec.encode_block`
    writes with its keys in canonical (sorted) order, which puts
    ``transactions`` *last*: every header field is decoded normally,
    then only the transaction list's item count is read from its prefix
    — the list body itself is never walked.  The returned header
    recomputes the block hash from exactly the scanned content, so
    hash-chaining scanned headers is as trustworthy as hash-chaining
    decoded blocks at ~one SHA per block instead of one per
    transaction.  Transaction *bytes* are covered by the tail stream's
    CRC at install time and by the full ``decode_block`` hash check on
    every later read; the scan deliberately does not re-validate them.
    """
    if payload[:1] != b"d":
        raise SerializationError("block frame is not a canonical mapping")
    count, pos = _read_length(payload, 1)
    fields: dict = {}
    tx_count = None
    for _ in range(count):
        key, pos = _decode_from(payload, pos)
        if key == "transactions":
            if payload[pos:pos + 1] != b"l":
                raise SerializationError("transactions is not a sequence")
            tx_count, pos = _read_length(payload, pos + 1)
            # Sorted keys make "transactions" the final entry: its body
            # runs to the frame's closing markers ("e" for the list,
            # "e" for the outer mapping).
            if payload[-2:] != b"ee":
                raise SerializationError("unterminated block frame")
            pos = len(payload) - 1
            break
        fields[key], pos = _decode_from(payload, pos)
    if payload[pos:pos + 1] != b"e" or pos + 1 != len(payload):
        raise SerializationError("trailing bytes after block frame")
    if tx_count is None:
        raise SerializationError("block frame lacks a transaction list")
    try:
        header = BlockHeader(
            height=int(fields["height"]),
            prev_hash=bytes(fields["prev_hash"]),
            merkle_root=bytes(fields["merkle_root"]),
            timestamp=int(fields["timestamp"]),
            proposer=str(fields["proposer"]),
            consensus_meta=dict(fields["consensus_meta"]),
            nonce=int(fields["nonce"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"block frame lacks a header field: {exc}"
        ) from exc
    return ScannedBlock(header=header, tx_count=tx_count)
