"""Shard replica: a durable shard stack stood up by snapshot sync.

``ShardReplica`` owns a network identity (a
:class:`~repro.network.node.ChainNode`), a store directory, and — after
:meth:`catch_up` — a fully opened :class:`~repro.sharding.shardchain.
Shard` stack (chain + provenance database + anchor service + query
engine) at the source's beacon-verified head, with **zero** genesis
replay: the chain reopens from the synced state snapshot
(``blocks_replayed_on_open == 0``).

``catch_up`` fails over across peers: a byzantine or unreachable peer
surfaces as a structured :class:`~repro.errors.SyncError`, the store is
rolled back to its pre-sync base, and the next peer is tried.  Proof
*packaging* (:meth:`federated_proof`) uses the trusted beacon full
node the replica was spawned with; proof *verification* needs only
beacon headers, exactly as on the source.
"""

from __future__ import annotations

from ..chain import ChainParams
from ..errors import QueryError, SyncError
from ..net_retry import failover
from ..network.node import ChainNode
from ..sharding.query import FederatedProof
from ..sharding.shardchain import Shard
from .client import SnapshotClient, SyncReport


class ShardReplica:
    """One shard's catch-up-capable replica (see the module docstring)."""

    def __init__(
        self,
        shard_id: int,
        params: ChainParams,
        storage_dir: str,
        net,
        node_id: str,
        peers,
        beacon,
        anchor_batch_size: int = 64,
        region: str = "default",
    ) -> None:
        if not peers:
            raise SyncError("replica needs at least one peer to sync from",
                            reason="no_peers", shard_id=shard_id)
        self.shard_id = shard_id
        self.params = params
        self.storage_dir = storage_dir
        self.peers = list(peers)
        self.beacon = beacon
        self.anchor_batch_size = anchor_batch_size
        self.node = ChainNode(node_id, net, region=region)
        self.shard: Shard | None = None
        self.last_report: SyncReport | None = None
        # Replicas answer ops/metrics too: the process default registry
        # snapshot plus this replica's own sync status.
        self.node.serve_ops(health=self.health)

    def health(self) -> dict:
        """Canonical-encodable status served on ``ops/metrics``."""
        shard = self.shard
        report = self.last_report
        return {
            "shard_id": self.shard_id,
            "synced": shard is not None,
            "height": shard.chain.height if shard is not None else 0,
            "last_sync_height": report.height if report is not None else 0,
            "last_sync_peer": report.peer if report is not None else "",
            "blocks_installed": (report.blocks_installed
                                 if report is not None else 0),
        }

    # ------------------------------------------------------------------
    # Catch-up
    # ------------------------------------------------------------------
    def catch_up(self, min_height: int = 1, deep_verify: bool = False,
                 max_retries: int = 8, tail_batch: int = 64,
                 crash_after_chunks: int | None = None) -> SyncReport:
        """Sync the store to the peers' beacon-anchored head and (re)open
        the shard stack on it.  Tries each peer in order; raises the last
        peer's :class:`~repro.errors.SyncError` if all fail."""
        local_height = self._local_height()
        if self.shard is not None:
            self.shard.close()
            self.shard = None
        if min_height <= 1 and local_height > 0:
            # Re-sync: never accept an offer behind what we already have.
            min_height = local_height

        def sync_from(peer: str) -> SyncReport:
            return SnapshotClient(
                node=self.node,
                peer=peer,
                shard_id=self.shard_id,
                storage_dir=self.storage_dir,
                beacon_header_for=self._beacon_header,
                chain_id=self.params.chain_id,
                min_height=min_height,
                max_retries=max_retries,
                tail_batch=tail_batch,
                deep_verify=deep_verify,
                crash_after_chunks=crash_after_chunks,
            ).sync()

        self.last_report = failover(
            self.peers, sync_from,
            empty_error=SyncError("no peers available", reason="no_peers",
                                  shard_id=self.shard_id),
        )
        self._open()
        return self.last_report

    def _local_height(self) -> int:
        shard = self.shard
        return shard.chain.height if shard is not None else 0

    def _beacon_header(self, height: int):
        return self.beacon.chain.block_at(height).header

    def _open(self) -> None:
        from ..persist.durable import DurableStorage

        self.shard = Shard(
            self.shard_id,
            self.params,
            anchor_batch_size=self.anchor_batch_size,
            storage=DurableStorage(self.storage_dir),
        )

    def close(self) -> None:
        if self.shard is not None:
            self.shard.close()
            self.shard = None
        self.node.net.unregister(self.node.node_id)

    # ------------------------------------------------------------------
    # Serving (the replica answers the same queries as its source shard)
    # ------------------------------------------------------------------
    def _require_open(self) -> Shard:
        if self.shard is None:
            raise SyncError("replica has not caught up yet",
                            reason="not_synced", shard_id=self.shard_id)
        return self.shard

    @property
    def chain(self):
        return self._require_open().chain

    @property
    def query(self):
        return self._require_open().query

    def history(self, subject: str) -> list[dict]:
        return self._require_open().query.history(subject)

    def federated_proof(self, record_id: str) -> FederatedProof:
        """Package one record's full evidence chain, exactly as the
        source facade's :meth:`~repro.sharding.query.ShardedQueryEngine.
        federated_proof` would."""
        shard = self._require_open()
        if not shard.anchor.is_anchored(record_id):
            raise QueryError(
                f"record {record_id!r} is not anchored on this replica"
            )
        anchor_bundle = shard.anchor.prove_for_light_client(record_id)
        shard_header = shard.chain.block_at(
            anchor_bundle.block_height
        ).header
        beacon_bundle = self.beacon.light_bundle(
            self.shard_id, shard_header.height, shard_header.block_hash
        )
        return FederatedProof(
            shard_id=self.shard_id,
            record_id=record_id,
            anchor_bundle=anchor_bundle,
            shard_header=shard_header,
            beacon_bundle=beacon_bundle,
        )
