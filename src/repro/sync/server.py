"""Snapshot server: serves one shard's image + block tail to replicas.

The server is deliberately *untrusted* by its clients: everything it
serves is either hash-bound to the manifest (chunks), hash-chained to
the head (tail frames), or beacon-anchored (the head itself, via the
:class:`~repro.sharding.beacon.BeaconLightBundle` shipped with every
offer).  A correct client therefore accepts nothing on the server's
word alone — see :mod:`repro.sync.client`.

Serving is cheap by construction:

* the image (state entries + anchor state + records) is built once per
  head and cached; chunk requests are list lookups;
* tail blocks come straight off the durable store's segment log as raw
  frames (:meth:`~repro.persist.durable.DurableBlockStore.raw_block_item`
  — no decode); an in-memory source falls back to encoding the live
  block objects.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from ..errors import ShardError, SyncError
from ..network.message import SizedList
from ..obs.runtime import telemetry as default_telemetry
from ..persist.codec import encode_block, encode_receipt
from .codec import DEFAULT_CHUNK_SIZE, SnapshotManifest, encode_image

SYNC_TOPICS = ("sync/offer", "sync/chunk", "sync/tail")


@dataclass
class _CachedImage:
    manifest: SnapshotManifest
    chunks: list[bytes]


def tail_item(chain, height: int) -> dict:
    """One block's wire material: raw frame + index rows.

    Durable stores serve the exact log frame without decoding; memory
    stores encode the live object (byte-identical — the frame format
    *is* the canonical encoding).
    """
    store = chain.store
    raw = getattr(store, "raw_block_item", None)
    if raw is not None:
        return raw(height)
    block = store.block_at(height)
    receipts = [store.receipt_for(tx.tx_id) for tx in block.transactions]
    frame = encode_block(block)
    return {
        "height": height,
        "block_hash": block.block_hash,
        "frame": frame,
        "crc": zlib.crc32(frame),
        "tx_ids": [tx.tx_id for tx in block.transactions],
        "receipts": [encode_receipt(r) if r is not None else None
                     for r in receipts],
    }


class SnapshotServer:
    """Serves snapshot offers, image chunks, and block tails for every
    shard of one :class:`~repro.sharding.shardchain.ShardedChain`.

    Attach to a gateway node with
    :meth:`~repro.network.node.ChainNode.serve_sync`.
    """

    def __init__(self, sharded, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_tail_blocks: int = 512) -> None:
        self.sharded = sharded
        self.chunk_size = chunk_size
        self.max_tail_blocks = max_tail_blocks
        # Per shard, the most recent images (newest last).  Keeping the
        # previous head's image alive lets a client that started
        # downloading before the source sealed another round finish its
        # chunks instead of failing over mid-sync.
        self._images: dict[int, list[_CachedImage]] = {}
        self._images_kept = 2
        # Plain-int attrs are the accessor API the tests/benches read;
        # the registry counters mirror them per serve (serving is cold
        # path — one inc per network request costs nothing that
        # matters).
        self.offers_served = 0
        self.chunks_served = 0
        self.tail_blocks_served = 0
        registry = default_telemetry().registry
        self._m_offers = registry.counter("sync_offers_served_total")
        self._m_chunks = registry.counter("sync_chunks_served_total")
        self._m_tail = registry.counter("sync_tail_blocks_served_total")

    # ------------------------------------------------------------------
    # Request dispatch (the ChainNode topic handler calls this)
    # ------------------------------------------------------------------
    def handle(self, topic: str, body: dict) -> dict:
        shard_id = int(body.get("shard_id", -1))
        if topic == "sync/offer":
            return self.offer(shard_id)
        if topic == "sync/chunk":
            return self.chunk(shard_id, int(body["height"]),
                              int(body["index"]))
        if topic == "sync/tail":
            return self.tail(shard_id, int(body["start"]),
                             int(body["count"]), int(body["upto"]))
        raise SyncError(f"unknown sync topic {topic!r}",
                        reason="bad_request")

    # ------------------------------------------------------------------
    # Offers
    # ------------------------------------------------------------------
    def offer(self, shard_id: int) -> dict:
        """Build (or refresh) the shard's snapshot image and return the
        manifest plus the beacon light bundle proving its head."""
        try:
            shard = self.sharded.shard(shard_id)
        except ShardError as exc:
            raise SyncError(str(exc), reason="bad_request",
                            shard_id=shard_id) from exc
        height = shard.chain.height
        if height < 1:
            raise SyncError(
                f"shard {shard_id} has no blocks beyond genesis",
                reason="stale_snapshot", shard_id=shard_id,
            )
        entry = self.sharded.beacon.anchored_entry(shard_id, height)
        if entry is None or not entry[3]:
            raise SyncError(
                f"shard {shard_id} head {height} is not beacon-anchored "
                "with a state commitment; seal a round first",
                reason="unanchored_head", shard_id=shard_id,
            )
        head_hash = shard.chain.head.block_hash
        image = self._image_for(shard, height, head_hash, entry[3])
        bundle = self.sharded.beacon.light_bundle(
            shard_id, height, head_hash
        )
        self.offers_served += 1
        self._m_offers.inc()
        return {
            "manifest": image.manifest.to_mapping(),
            "_bundle_ref": bundle,
        }

    def _image_for(self, shard, height: int, head_hash: bytes,
                   state_root: bytes) -> _CachedImage:
        kept = self._images.setdefault(shard.shard_id, [])
        for cached in kept:
            if cached.manifest.height == height \
                    and cached.manifest.block_hash == head_hash:
                return cached
        image_bytes = encode_image(
            shard.chain.state.dump_entries(),
            shard.anchor.dump_state(),
            shard.database.records(),
        )
        manifest, chunks = SnapshotManifest.for_image(
            shard_id=shard.shard_id,
            chain_id=shard.chain.chain_id,
            height=height,
            block_hash=head_hash,
            state_root=state_root,
            image=image_bytes,
            chunk_size=self.chunk_size,
        )
        cached = _CachedImage(manifest=manifest, chunks=chunks)
        kept.append(cached)
        del kept[:-self._images_kept]
        return cached

    # ------------------------------------------------------------------
    # Chunks
    # ------------------------------------------------------------------
    def chunk(self, shard_id: int, height: int, index: int) -> dict:
        cached = next(
            (c for c in self._images.get(shard_id, ())
             if c.manifest.height == height), None,
        )
        if cached is None:
            raise SyncError(
                f"no current image for shard {shard_id} at height "
                f"{height}; re-request an offer",
                reason="stale_snapshot", shard_id=shard_id,
            )
        if not 0 <= index < len(cached.chunks):
            raise SyncError(f"chunk index {index} out of range",
                            reason="bad_request", shard_id=shard_id)
        self.chunks_served += 1
        self._m_chunks.inc()
        return {"index": index, "data": cached.chunks[index]}

    # ------------------------------------------------------------------
    # Block tail
    # ------------------------------------------------------------------
    def tail(self, shard_id: int, start: int, count: int,
             upto: int) -> dict:
        try:
            shard = self.sharded.shard(shard_id)
        except ShardError as exc:
            raise SyncError(str(exc), reason="bad_request",
                            shard_id=shard_id) from exc
        upto = min(upto, shard.chain.height)
        count = max(1, min(count, self.max_tail_blocks))
        span = min(start + count, upto + 1) - start
        ranged = getattr(shard.chain.store, "raw_block_items", None)
        if span > 0 and ranged is not None:
            items = ranged(start, span)
        else:
            items = [tail_item(shard.chain, h)
                     for h in range(start, start + max(0, span))]
        self.tail_blocks_served += len(items)
        self._m_tail.inc(len(items))
        wire_size = sum(
            len(item["frame"])
            + sum(len(r) for r in item["receipts"] if r is not None)
            + 48 * (len(item["tx_ids"]) + 1)
            for item in items
        )
        return {"start": start,
                "items": SizedList(items, size_bytes=wire_size),
                "head_height": shard.chain.height}
