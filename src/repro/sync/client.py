"""Snapshot client: verified catch-up against an untrusted peer.

Trust model — the serving peer is assumed byzantine; the only trust
root is a source of **beacon block headers** (``beacon_header_for``).
Every accepted artifact is walked back to it:

1. *Offer*: the manifest's ``(shard, height, head hash, state root)``
   must be proven by the accompanying
   :class:`~repro.sharding.beacon.BeaconLightBundle` against a beacon
   header the client fetched from its own trust root.
2. *Chunks*: each chunk must hash to its manifest entry; the assembled
   image's state entries must recompute exactly the beacon-anchored
   state root.
3. *Tail*: raw block frames are header-scanned (no decode) and
   hash-chained from the replica's current base to the head; the final
   hash must equal the beacon-verified head hash, or everything
   installed by this attempt is truncated away before the error
   surfaces.  Frames are installed byte-identical, so later reads still
   run the full ``decode_block`` integrity check.

Crash resumability — downloaded chunks are staged under the replica's
store directory and re-verified (against the *new* offer) on restart;
installed blocks persist in the store, and a ``sync_base`` meta marker
remembers where this sync started so a crashed-and-resumed attempt (or
a failover to a second peer) can always wipe back to pre-sync state.
The ``crash_after_chunks`` hook injects a mid-download kill the same
way ``SegmentLog.fail_after_bytes`` injects mid-write crashes.
"""

from __future__ import annotations

import os
import shutil
import zlib
from dataclasses import dataclass, field

from ..chain.block import GENESIS_PREV_HASH
from ..chain.state import StateStore
from ..errors import SerializationError, StorageError, SyncError
from ..net_retry import RetryPolicy, request_with_retries
from ..obs.runtime import telemetry as default_telemetry
from ..persist.codec import decode_block
from ..persist.durable import DurableStorage
from ..persist.segment import CrashPoint
from ..sharding.beacon import BeaconLightBundle
from .codec import SnapshotManifest, chunk_digest, decode_image, \
    scan_block_frame

_STAGING_DIR = "sync-staging"
_MANIFEST_FILE = "manifest.bin"
_BASE_META_KEY = "sync_base"
_ANCHOR_META_KEY = "anchor_state"   # Shard._ANCHOR_META_KEY


@dataclass
class SyncReport:
    """What one :meth:`SnapshotClient.sync` actually did."""

    shard_id: int
    peer: str
    height: int = 0
    head_hash: bytes = b""
    blocks_installed: int = 0
    chunks_downloaded: int = 0
    chunks_reused: int = 0
    state_entries: int = 0
    records_installed: int = 0
    bytes_received: int = 0
    requests: int = 0
    retries: int = 0
    resumed: bool = False
    errors: list[dict] = field(default_factory=list)


class SnapshotClient:
    """Catches one shard replica's store up to a beacon-verified head."""

    def __init__(
        self,
        node,
        peer: str,
        shard_id: int,
        storage_dir: str,
        beacon_header_for,
        chain_id: str | None = None,
        min_height: int = 1,
        max_retries: int = 8,
        tail_batch: int = 64,
        deep_verify: bool = False,
        crash_after_chunks: int | None = None,
    ) -> None:
        self.node = node
        self.peer = peer
        self.shard_id = shard_id
        self.storage_dir = os.fspath(storage_dir)
        self.beacon_header_for = beacon_header_for
        self.chain_id = chain_id
        self.min_height = min_height
        self.max_retries = max_retries
        self.tail_batch = tail_batch
        self.deep_verify = deep_verify
        self.crash_after_chunks = crash_after_chunks
        self._responses: dict[str, dict] = {}
        self._req_seq = 0
        self._tracer = default_telemetry().tracer
        self.report = SyncReport(shard_id=shard_id, peer=peer)
        for topic in ("sync/offer", "sync/chunk", "sync/tail"):
            # Deliberate takeover: each catch-up attempt builds a fresh
            # client, and the newest client owns the response mailbox
            # (a stale predecessor must not swallow our responses).
            node.on_topic(topic, self._on_response, replace=True)

    # ------------------------------------------------------------------
    # Request/response over SimNet (stop-and-wait with retries)
    # ------------------------------------------------------------------
    def _on_response(self, msg) -> None:
        body = dict(msg.body)
        if body.get("resp") and body.get("req_id"):
            self._responses[body["req_id"]] = body

    def _fail(self, message: str, reason: str, detail: str = "") -> SyncError:
        err = SyncError(message, reason=reason, shard_id=self.shard_id,
                        peer=self.peer, detail=detail)
        self.report.errors.append(err.as_dict())
        return err

    def _count_attempt(self, attempt: int) -> None:
        self.report.requests += 1
        if attempt:
            self.report.retries += 1

    def _request(self, topic: str, body: dict) -> dict:
        req_id = f"{self.node.node_id}:{self._req_seq}"
        self._req_seq += 1
        body = dict(body, shard_id=self.shard_id, req=True, req_id=req_id)
        resp = request_with_retries(
            self.node, self.peer, topic, body,
            req_id=req_id,
            responses=self._responses,
            policy=RetryPolicy(max_retries=self.max_retries),
            on_attempt=self._count_attempt,
        )
        if resp is None:
            raise self._fail(
                f"peer {self.peer} did not answer {topic} after "
                f"{self.max_retries + 1} attempts",
                reason="peer_unresponsive",
            )
        if "error" in resp:
            err = dict(resp["error"])
            raise self._fail(
                f"peer {self.peer} refused {topic}: "
                f"{resp.get('message', err.get('reason'))}",
                reason=str(err.get("reason", "peer_error")),
            )
        return resp

    # ------------------------------------------------------------------
    # The sync pipeline
    # ------------------------------------------------------------------
    def sync(self) -> SyncReport:
        """Run offer → chunks → tail → install; returns the report.

        Fails closed: on any verification error the store is restored to
        its pre-sync base before :class:`~repro.errors.SyncError`
        propagates.

        Telemetry: the whole attempt runs under an (always-sampled —
        syncs are rare) ``sync.catch_up`` root span with fetch child
        spans, and the report's progress counters are mirrored into the
        registry even when the attempt fails mid-flight.
        """
        tel = default_telemetry()
        self._tracer = tel.tracer
        with self._tracer.root_span("sync.catch_up", sampled=True) as span:
            span.set_attr("shard", self.shard_id)
            span.set_attr("peer", self.peer)
            try:
                report = self._sync_impl()
            finally:
                self._publish_metrics(tel.registry)
            span.set_attr("height", report.height)
            span.set_attr("blocks", report.blocks_installed)
            return report

    # Registry counters already published by an earlier sync() on this
    # client, so a re-run incs only the delta.
    _published: dict | None = None

    def _publish_metrics(self, registry) -> None:
        report = self.report
        previous = self._published or {}
        current = {
            "sync_chunks_downloaded_total": report.chunks_downloaded,
            "sync_chunks_reused_total": report.chunks_reused,
            "sync_tail_blocks_installed_total": report.blocks_installed,
            "sync_bytes_received_total": report.bytes_received,
            "sync_requests_total": report.requests,
            "sync_retries_total": report.retries,
        }
        for name, value in current.items():
            delta = value - previous.get(name, 0)
            if delta > 0:
                registry.counter(name, shard=str(self.shard_id)).inc(delta)
        self._published = current

    def _sync_impl(self) -> SyncReport:
        storage = DurableStorage(self.storage_dir)
        try:
            manifest, bundle = self._verified_offer()
            base = storage.get_meta(_BASE_META_KEY)
            if base is None:
                base = storage.blocks.height()
                storage.put_meta(_BASE_META_KEY, base)
            else:
                base = int(base)
                self.report.resumed = True
            try:
                with self._tracer.span("sync.fetch_image") as fetch_span:
                    image = self._fetch_image(manifest)
                    fetch_span.set_attr(
                        "chunks", self.report.chunks_downloaded
                    )
                entries = self._verified_state(manifest, image)
                with self._tracer.span("sync.fetch_tail"):
                    self._fetch_tail(storage, manifest)
                self._install_image(storage, manifest, entries)
            except SyncError:
                # Wipe whatever this (or a crashed previous) attempt
                # installed so a failover to another peer starts clean.
                if storage.blocks.height() > base:
                    storage.blocks.truncate_above(base)
                raise
            storage.put_meta(_BASE_META_KEY, None)
            storage.sync()
            self._clear_staging()
            self.report.height = manifest.height
            self.report.head_hash = manifest.block_hash
            return self.report
        finally:
            # The image (every state entry + record, decoded) must not
            # outlive the sync: the node keeps this client reachable
            # through its topic handlers.
            self._image = None
            self._responses.clear()
            storage.close()

    # -- offer ---------------------------------------------------------
    def _verified_offer(self) -> tuple[SnapshotManifest, BeaconLightBundle]:
        resp = self._request("sync/offer", {})
        try:
            manifest = SnapshotManifest.from_mapping(resp["manifest"])
        except (KeyError, TypeError) as exc:
            raise self._fail(f"malformed offer: {exc}",
                             reason="bad_manifest") from exc
        bundle = resp.get("_bundle_ref")
        if manifest.shard_id != self.shard_id:
            raise self._fail(
                f"offer is for shard {manifest.shard_id}, "
                f"wanted {self.shard_id}", reason="forged_offer",
            )
        if self.chain_id is not None and manifest.chain_id != self.chain_id:
            raise self._fail(
                f"offer is for chain {manifest.chain_id!r}, "
                f"wanted {self.chain_id!r}", reason="forged_offer",
            )
        if manifest.height < self.min_height:
            raise self._fail(
                f"stale snapshot: offered height {manifest.height} "
                f"below required {self.min_height}",
                reason="stale_snapshot",
            )
        if not isinstance(bundle, BeaconLightBundle):
            raise self._fail("offer lacks a beacon light bundle",
                             reason="forged_offer")
        proof = bundle.shard_proof
        if (proof.shard_id != manifest.shard_id
                or proof.height != manifest.height
                or proof.block_hash != manifest.block_hash
                or not manifest.state_root
                or proof.state_root != manifest.state_root):
            raise self._fail(
                "beacon bundle does not cover the offered "
                "(height, head hash, state root)", reason="forged_offer",
            )
        try:
            header = self.beacon_header_for(proof.beacon_height)
        except Exception as exc:  # noqa: BLE001 - any trust-root miss
            raise self._fail(
                f"no trusted beacon header at height "
                f"{proof.beacon_height}: {exc}", reason="forged_offer",
            ) from exc
        if header is None or not bundle.verify(header):
            raise self._fail(
                "offer head is not anchored under the trusted beacon "
                "header", reason="forged_offer",
            )
        return manifest, bundle

    # -- chunks (staged, resumable) -------------------------------------
    def _staging_path(self, *parts: str) -> str:
        return os.path.join(self.storage_dir, _STAGING_DIR, *parts)

    def _clear_staging(self) -> None:
        shutil.rmtree(self._staging_path(), ignore_errors=True)

    def _fetch_image(self, manifest: SnapshotManifest) -> bytes:
        staging = self._staging_path()
        manifest_path = self._staging_path(_MANIFEST_FILE)
        digest = manifest.digest()
        if os.path.isdir(staging):
            try:
                with open(manifest_path, "rb") as fh:
                    stale = fh.read() != digest
            except OSError:
                stale = True
            if stale:
                # The staged download belongs to a different image
                # (source advanced, or another peer's chunking).
                self._clear_staging()
        os.makedirs(staging, exist_ok=True)
        with open(manifest_path, "wb") as fh:
            fh.write(digest)
        chunks: list[bytes] = []
        downloaded = 0
        for index, expected in enumerate(manifest.chunk_hashes):
            path = self._staging_path(f"chunk-{index:06d}.bin")
            data = None
            try:
                with open(path, "rb") as fh:
                    staged = fh.read()
                if chunk_digest(staged) == expected:
                    data = staged
                    self.report.chunks_reused += 1
            except OSError:
                pass
            if data is None:
                resp = self._request(
                    "sync/chunk",
                    {"height": manifest.height, "index": index},
                )
                data = bytes(resp.get("data", b""))
                if chunk_digest(data) != expected:
                    raise self._fail(
                        f"chunk {index} does not hash to its manifest "
                        "entry", reason="corrupt_chunk",
                    )
                with open(path, "wb") as fh:
                    fh.write(data)
                self.report.bytes_received += len(data)
                self.report.chunks_downloaded += 1
                downloaded += 1
                if self.crash_after_chunks is not None \
                        and downloaded >= self.crash_after_chunks:
                    self.crash_after_chunks = None
                    raise CrashPoint(
                        f"injected client crash after {downloaded} "
                        "chunk downloads"
                    )
            chunks.append(data)
        image = b"".join(chunks)
        if len(image) != manifest.total_bytes:
            raise self._fail(
                f"assembled image is {len(image)} bytes; manifest "
                f"promises {manifest.total_bytes}", reason="corrupt_image",
            )
        return image

    # -- state verification ---------------------------------------------
    def _verified_state(self, manifest: SnapshotManifest,
                        image_bytes: bytes) -> list:
        try:
            image = decode_image(image_bytes)
        except SyncError as exc:
            self.report.errors.append(exc.as_dict())
            raise
        entries = image["state"]
        probe = StateStore()
        probe.load_entries(entries)
        if probe.state_root() != manifest.state_root:
            raise self._fail(
                "state image does not recompute the beacon-anchored "
                "state root", reason="state_root_mismatch",
            )
        self._image = image
        return entries

    # -- tail ------------------------------------------------------------
    def _fetch_tail(self, storage: DurableStorage,
                    manifest: SnapshotManifest) -> None:
        store = storage.blocks
        local = store.height()
        if local > manifest.height:
            raise self._fail(
                f"local store is at height {local}, beyond the offered "
                f"snapshot {manifest.height}", reason="stale_snapshot",
            )
        prev_hash = GENESIS_PREV_HASH if local < 0 \
            else store.head_block().block_hash
        while local < manifest.height:
            start = local + 1
            resp = self._request("sync/tail", {
                "start": start, "count": self.tail_batch,
                "upto": manifest.height,
            })
            items = resp.get("items") or []
            batch: list[dict] = []
            for item in items:
                height = int(item.get("height", -1))
                if height != start + len(batch):
                    raise self._fail(
                        f"tail item height {height} out of sequence "
                        f"(expected {start + len(batch)})",
                        reason="forged_tail",
                    )
                if height > manifest.height:
                    # Nothing above the beacon-verified head is ever
                    # installed: blocks up there have no anchored hash
                    # to terminate the chain check against.
                    raise self._fail(
                        f"tail block {height} is beyond the offered "
                        f"head {manifest.height}", reason="forged_tail",
                    )
                frame = bytes(item.get("frame", b""))
                # Byte-exactness first: the CRC covers the whole frame
                # (the header scan below only walks header fields), so
                # any accidental corruption of transaction bytes is
                # rejected here; forged-but-consistent bytes are the
                # hash chain's and decode-on-read's problem.
                if zlib.crc32(frame) != int(item.get("crc", -1)):
                    raise self._fail(
                        f"tail frame at height {height} fails its CRC",
                        reason="corrupt_block",
                    )
                try:
                    scanned = scan_block_frame(frame)
                except SerializationError as exc:
                    raise self._fail(
                        f"tail frame at height {height} does not scan: "
                        f"{exc}", reason="corrupt_block",
                    ) from exc
                if scanned.height != height \
                        or scanned.header.prev_hash != prev_hash:
                    raise self._fail(
                        f"tail block {height} does not hash-chain to "
                        "its predecessor", reason="forged_tail",
                    )
                tx_ids = [str(t) for t in item.get("tx_ids", [])]
                receipts = list(item.get("receipts", []))
                if len(tx_ids) != scanned.tx_count \
                        or len(receipts) != scanned.tx_count:
                    raise self._fail(
                        f"tail block {height} index metadata does not "
                        "match its transaction count",
                        reason="corrupt_block",
                    )
                block_hash = scanned.block_hash
                if self.deep_verify:
                    try:
                        block = decode_block(frame,
                                             expected_hash=block_hash)
                    except (SerializationError, StorageError) as exc:
                        raise self._fail(
                            f"tail block {height} fails deep "
                            f"verification: {exc}", reason="forged_tail",
                        ) from exc
                    decoded_ids = [tx.tx_id for tx in block.transactions]
                    if decoded_ids != tx_ids:
                        raise self._fail(
                            f"tail block {height} transaction index is "
                            "forged", reason="forged_tail",
                        )
                batch.append({
                    "height": height,
                    "block_hash": block_hash,
                    "frame": frame,
                    "tx_ids": tx_ids,
                    "receipts": [bytes(r) if r is not None else None
                                 for r in receipts],
                })
                prev_hash = block_hash
                self.report.bytes_received += len(frame)
            if not batch:
                raise self._fail(
                    f"peer served an empty tail batch at height {start} "
                    f"(head {manifest.height} unreached)",
                    reason="truncated_tail",
                )
            if batch[-1]["height"] == manifest.height \
                    and batch[-1]["block_hash"] != manifest.block_hash:
                raise self._fail(
                    "tail does not terminate at the beacon-verified "
                    "head hash", reason="forged_tail",
                )
            store.install_raw(batch)
            self.report.blocks_installed += len(batch)
            local = store.height()

    # -- final install ----------------------------------------------------
    def _install_image(self, storage: DurableStorage,
                       manifest: SnapshotManifest, entries: list) -> None:
        image = self._image
        records = list(image["records"])
        existing = len(storage.records)
        if existing > len(records):
            raise self._fail(
                f"replica already holds {existing} records; image has "
                f"only {len(records)}", reason="stale_snapshot",
            )
        # Re-sync path: repoint any record the source annotated since
        # the last catch-up, then group-append the new suffix.
        for position in range(existing):
            current = storage.records.get(position)
            if current != records[position]:
                storage.records.replace(position, records[position])
        storage.records.append_many(records[existing:])
        self.report.records_installed = len(records) - existing
        self.report.state_entries = len(entries)
        storage.put_meta(_ANCHOR_META_KEY, image["anchor"])
        storage.state.save(manifest.height, entries,
                           block_hash=manifest.block_hash)
