"""Snapshot sync: verified replica catch-up over the simulated network.

Design note
-----------

The paper's consortium deployments assume late joiners — a new member
org, a restarted node, an external auditor — can reach the current head
*without* replaying the chain from genesis and *without* trusting the
node that serves them.  PR 3/PR 4 built the local ingredients (state
images, durable block logs, beacon receipts); this package adds the
missing network protocol on three :class:`~repro.network.node.ChainNode`
topics:

* ``sync/offer`` — :class:`SnapshotServer` answers with a
  :class:`~repro.sync.codec.SnapshotManifest` (shard, height, head
  hash, state root, per-chunk hashes) plus a
  :class:`~repro.sharding.beacon.BeaconLightBundle` proving that exact
  ``(height, head hash, state root)`` triple is committed under a
  beacon header.  Sealing rounds now tag each shard's head with its
  post-execution :meth:`~repro.chain.state.StateStore.state_root`, so
  the beacon — not the peer — vouches for the image.
* ``sync/chunk`` — the image (state entries + anchor-service state +
  provenance records, one canonical byte string) in fixed-size chunks,
  each hash-checked against the manifest; downloads are staged on disk
  and resume by chunk index across client crashes.
* ``sync/tail`` — the block history as **raw segment-log frames**
  (served without decoding, installed without executing).  The client
  header-scans each frame (:func:`~repro.sync.codec.scan_block_frame`,
  no transaction objects, ~one SHA per block) and hash-chains genesis →
  head; the chain must terminate at the beacon-verified head hash or
  everything the attempt installed is truncated away.

Trust recap — the serving peer is byzantine until proven otherwise:
chunk ⇒ manifest hash ⇒ beacon-anchored state root; frame ⇒ header
hash-chain ⇒ beacon-anchored head hash; anything else (forged offer,
stale snapshot, truncated tail, corrupt chunk) fails closed with a
structured :class:`~repro.errors.SyncError` and
:meth:`~repro.sync.replica.ShardReplica.catch_up` retries the next
peer.  Record bodies, execution receipts, and the tail's tx-id index
rows are transport-checked (chunk hashes / frame CRCs) rather than
chain-committed — this chain commits none of them in block headers, so
that is exactly the trust level a source full node offers; pass
``deep_verify=True`` to additionally recompute every tail block's
transactions and tx ids from the frame bytes, and note that every
*verified* query on the replica still proves records against beacon
headers, so a forged image cannot produce a verified answer.
Installed frames are byte-identical to the source's log, so reads
re-run the full ``decode_block`` hash check and the replica serves
byte-identical query and proof results.

The payoff measured by ``benchmarks/bench_sync.py``: catch-up installs
state by :meth:`~repro.chain.state.StateStore.load_entries` and blocks
by raw-frame group commit, so a replica reaches a 2 000-block head with
``blocks_replayed_on_open == 0`` several times faster than the only
pre-sync alternative, re-executing every block from genesis.
"""

from .client import SnapshotClient, SyncReport
from .codec import (
    DEFAULT_CHUNK_SIZE,
    ScannedBlock,
    SnapshotManifest,
    chunk_digest,
    decode_image,
    encode_image,
    scan_block_frame,
    split_chunks,
)
from .replica import ShardReplica
from .server import SYNC_TOPICS, SnapshotServer, tail_item

__all__ = [
    "DEFAULT_CHUNK_SIZE",
    "SYNC_TOPICS",
    "ScannedBlock",
    "ShardReplica",
    "SnapshotClient",
    "SnapshotManifest",
    "SnapshotServer",
    "SyncReport",
    "chunk_digest",
    "decode_image",
    "encode_image",
    "scan_block_frame",
    "split_chunks",
    "tail_item",
]
