"""Off-chain storage substrates.

The surveyed systems keep bulky data off-chain and anchor only hashes:
IPFS ([33], HealthBlock, Ahmed et al.) and cloud object stores
(ProvChain's OpenStack Swift).  This package provides both, plus the
indexed provenance database the query layer runs against.
"""

from .cas import ContentAddressedStore, CID
from .cloudstore import CloudObjectStore, StoreOperation
from .provdb import ProvenanceDatabase

__all__ = [
    "ContentAddressedStore",
    "CID",
    "CloudObjectStore",
    "StoreOperation",
    "ProvenanceDatabase",
]
