"""Indexed off-chain provenance database.

The query-side store: provenance records live here in full, indexed by
id, subject, actor, operation, and time range, while the chain holds only
batch anchors.  The query engine (:mod:`repro.provenance.query`) answers
from this database and *verifies* answers against the chain anchors.

Deliberately implemented as explicit inverted indexes over an append-only
record list — the structures a real deployment would get from its RDBMS,
made visible so the scan-vs-index ablation (EVAL-QUERY) measures something
honest.

Storage split (ISSUE 3): the record list itself now lives behind a
pluggable :class:`~repro.persist.stores.RecordStore` — in-memory by
default, or the durable segment-log backend whose sqlite index also maps
record_id → log location.  The inverted indexes stay in memory either way
(positions are cheap); opening a database on a non-empty durable store
rebuilds them with one pass over the log, which is a load, not a replay —
no hashing, no chain execution.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from typing import Any, Callable, Iterator, Mapping

from ..errors import QueryError, UnknownEntity
from ..persist.stores import MemoryRecordStore, RecordStore


class ProvenanceDatabase:
    """Append-only record store with inverted indexes."""

    def __init__(self, store: RecordStore | None = None) -> None:
        self._store: RecordStore = store if store is not None \
            else MemoryRecordStore()
        self._by_id: dict[str, int] = {}
        self._by_subject: defaultdict[str, list[int]] = defaultdict(list)
        self._by_actor: defaultdict[str, list[int]] = defaultdict(list)
        self._by_operation: defaultdict[str, list[int]] = defaultdict(list)
        # (timestamp, position) pairs kept sorted for range queries.
        self._by_time: list[tuple[int, int]] = []
        if len(self._store):
            self._rebuild_indexes()

    @property
    def store(self) -> RecordStore:
        return self._store

    def _rebuild_indexes(self) -> None:
        """One pass over a reopened store to repopulate the inverted
        indexes (positions only; record bodies stay on disk)."""
        for position, stored in self._store.iter_items():
            self._index_record(position, stored)

    def _index_record(self, position: int, stored: Mapping[str, Any]) -> None:
        self._by_id[str(stored["record_id"])] = position
        subject = stored.get("subject")
        if subject:
            self._by_subject[str(subject)].append(position)
        actor = stored.get("actor")
        if actor:
            self._by_actor[str(actor)].append(position)
        operation = stored.get("operation")
        if operation:
            self._by_operation[str(operation)].append(position)
        timestamp = stored.get("timestamp")
        if timestamp is not None:
            insort(self._by_time, (int(timestamp), position))

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def insert(self, record: Mapping[str, Any]) -> int:
        """Insert a record dict; returns its position.

        Required fields: ``record_id``; indexed when present: ``subject``
        (the data artifact), ``actor`` (who acted), ``operation``,
        ``timestamp``.
        """
        record_id = record.get("record_id")
        if not record_id:
            raise QueryError("record needs a record_id")
        if record_id in self._by_id:
            raise QueryError(f"duplicate record_id {record_id!r}")
        stored = dict(record)
        position = self._store.append(stored)
        self._index_record(position, stored)
        return position

    def insert_many(self, records) -> int:
        """Batched insert: validate ids up front, then hand the whole
        batch to the store's group-commit surface (one log write + one
        index transaction on the durable backend) and index in one
        pass.  All-or-nothing: a duplicate id anywhere rejects the batch
        before anything is stored."""
        stored_batch: list[dict] = []
        seen: set[str] = set()
        for record in records:
            record_id = record.get("record_id")
            if not record_id:
                raise QueryError("record needs a record_id")
            if record_id in self._by_id or record_id in seen:
                raise QueryError(f"duplicate record_id {record_id!r}")
            seen.add(record_id)
            stored_batch.append(dict(record))
        if not stored_batch:
            return 0
        positions = self._store.append_many(stored_batch)
        for position, stored in zip(positions, stored_batch):
            self._index_record(position, stored)
        return len(stored_batch)

    # ------------------------------------------------------------------
    # Point & indexed lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._store)

    def get(self, record_id: str) -> dict:
        position = self._by_id.get(record_id)
        if position is None:
            raise UnknownEntity(f"no record {record_id!r}")
        return self._store.get(position)

    def contains(self, record_id: str) -> bool:
        return record_id in self._by_id

    def by_subject(self, subject: str) -> list[dict]:
        return [self._store.get(i)
                for i in self._by_subject.get(subject, [])]

    def by_actor(self, actor: str) -> list[dict]:
        return [self._store.get(i) for i in self._by_actor.get(actor, [])]

    def by_operation(self, operation: str) -> list[dict]:
        return [self._store.get(i)
                for i in self._by_operation.get(operation, [])]

    def by_time_range(self, start: int, end: int) -> list[dict]:
        """Records with ``start <= timestamp < end`` (index-assisted)."""
        lo = bisect_left(self._by_time, (start, -1))
        hi = bisect_right(self._by_time, (end - 1, len(self._store)))
        return [self._store.get(pos) for _, pos in self._by_time[lo:hi]]

    # ------------------------------------------------------------------
    # Full scans (the baseline the index ablation compares against)
    # ------------------------------------------------------------------
    def scan(self, predicate: Callable[[dict], bool]) -> list[dict]:
        # Raw iteration, copying only the matches — the scan baseline
        # must not pay a per-record copy the index paths don't.
        return [dict(r) for r in self._store.iter_records_raw()
                if predicate(r)]

    def scan_subject(self, subject: str) -> list[dict]:
        """Unindexed equivalent of :meth:`by_subject`."""
        return self.scan(lambda r: r.get("subject") == subject)

    # ------------------------------------------------------------------
    # Iteration & maintenance
    # ------------------------------------------------------------------
    def records(self) -> Iterator[dict]:
        yield from self._store.iter_records()

    def annotate(self, record_id: str, **fields: Any) -> None:
        """Attach non-indexed metadata (e.g. anchor references)."""
        position = self._by_id.get(record_id)
        if position is None:
            raise UnknownEntity(f"no record {record_id!r}")
        record = self._store.get(position)
        record.update(fields)
        self._store.replace(position, record)

    @property
    def approximate_size_bytes(self) -> int:
        from ..serialization import canonical_encode

        return sum(len(canonical_encode(r))
                   for r in self._store.iter_records_raw())
