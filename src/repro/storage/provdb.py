"""Indexed off-chain provenance database.

The query-side store: provenance records live here in full, indexed by
id, subject, actor, operation, and time range, while the chain holds only
batch anchors.  The query engine (:mod:`repro.provenance.query`) answers
from this database and *verifies* answers against the chain anchors.

Deliberately implemented as explicit inverted indexes over an append-only
record list — the structures a real deployment would get from its RDBMS,
made visible so the scan-vs-index ablation (EVAL-QUERY) measures something
honest.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import defaultdict
from typing import Any, Callable, Iterator, Mapping

from ..errors import QueryError, UnknownEntity


class ProvenanceDatabase:
    """Append-only record store with inverted indexes."""

    def __init__(self) -> None:
        self._records: list[dict] = []
        self._by_id: dict[str, int] = {}
        self._by_subject: defaultdict[str, list[int]] = defaultdict(list)
        self._by_actor: defaultdict[str, list[int]] = defaultdict(list)
        self._by_operation: defaultdict[str, list[int]] = defaultdict(list)
        # (timestamp, position) pairs kept sorted for range queries.
        self._by_time: list[tuple[int, int]] = []

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def insert(self, record: Mapping[str, Any]) -> int:
        """Insert a record dict; returns its position.

        Required fields: ``record_id``; indexed when present: ``subject``
        (the data artifact), ``actor`` (who acted), ``operation``,
        ``timestamp``.
        """
        record_id = record.get("record_id")
        if not record_id:
            raise QueryError("record needs a record_id")
        if record_id in self._by_id:
            raise QueryError(f"duplicate record_id {record_id!r}")
        position = len(self._records)
        stored = dict(record)
        self._records.append(stored)
        self._by_id[str(record_id)] = position
        subject = stored.get("subject")
        if subject:
            self._by_subject[str(subject)].append(position)
        actor = stored.get("actor")
        if actor:
            self._by_actor[str(actor)].append(position)
        operation = stored.get("operation")
        if operation:
            self._by_operation[str(operation)].append(position)
        timestamp = stored.get("timestamp")
        if timestamp is not None:
            insort(self._by_time, (int(timestamp), position))
        return position

    def insert_many(self, records) -> int:
        count = 0
        for record in records:
            self.insert(record)
            count += 1
        return count

    # ------------------------------------------------------------------
    # Point & indexed lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def get(self, record_id: str) -> dict:
        position = self._by_id.get(record_id)
        if position is None:
            raise UnknownEntity(f"no record {record_id!r}")
        return dict(self._records[position])

    def contains(self, record_id: str) -> bool:
        return record_id in self._by_id

    def by_subject(self, subject: str) -> list[dict]:
        return [dict(self._records[i]) for i in self._by_subject.get(subject, [])]

    def by_actor(self, actor: str) -> list[dict]:
        return [dict(self._records[i]) for i in self._by_actor.get(actor, [])]

    def by_operation(self, operation: str) -> list[dict]:
        return [dict(self._records[i])
                for i in self._by_operation.get(operation, [])]

    def by_time_range(self, start: int, end: int) -> list[dict]:
        """Records with ``start <= timestamp < end`` (index-assisted)."""
        lo = bisect_left(self._by_time, (start, -1))
        hi = bisect_right(self._by_time, (end - 1, len(self._records)))
        return [dict(self._records[pos]) for _, pos in self._by_time[lo:hi]]

    # ------------------------------------------------------------------
    # Full scans (the baseline the index ablation compares against)
    # ------------------------------------------------------------------
    def scan(self, predicate: Callable[[dict], bool]) -> list[dict]:
        return [dict(r) for r in self._records if predicate(r)]

    def scan_subject(self, subject: str) -> list[dict]:
        """Unindexed equivalent of :meth:`by_subject`."""
        return self.scan(lambda r: r.get("subject") == subject)

    # ------------------------------------------------------------------
    # Iteration & maintenance
    # ------------------------------------------------------------------
    def records(self) -> Iterator[dict]:
        for record in self._records:
            yield dict(record)

    def annotate(self, record_id: str, **fields: Any) -> None:
        """Attach non-indexed metadata (e.g. anchor references) in place."""
        position = self._by_id.get(record_id)
        if position is None:
            raise UnknownEntity(f"no record {record_id!r}")
        self._records[position].update(fields)

    @property
    def approximate_size_bytes(self) -> int:
        from ..serialization import canonical_encode

        return sum(len(canonical_encode(r)) for r in self._records)
