"""Content-addressed store — the IPFS stand-in.

Preserves the contract the surveyed designs rely on: ``put`` returns a
content identifier (CID) that is a hash of the content, so the CID stored
on-chain *is* an integrity check for the off-chain bytes.  Large blobs are
chunked and addressed through a root manifest, mirroring IPFS's DAG
layout closely enough that chunk-level dedup shows up in the storage
benches.

Pinning and garbage collection are included because provenance systems
must argue *availability*, not just integrity: unpinned content can be
collected, and a dangling on-chain CID is precisely the failure mode the
paper's RQ1 challenges section warns about.
"""

from __future__ import annotations

import os
from collections.abc import MutableMapping, MutableSet
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..crypto.hashing import hash_bytes
from ..errors import ObjectNotFound, StorageError

DEFAULT_CHUNK_SIZE = 4096
_CHUNK_DOMAIN = b"\x10"
_MANIFEST_DOMAIN = b"\x11"


@dataclass(frozen=True)
class CID:
    """A content identifier: hash of the addressed bytes."""

    digest: bytes
    kind: str = "raw"  # "raw" chunk or "manifest"

    @property
    def hex(self) -> str:
        return self.digest.hex()

    def __str__(self) -> str:
        return f"cid:{self.kind}:{self.hex[:16]}"

    def to_canonical(self) -> dict:
        return {"digest": self.digest, "kind": self.kind}


class ContentAddressedStore:
    """In-memory content-addressed blob store with chunking and GC."""

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self._blobs: dict[bytes, bytes] = {}          # digest -> bytes
        self._manifests: dict[bytes, list[bytes]] = {}  # digest -> chunk digests
        self._pins: set[bytes] = set()
        self.puts = 0
        self.gets = 0
        self.dedup_hits = 0

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def put(self, content: bytes, pin: bool = True) -> CID:
        """Store ``content``; returns its CID.

        Content at or under the chunk size is stored as a single raw
        blob; larger content is chunked and addressed via a manifest.
        """
        if not isinstance(content, (bytes, bytearray)):
            raise StorageError("CAS stores bytes; encode first")
        content = bytes(content)
        self.puts += 1
        if len(content) <= self.chunk_size:
            cid = self._put_chunk(content)
        else:
            chunk_digests = []
            for offset in range(0, len(content), self.chunk_size):
                chunk = content[offset:offset + self.chunk_size]
                chunk_digests.append(self._put_chunk(chunk).digest)
            manifest_digest = hash_bytes(b"".join(chunk_digests),
                                         _MANIFEST_DOMAIN)
            self._manifests[manifest_digest] = chunk_digests
            cid = CID(manifest_digest, kind="manifest")
        if pin:
            self._pins.add(cid.digest)
        return cid

    def _put_chunk(self, chunk: bytes) -> CID:
        digest = hash_bytes(chunk, _CHUNK_DOMAIN)
        if digest in self._blobs:
            self.dedup_hits += 1
        else:
            self._blobs[digest] = chunk
        return CID(digest, kind="raw")

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def get(self, cid: CID) -> bytes:
        """Fetch content by CID; verifies integrity on the way out."""
        self.gets += 1
        if cid.kind == "raw":
            blob = self._blobs.get(cid.digest)
            if blob is None:
                raise ObjectNotFound(f"no blob for {cid}")
            if hash_bytes(blob, _CHUNK_DOMAIN) != cid.digest:
                raise StorageError(f"stored blob corrupted for {cid}")
            return blob
        chunk_digests = self._manifests.get(cid.digest)
        if chunk_digests is None:
            raise ObjectNotFound(f"no manifest for {cid}")
        parts = []
        for digest in chunk_digests:
            chunk = self._blobs.get(digest)
            if chunk is None:
                raise ObjectNotFound(
                    f"manifest {cid} references a collected chunk"
                )
            # Latent-bug fix: the manifest path used to skip the per-chunk
            # integrity check the raw path performs, silently returning
            # corrupted bytes for multi-chunk content.
            if hash_bytes(chunk, _CHUNK_DOMAIN) != digest:
                raise StorageError(f"stored chunk corrupted under {cid}")
            parts.append(chunk)
        return b"".join(parts)

    def has(self, cid: CID) -> bool:
        if cid.kind == "raw":
            return cid.digest in self._blobs
        return cid.digest in self._manifests

    def verify(self, cid: CID, content: bytes) -> bool:
        """Does ``content`` hash to ``cid``? (Integrity check against an
        on-chain anchor without touching the store.)"""
        if cid.kind == "raw":
            return hash_bytes(content, _CHUNK_DOMAIN) == cid.digest
        digests = []
        for offset in range(0, len(content), self.chunk_size):
            chunk = content[offset:offset + self.chunk_size]
            digests.append(hash_bytes(chunk, _CHUNK_DOMAIN))
        return hash_bytes(b"".join(digests), _MANIFEST_DOMAIN) == cid.digest

    # ------------------------------------------------------------------
    # Pinning & GC
    # ------------------------------------------------------------------
    def pin(self, cid: CID) -> None:
        if not self.has(cid):
            raise ObjectNotFound(f"cannot pin unknown {cid}")
        self._pins.add(cid.digest)

    def unpin(self, cid: CID) -> None:
        self._pins.discard(cid.digest)

    def collect_garbage(self) -> int:
        """Drop every blob/manifest not reachable from a pin.

        Returns the number of objects removed.
        """
        live_chunks: set[bytes] = set()
        live_manifests: set[bytes] = set()
        for digest in self._pins:
            if digest in self._manifests:
                live_manifests.add(digest)
                live_chunks.update(self._manifests[digest])
            elif digest in self._blobs:
                live_chunks.add(digest)
        removed = 0
        for digest in list(self._blobs):
            if digest not in live_chunks:
                del self._blobs[digest]
                removed += 1
        for digest in list(self._manifests):
            if digest not in live_manifests:
                del self._manifests[digest]
                removed += 1
        return removed

    # ------------------------------------------------------------------
    @property
    def stored_bytes(self) -> int:
        return sum(len(b) for b in self._blobs.values())

    @property
    def object_count(self) -> int:
        return len(self._blobs) + len(self._manifests)

    def put_many(self, blobs: Iterable[bytes]) -> list[CID]:
        return [self.put(blob) for blob in blobs]


# ----------------------------------------------------------------------
# File-backed CAS (cold-block archival)
# ----------------------------------------------------------------------
_DIGEST_LEN = 32


class _FileMap(MutableMapping):
    """digest → bytes mapping laid out as ``root/<hex[:2]>/<hex>``.

    Writes are tmp-file + ``os.replace`` + fsync, so every visible file
    is complete — a crash mid-put leaves at most an orphan tmp file,
    never a torn object (the CID *is* the integrity check anyway; the
    atomic write just keeps the failure loud instead of a hash
    mismatch on read)."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, digest: bytes) -> str:
        hexd = digest.hex()
        return os.path.join(self.root, hexd[:2], hexd)

    def __getitem__(self, digest: bytes) -> bytes:
        try:
            with open(self._path(digest), "rb") as fh:
                return fh.read()
        except OSError:
            raise KeyError(digest) from None

    def __setitem__(self, digest: bytes, value: bytes) -> None:
        path = self._path(digest)
        parent = os.path.dirname(path)
        os.makedirs(parent, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(value)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dir_fd = os.open(parent, os.O_RDONLY)
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def __delitem__(self, digest: bytes) -> None:
        try:
            os.unlink(self._path(digest))
        except OSError:
            raise KeyError(digest) from None

    def __contains__(self, digest: object) -> bool:
        return isinstance(digest, bytes) and \
            os.path.exists(self._path(digest))

    def __iter__(self) -> Iterator[bytes]:
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if name.endswith(".tmp"):
                    continue
                try:
                    yield bytes.fromhex(name)
                except ValueError:
                    continue

    def __len__(self) -> int:
        return sum(1 for _ in self)


class _ManifestFileMap(_FileMap):
    """Manifests are concatenated 32-byte chunk digests on disk."""

    def __getitem__(self, digest: bytes) -> list[bytes]:
        packed = super().__getitem__(digest)
        if len(packed) % _DIGEST_LEN:
            raise StorageError(
                f"manifest file for {digest.hex()[:16]} is torn"
            )
        return [packed[i:i + _DIGEST_LEN]
                for i in range(0, len(packed), _DIGEST_LEN)]

    def __setitem__(self, digest: bytes, value) -> None:
        super().__setitem__(digest, b"".join(value))


class _PinLog(MutableSet):
    """Pin set persisted as an append-only ``+hex``/``-hex`` line log,
    replayed on open; a torn trailing line is ignored (the pin it was
    recording simply did not happen)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._pins: set[bytes] = set()
        self._fh = None
        try:
            with open(path, "r", encoding="ascii") as fh:
                for line in fh:
                    line = line.strip()
                    if len(line) != 1 + 2 * _DIGEST_LEN:
                        continue
                    try:
                        digest = bytes.fromhex(line[1:])
                    except ValueError:
                        continue
                    if line[0] == "+":
                        self._pins.add(digest)
                    elif line[0] == "-":
                        self._pins.discard(digest)
        except OSError:
            pass

    def _append(self, op: str, digest: bytes) -> None:
        if self._fh is None:
            self._fh = open(self.path, "a", encoding="ascii")
        self._fh.write(f"{op}{digest.hex()}\n")
        self._fh.flush()

    def add(self, digest: bytes) -> None:
        if digest not in self._pins:
            self._pins.add(digest)
            self._append("+", digest)

    def discard(self, digest: bytes) -> None:
        if digest in self._pins:
            self._pins.discard(digest)
            self._append("-", digest)

    def __contains__(self, digest: object) -> bool:
        return digest in self._pins

    def __iter__(self) -> Iterator[bytes]:
        return iter(set(self._pins))

    def __len__(self) -> int:
        return len(self._pins)

    def sync(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class FileCAS(ContentAddressedStore):
    """Disk-backed CAS with the exact semantics of the in-memory store.

    The archival tier's backend: cold block frames move here and the
    sqlite index repoints at CAS keys.  All of
    :class:`ContentAddressedStore`'s logic (chunking, manifests, dedup,
    GC, verification) is inherited unchanged — only the three backing
    containers are swapped for file-backed ones, so the two stores can
    never drift semantically.

    The default chunk size is much larger than the in-memory store's:
    archival moves whole block frames (kilobytes), and on disk every
    chunk is a file — pathological chunk counts cost inodes, not bytes.
    """

    DEFAULT_DIR_CHUNK_SIZE = 1 << 20

    def __init__(self, directory: str | os.PathLike,
                 chunk_size: int = DEFAULT_DIR_CHUNK_SIZE) -> None:
        super().__init__(chunk_size=chunk_size)
        self.directory = os.fspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self._blobs = _FileMap(os.path.join(self.directory, "blobs"))
        self._manifests = _ManifestFileMap(
            os.path.join(self.directory, "manifests"))
        self._pins = _PinLog(os.path.join(self.directory, "pins.log"))

    def sync(self) -> None:
        """Make the pin log power-loss durable (blob files already are:
        each is fsynced before its atomic rename)."""
        self._pins.sync()

    def close(self) -> None:
        self._pins.close()
