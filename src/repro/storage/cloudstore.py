"""Versioned cloud object store with an auditable operation stream.

The ProvChain scenario (RQ1): users store files in a Swift/Dropbox-like
service, and the provenance layer needs to observe every create, read,
update, delete, and share.  This store is the simulated service: it keeps
versioned objects per user and emits a :class:`StoreOperation` for each
action to any registered observer — exactly the hook the *store-mediated*
capture pathway of Figure 3 consumes.

The operation stream is itself folded into a per-user
:class:`~repro.crypto.hashing.HashChain`, so even before blockchain
anchoring the store's log is tamper-evident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..clock import SimClock
from ..crypto.hashing import HashChain, hash_bytes
from ..errors import AccessDenied, ObjectNotFound

Observer = Callable[["StoreOperation"], None]

OPERATIONS = ("create", "read", "update", "delete", "share", "unshare")


@dataclass(frozen=True)
class StoreOperation:
    """One user action against the store (the capture layer's raw input)."""

    op_id: int
    op: str                     # one of OPERATIONS
    user: str
    object_key: str
    version: int
    content_hash: bytes
    timestamp: int
    details: dict = field(default_factory=dict)

    def to_canonical(self) -> dict:
        return {
            "op_id": self.op_id,
            "op": self.op,
            "user": self.user,
            "object_key": self.object_key,
            "version": self.version,
            "content_hash": self.content_hash,
            "timestamp": self.timestamp,
            "details": dict(self.details),
        }


@dataclass
class _StoredObject:
    owner: str
    versions: list[bytes] = field(default_factory=list)   # raw contents
    shared_with: set[str] = field(default_factory=set)
    deleted: bool = False


class CloudObjectStore:
    """A multi-user object store that narrates everything it does."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock or SimClock()
        self._objects: dict[str, _StoredObject] = {}
        self._observers: list[Observer] = []
        self._op_count = 0
        self.op_log: list[StoreOperation] = []
        self._user_chains: dict[str, HashChain] = {}

    # ------------------------------------------------------------------
    # Observation (capture hook)
    # ------------------------------------------------------------------
    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked synchronously for every operation."""
        self._observers.append(observer)

    def _notify(self, op: str, user: str, key: str, version: int,
                content: bytes | None, **details) -> StoreOperation:
        content_hash = hash_bytes(content) if content is not None else b""
        operation = StoreOperation(
            op_id=self._op_count,
            op=op,
            user=user,
            object_key=key,
            version=version,
            content_hash=content_hash,
            timestamp=self.clock.now(),
            details=details,
        )
        self._op_count += 1
        self.op_log.append(operation)
        chain = self._user_chains.setdefault(user, HashChain())
        chain.append(operation.to_canonical())
        for observer in self._observers:
            observer(operation)
        return operation

    # ------------------------------------------------------------------
    # Authorization
    # ------------------------------------------------------------------
    def _readable_by(self, obj: _StoredObject, user: str) -> bool:
        return user == obj.owner or user in obj.shared_with

    def _require_object(self, key: str) -> _StoredObject:
        obj = self._objects.get(key)
        if obj is None or obj.deleted:
            raise ObjectNotFound(f"no object {key!r}")
        return obj

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def create(self, user: str, key: str, content: bytes) -> StoreOperation:
        if key in self._objects and not self._objects[key].deleted:
            raise AccessDenied(f"object {key!r} already exists")
        self._objects[key] = _StoredObject(owner=user, versions=[content])
        return self._notify("create", user, key, version=0, content=content,
                            size=len(content))

    def read(self, user: str, key: str,
             version: int | None = None) -> tuple[bytes, StoreOperation]:
        obj = self._require_object(key)
        if not self._readable_by(obj, user):
            raise AccessDenied(f"{user} may not read {key!r}")
        index = len(obj.versions) - 1 if version is None else version
        if not 0 <= index < len(obj.versions):
            raise ObjectNotFound(f"{key!r} has no version {version}")
        content = obj.versions[index]
        op = self._notify("read", user, key, version=index, content=content)
        return content, op

    def update(self, user: str, key: str, content: bytes) -> StoreOperation:
        obj = self._require_object(key)
        if not self._readable_by(obj, user):
            raise AccessDenied(f"{user} may not update {key!r}")
        obj.versions.append(content)
        return self._notify("update", user, key,
                            version=len(obj.versions) - 1, content=content,
                            size=len(content))

    def delete(self, user: str, key: str) -> StoreOperation:
        obj = self._require_object(key)
        if user != obj.owner:
            raise AccessDenied(f"only the owner may delete {key!r}")
        obj.deleted = True
        return self._notify("delete", user, key,
                            version=len(obj.versions) - 1, content=None)

    def share(self, user: str, key: str, with_user: str) -> StoreOperation:
        obj = self._require_object(key)
        if user != obj.owner:
            raise AccessDenied(f"only the owner may share {key!r}")
        obj.shared_with.add(with_user)
        return self._notify("share", user, key,
                            version=len(obj.versions) - 1, content=None,
                            with_user=with_user)

    def unshare(self, user: str, key: str, with_user: str) -> StoreOperation:
        obj = self._require_object(key)
        if user != obj.owner:
            raise AccessDenied(f"only the owner may unshare {key!r}")
        obj.shared_with.discard(with_user)
        return self._notify("unshare", user, key,
                            version=len(obj.versions) - 1, content=None,
                            with_user=with_user)

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------
    def operations_for(self, user: str) -> list[StoreOperation]:
        return [op for op in self.op_log if op.user == user]

    def operations_on(self, key: str) -> list[StoreOperation]:
        return [op for op in self.op_log if op.object_key == key]

    def user_log_head(self, user: str) -> bytes:
        """Tamper-evident head of one user's operation log."""
        chain = self._user_chains.get(user)
        return chain.head if chain is not None else b""

    def verify_user_log(self, user: str) -> bool:
        """Replay a user's operations and compare chain heads."""
        expected = HashChain.replay(
            [op.to_canonical() for op in self.operations_for(user)]
        )
        return expected == self.user_log_head(user)

    @property
    def object_count(self) -> int:
        return sum(1 for o in self._objects.values() if not o.deleted)

    def keys_owned_by(self, user: str) -> Iterable[str]:
        return sorted(
            key for key, obj in self._objects.items()
            if obj.owner == user and not obj.deleted
        )
