"""``python -m repro.chaos`` — the seeded chaos smoke.

Runs each requested seed's fault plan **twice** in fresh store
directories and demands (a) every invariant holds on both runs and
(b) the two report signatures are identical — chaos results must be a
pure function of the seed or they are useless as regression evidence.
Exit status 0 only when every seed passes; this is what ``make
test-chaos`` / the ``make check`` smoke call.
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile

from .plan import seeded_plan
from .runner import ChaosRunner


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Seeded crash/network chaos runs over the 2PC layer.",
    )
    parser.add_argument("--seeds", default="11,23,47",
                        help="comma-separated plan seeds "
                             "(default: %(default)s)")
    parser.add_argument("--transfers", type=int, default=3,
                        help="cross-shard transfers per run "
                             "(default: %(default)s)")
    parser.add_argument("--kills", type=int, default=2,
                        help="coordinator kill sites per plan "
                             "(default: %(default)s)")
    parser.add_argument("--repeat", type=int, default=2,
                        help="runs per seed; signatures must all agree "
                             "(default: %(default)s)")
    parser.add_argument("--base-dir", default=None,
                        help="working directory (default: a fresh "
                             "temporary directory, removed afterwards)")
    args = parser.parse_args(argv)

    base = args.base_dir or tempfile.mkdtemp(prefix="repro-chaos-")
    cleanup = args.base_dir is None
    failures = 0
    try:
        for seed_text in args.seeds.split(","):
            seed = int(seed_text.strip())
            plan = seeded_plan(seed, transfers=args.transfers,
                               kills=args.kills)
            signatures = []
            for run_no in range(max(1, args.repeat)):
                run_dir = f"{base}/seed{seed}-run{run_no}"
                report = ChaosRunner(plan, run_dir).run()
                signatures.append(report.signature())
                status = "ok" if report.invariants_ok else "INVARIANT FAIL"
                print(
                    f"seed {seed} run {run_no}: {status} "
                    f"transfers={report.transfers_started} "
                    f"committed={report.committed} "
                    f"aborted={report.aborted} "
                    f"crashes={report.crashes} "
                    f"recovered={report.recovered_finalized}f/"
                    f"{report.recovered_aborted}a "
                    f"rounds={report.rounds} "
                    f"digest={report.proof_digest[:12]}"
                )
                if not report.invariants_ok:
                    failures += 1
                    for issue in report.invariants.get("issues", []):
                        print(f"  issue: {issue}")
                    if report.proof_digest != report.reopen_digest:
                        print("  issue: proof digest moved across a "
                              "clean reopen")
            if len(set(signatures)) != 1:
                failures += 1
                print(f"seed {seed}: NON-DETERMINISTIC — signatures "
                      f"differ across {len(signatures)} runs")
    finally:
        if cleanup:
            shutil.rmtree(base, ignore_errors=True)
    if failures:
        print(f"chaos: {failures} failure(s)")
        return 1
    print("chaos: all seeds deterministic, all invariants held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
