"""The chaos runner: drive a fault plan end to end and audit the wreck.

One :class:`ChaosRunner` owns a durable :class:`~repro.sharding.
shardchain.ShardedChain`, a :class:`~repro.network.simnet.SimNet` seeded
from the plan (with the plan's topic faults injected), a gateway node
fronting the facade, and a client node that pushes background traffic
and polls ``ops/metrics`` through the lossy fabric.  It then starts the
plan's cross-shard transfers, arming the next coordinator kill before
each one; when a kill fires the facade fail-stops
(:meth:`~repro.sharding.shardchain.ShardedChain.crash`), reopens from
disk, and a fresh coordinator recovers under a new epoch.

The run ends with :func:`check_invariants` (no leaked lock, no
half-handoff pair) and :func:`proof_digest` (every materialized handoff
record must carry a verifying :class:`~repro.sharding.query.
FederatedProof`); the digest is recomputed after a clean close/reopen
and must not move.  Everything a determinism check needs is collapsed
into :meth:`ChaosReport.signature`.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field

from ..chain import Transaction, TxKind
from ..errors import ShardError, SyncError
from ..network.node import ChainNode
from ..network.simnet import SimNet
from ..persist.segment import CrashPoint
from ..serialization import canonical_encode
from ..sharding.query import ShardedQueryEngine
from ..sharding.router import ShardRouter
from ..sharding.shardchain import ShardedChain
from ..sharding.twophase import ABORTED, COMMITTED, CrossShardCoordinator
from .plan import FaultPlan


@dataclass
class ChaosReport:
    """What one chaos run did and whether the invariants held."""

    seed: int
    transfers_started: int = 0
    committed: int = 0
    aborted: int = 0
    crashes: int = 0
    recovered_finalized: int = 0
    recovered_aborted: int = 0
    recovered_cleaned: int = 0
    locks_dropped: int = 0
    ops_polls: int = 0
    ops_failures: int = 0
    rounds: int = 0
    proof_digest: str = ""
    reopen_digest: str = ""
    invariants: dict = field(default_factory=dict)

    @property
    def invariants_ok(self) -> bool:
        return (bool(self.invariants.get("ok"))
                and self.proof_digest == self.reopen_digest)

    def signature(self) -> tuple:
        """The deterministic fingerprint: identical for identical runs
        of the same seed."""
        return (
            self.seed,
            self.transfers_started,
            self.committed,
            self.aborted,
            self.crashes,
            self.recovered_finalized,
            self.recovered_aborted,
            self.recovered_cleaned,
            self.rounds,
            self.ops_failures,
            self.proof_digest,
        )

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "transfers_started": self.transfers_started,
            "committed": self.committed,
            "aborted": self.aborted,
            "crashes": self.crashes,
            "recovered_finalized": self.recovered_finalized,
            "recovered_aborted": self.recovered_aborted,
            "recovered_cleaned": self.recovered_cleaned,
            "locks_dropped": self.locks_dropped,
            "ops_polls": self.ops_polls,
            "ops_failures": self.ops_failures,
            "rounds": self.rounds,
            "proof_digest": self.proof_digest,
            "reopen_digest": self.reopen_digest,
            "invariants": self.invariants,
        }


def check_invariants(sharded: ShardedChain, xids) -> dict:
    """Audit the settled store against the 2PC atomicity contract.

    * no leaked lock: every lease was released or reclaimed;
    * no half-handoff pair: for every transfer ever started, the
      ``{xid}:out`` / ``{xid}:in`` records exist both-or-neither.
    """
    issues: list[str] = []
    locks = sharded.health_report().get("locks_active", 0)
    if locks:
        issues.append(f"{locks} lock(s) still held after settlement")
    committed: list[str] = []
    aborted: list[str] = []
    for xid in sorted(xids):
        sides = {
            suffix: [shard.shard_id for shard in sharded.shards
                     if shard.database.contains(f"{xid}{suffix}")]
            for suffix in (":out", ":in")
        }
        n_out, n_in = len(sides[":out"]), len(sides[":in"])
        if n_out == n_in == 1:
            committed.append(xid)
        elif n_out == n_in == 0:
            aborted.append(xid)
        else:
            issues.append(
                f"half handoff for {xid}: out on {sides[':out']}, "
                f"in on {sides[':in']}"
            )
    return {
        "ok": not issues,
        "issues": issues,
        "committed": committed,
        "aborted": aborted,
    }


def proof_digest(sharded: ShardedChain, xids) -> str:
    """SHA-256 over every committed handoff record's full federated
    evidence chain (record bytes, batch root, shard header, beacon
    header), in sorted xid order.  Every proof must verify; a record
    that exists but cannot prove itself raises :class:`ShardError`."""
    engine = ShardedQueryEngine(sharded)
    digest = hashlib.sha256()
    for xid in sorted(xids):
        for suffix in (":out", ":in"):
            record_id = f"{xid}{suffix}"
            for shard in sharded.shards:
                if not shard.database.contains(record_id):
                    continue
                record = shard.database.get(record_id)
                proof = engine.federated_proof(
                    record_id, subject=str(record["subject"])
                )
                header = sharded.beacon.chain.block_at(
                    proof.beacon_height
                ).header
                if not proof.verify(record, header):
                    raise ShardError(
                        f"federated proof for {record_id} failed to "
                        "verify after chaos run",
                        reason="proof_invalid", shard_id=shard.shard_id,
                    )
                digest.update(canonical_encode({
                    "record": record,
                    "shard": proof.shard_id,
                    "batch_root": proof.anchor_bundle.batch_root,
                    "shard_block": proof.shard_header.block_hash,
                    "beacon_block": header.block_hash,
                }))
                break
    return digest.hexdigest()


class ChaosRunner:
    """Run one :class:`~repro.chaos.plan.FaultPlan` (see module doc)."""

    def __init__(self, plan: FaultPlan, base_dir: str) -> None:
        self.plan = plan
        self.base_dir = base_dir
        self.storage_dir = os.path.join(base_dir, f"store-{plan.seed}")
        self.xids: set[str] = set()
        self._ts = 0

    # -- construction ---------------------------------------------------
    def _build(self) -> ShardedChain:
        return ShardedChain(
            self.plan.n_shards,
            max_block_txs=32,
            anchor_batch_size=4,
            storage_dir=self.storage_dir,
            checkpoint_every_rounds=1,
            executor="serial",
            lock_lease_rounds=8,
        )

    def _transfer_pairs(self) -> list[tuple[str, str]]:
        """Deterministic cross-shard subject pairs, one per transfer."""
        router = ShardRouter(self.plan.n_shards)
        pairs: list[tuple[str, str]] = []
        for i in range(self.plan.transfers):
            src = f"chaos-src-{i:03d}/asset"
            src_shard = router.shard_for_subject(src)
            j = 0
            while True:
                tgt = f"chaos-tgt-{i:03d}-{j:03d}/asset"
                if router.shard_for_subject(tgt) != src_shard:
                    break
                j += 1
            pairs.append((src, tgt))
        return pairs

    # -- the run --------------------------------------------------------
    def run(self) -> ChaosReport:
        plan = self.plan
        report = ChaosReport(seed=plan.seed)
        net = SimNet(seed=plan.seed)
        for fault in plan.net_faults:
            net.inject_faults(
                fault.topic, drop=fault.drop, duplicate=fault.duplicate,
                reorder=fault.reorder, reorder_delay=fault.reorder_delay,
            )
        pairs = self._transfer_pairs()
        sharded = self._build()
        gateway = ChainNode("chaos-gw", net)
        gateway.serve_shards(sharded)
        client = ChainNode("chaos-client", net)
        coord = CrossShardCoordinator(sharded)
        self._absorb_recovery(coord, report)
        kills = list(plan.kills)
        for i, (src, tgt) in enumerate(pairs):
            # Background traffic through the faulted fabric: some of it
            # is dropped, duplicated, or arrives late — the mempools and
            # round contents still settle deterministically per seed.
            for k in range(plan.background_txs):
                client.send_shard_transaction("chaos-gw", Transaction(
                    sender="chaos-client", kind=TxKind.DATA,
                    payload={"subject": f"chaos-bg-{i:03d}/rec",
                             "key": f"bg-{i}-{k}", "value": k},
                    timestamp=self._next_ts(),
                ))
            net.run()
            if kills and coord.crash_after_wal_writes is None:
                kill = kills.pop(0)
                coord.crash_after_wal_writes = (
                    coord.wal_writes + kill.after_wal_writes
                )
            try:
                transfer = coord.begin(
                    src, tgt, {"index": i, "qty": i + 1},
                    timestamp=self._next_ts(),
                )
                report.transfers_started += 1
                self.xids.add(transfer.xid)
                for _ in range(plan.rounds_per_transfer):
                    if transfer.state in (COMMITTED, ABORTED):
                        break
                    sharded.seal_round(timestamp=self._next_ts())
                    net.run()
            except CrashPoint:
                sharded, coord = self._recover(sharded, gateway, report)
            self._poll_ops(client, report)
        # Drain: give every still-active transfer time to settle (a
        # late-armed kill may still fire here — recover and keep going).
        guard = plan.transfers * plan.rounds_per_transfer + 8
        while coord.active and guard > 0:
            guard -= 1
            try:
                sharded.seal_round(timestamp=self._next_ts())
                net.run()
            except CrashPoint:
                sharded, coord = self._recover(sharded, gateway, report)
        # Anchor every materialized record and beacon-commit the flush,
        # so federated proofs can be packaged for all of them.
        coord.crash_after_wal_writes = None
        sharded.flush_anchors()
        sharded.seal_round(timestamp=self._next_ts())
        net.run()
        report.rounds = sharded.rounds_sealed
        report.invariants = check_invariants(sharded, self.xids)
        if coord.active:
            report.invariants["ok"] = False
            report.invariants["issues"].append(
                f"{len(coord.active)} transfer(s) never settled"
            )
        committed = report.invariants["committed"]
        report.committed = len(committed)
        report.aborted = len(report.invariants["aborted"])
        report.proof_digest = proof_digest(sharded, committed)
        # Proofs must survive a *clean* restart byte-identically too.
        sharded.close()
        reopened = self._build()
        try:
            report.reopen_digest = proof_digest(reopened, committed)
        finally:
            reopened.close()
        return report

    # -- helpers --------------------------------------------------------
    def _next_ts(self) -> int:
        self._ts += 1
        return self._ts

    def _recover(self, crashed: ShardedChain, gateway: ChainNode,
                 report: ChaosReport) -> tuple[ShardedChain,
                                               CrossShardCoordinator]:
        """Fail-stop + reopen + recover under a fresh coordinator."""
        report.crashes += 1
        crashed.crash()
        sharded = self._build()
        gateway.serve_shards(sharded)
        coord = CrossShardCoordinator(sharded)
        self._absorb_recovery(coord, report)
        return sharded, coord

    def _absorb_recovery(self, coord: CrossShardCoordinator,
                         report: ChaosReport) -> None:
        summary = coord.last_recovery or {}
        for key, attr in (("finalized", "recovered_finalized"),
                          ("aborted", "recovered_aborted"),
                          ("cleaned", "recovered_cleaned")):
            xids = summary.get(key, [])
            setattr(report, attr, getattr(report, attr) + len(xids))
            # A transfer killed inside begin() never returned its xid to
            # us; the recovery summary is where we learn it existed.
            self.xids.update(xids)
        report.locks_dropped += int(summary.get("locks_dropped", 0))

    def _poll_ops(self, client: ChainNode, report: ChaosReport) -> None:
        """Exercise the shared retry/backoff loop through the drops."""
        report.ops_polls += 1
        try:
            client.request_ops("chaos-gw")
        except SyncError:
            report.ops_failures += 1
