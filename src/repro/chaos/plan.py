"""Seeded fault plans: one integer seed → a full chaos schedule.

A plan is plain data (frozen dataclasses, canonical-encodable via
:meth:`FaultPlan.describe`) so a failing chaos run can be reproduced
from its printed plan alone.  :func:`seeded_plan` derives every knob —
drop/duplicate/reorder rates per topic and the coordinator kill sites —
from ``random.Random(seed)``, and the same seed also drives the
:class:`~repro.network.simnet.SimNet` RNG inside the runner, so the
whole run is a pure function of the seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# Upper bound on WAL writes a 2-shard transfer makes on its happy path
# (begin, 2 lock legs, committing, 2 commit legs, finalizing,
# finalized) — kill sites beyond it let a transfer complete untouched,
# which is a useful schedule too (crash between transfers).
WAL_WRITES_PER_TRANSFER = 8


@dataclass(frozen=True)
class NetFault:
    """Fault rates for one SimNet topic, applied for the whole run."""

    topic: str
    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    reorder_delay: int = 50

    def as_dict(self) -> dict:
        return {
            "topic": self.topic,
            "drop": self.drop,
            "duplicate": self.duplicate,
            "reorder": self.reorder,
            "reorder_delay": self.reorder_delay,
        }


@dataclass(frozen=True)
class CoordinatorKill:
    """Fail-stop the coordinator ``after_wal_writes`` more WAL writes.

    Armed relative to the coordinator's current ``wal_writes`` counter
    right before a transfer begins, so ``after_wal_writes=1`` kills at
    the ``begin`` boundary, ``2``–``3`` inside the lock legs, ``4`` at
    ``committing``, and so on (see ``WAL_STEPS`` in
    :mod:`repro.sharding.twophase`)."""

    after_wal_writes: int

    def as_dict(self) -> dict:
        return {"after_wal_writes": self.after_wal_writes}


@dataclass(frozen=True)
class FaultPlan:
    """A complete, reproducible chaos schedule (see module docstring)."""

    seed: int
    net_faults: tuple[NetFault, ...] = ()
    kills: tuple[CoordinatorKill, ...] = ()
    transfers: int = 3
    rounds_per_transfer: int = 6
    background_txs: int = 4
    n_shards: int = 4

    def describe(self) -> dict:
        """Canonical-encodable summary (printed by the CLI)."""
        return {
            "seed": self.seed,
            "net_faults": [f.as_dict() for f in self.net_faults],
            "kills": [k.as_dict() for k in self.kills],
            "transfers": self.transfers,
            "rounds_per_transfer": self.rounds_per_transfer,
            "background_txs": self.background_txs,
            "n_shards": self.n_shards,
        }


def seeded_plan(seed: int, transfers: int = 3, kills: int = 2) -> FaultPlan:
    """Derive a full plan from one seed.

    The client-facing ``shard_tx`` topic gets lossy/duplicating/
    reordering treatment (shaking gateway ingest), ``ops/metrics`` gets
    drops (shaking the :mod:`repro.net_retry` backoff loop), and
    ``kills`` coordinator kill sites are sampled across the WAL step
    range so repeated seeds cover the whole crash matrix."""
    rng = random.Random(seed)
    net_faults = (
        NetFault(
            "shard_tx",
            drop=round(rng.uniform(0.05, 0.25), 3),
            duplicate=round(rng.uniform(0.0, 0.2), 3),
            reorder=round(rng.uniform(0.0, 0.3), 3),
            reorder_delay=rng.randrange(20, 80),
        ),
        NetFault("ops/metrics", drop=round(rng.uniform(0.1, 0.4), 3)),
    )
    kill_sites = tuple(
        CoordinatorKill(rng.randrange(1, WAL_WRITES_PER_TRANSFER + 2))
        for _ in range(max(0, kills))
    )
    return FaultPlan(
        seed=seed,
        net_faults=net_faults,
        kills=kill_sites,
        transfers=transfers,
    )
