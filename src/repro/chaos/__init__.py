"""Seeded chaos harness: crash + network fault injection for the 2PC layer.

Design note
-----------

The crash-safety argument in :mod:`repro.sharding.twophase` (durable
transfer WAL, presumed-abort recovery, lock leases, epoch fencing) is
only as good as the fault schedule it has been tested under.  This
package composes the library's existing fault hooks into **seeded,
schedulable fault plans** and runs them end to end:

* coordinator death at persisted WAL step boundaries — the
  ``crash_after_wal_writes`` / ``crash_at_step`` hooks raise
  :class:`~repro.persist.segment.CrashPoint` immediately *after* a WAL
  write commits, the same boundary a real process kill exposes (and the
  same idiom as ``SegmentLog.fail_after_bytes`` and the sync client's
  ``crash_after_chunks``);
* simulated-network faults — :meth:`~repro.network.simnet.SimNet.
  inject_faults` drop / duplicate / reorder on selected topics, sampled
  from the net's seeded RNG, shaking the gateway ingest path and the
  :mod:`repro.net_retry` backoff loop while transfers are in flight.

Fault-plan schema (:class:`~repro.chaos.plan.FaultPlan`)
~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~

``FaultPlan(seed, net_faults, kills, transfers, ...)`` where

* ``seed`` — drives the SimNet RNG, the plan generator, and nothing
  else; two runs of the same plan are bit-for-bit comparable.
* ``net_faults`` — tuple of :class:`~repro.chaos.plan.NetFault`
  ``(topic, drop, duplicate, reorder, reorder_delay)`` applied to the
  simulated fabric for the whole run.
* ``kills`` — tuple of :class:`~repro.chaos.plan.CoordinatorKill`
  ``(after_wal_writes,)`` consumed in order: before each transfer the
  runner arms the next kill relative to the coordinator's current WAL
  write counter; when it fires, the facade fail-stops
  (:meth:`~repro.sharding.shardchain.ShardedChain.crash`), reopens, and
  a fresh coordinator (next epoch) runs
  :meth:`~repro.sharding.twophase.CrossShardCoordinator.recover`.
* ``transfers`` / ``rounds_per_transfer`` / ``n_shards`` — workload
  shape (cross-shard handoffs driven alongside faulty background
  traffic).

:func:`~repro.chaos.plan.seeded_plan` derives a whole plan from one
integer seed.

Invariants checked (:func:`~repro.chaos.runner.check_invariants`)
~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~~

After every run — including after each crash/recovery cycle — the
runner asserts, over every transfer the harness ever started:

1. **no permanently locked subject** — the facade lock table is empty
   once all transfers settle (leases + recovery sweeps freed every
   crash-orphaned lock);
2. **no half-handoff record pair** — for each xid, the ``{xid}:out`` /
   ``{xid}:in`` records either both exist (committed) or neither does
   (aborted); one without the other is the atomicity violation the
   paper's provenance guarantees forbid;
3. **proofs survive recovery byte-identically** — every materialized
   handoff record yields a verifying
   :class:`~repro.sharding.query.FederatedProof`, and the digest over
   all of them is identical when the store is closed and reopened
   cleanly;
4. **determinism** — the report signature (commits, aborts, crashes,
   recovery resolutions, proof digest) is identical across repeated
   runs of the same seed (asserted by ``python -m repro.chaos`` and the
   ``make check`` smoke).
"""

from .plan import CoordinatorKill, FaultPlan, NetFault, seeded_plan
from .runner import ChaosReport, ChaosRunner, check_invariants, proof_digest

__all__ = [
    "CoordinatorKill",
    "FaultPlan",
    "NetFault",
    "seeded_plan",
    "ChaosReport",
    "ChaosRunner",
    "check_invariants",
    "proof_digest",
]
