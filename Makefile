# Development entry points.  PYTHONPATH is set so the src layout works
# without an editable install.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench-hotpath

# Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast CI-friendly run of the hot-path benchmark (small sizes).
bench-smoke:
	$(PYTHON) benchmarks/bench_perf_hotpath.py --smoke

# Full hot-path benchmark; writes BENCH_perf_hotpath.json and asserts
# the acceptance floors (verify >= 5x, reorg >= 10x).
bench-hotpath:
	$(PYTHON) benchmarks/bench_perf_hotpath.py
