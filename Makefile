# Development entry points.  PYTHONPATH is set so the src layout works
# without an editable install.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-persist test-sync test-exec test-obs test-chaos \
        test-gateway bench-smoke bench-hotpath bench-shard bench-persist \
        bench-ingest bench-sync bench-exec bench-obs bench-gateway \
        bench-all check

# Tier-1 verification: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Durable-storage suite only: codec, segment log, crash recovery,
# backend equivalence, reorg truncation, sharded restarts.
test-persist:
	$(PYTHON) -m pytest tests/test_persist.py tests/test_storage.py -q

# Snapshot-sync suite only: chunk/manifest codec, verified catch-up,
# byzantine rejection matrix, crash-resume, faulty-network convergence.
test-sync:
	$(PYTHON) -m pytest tests/test_sync.py tests/test_network.py -q

# Execution-engine + tiering suite only: executor parity, worker-death
# fallback, fork guards, compaction/archival crash points, compression.
test-exec:
	$(PYTHON) -m pytest tests/test_exec.py tests/test_tiering.py -q

# Observability suite only: metrics registry, span tracing (incl.
# cross-process propagation + worker-kill fallback), accessor
# regressions, ops/metrics over SimNet.
test-obs:
	$(PYTHON) -m pytest tests/test_obs.py -q

# Gateway suite only: framed wire codec, handshake, wire backpressure
# (RETRY_AFTER + pause), byte-identical commitments vs in-process,
# disconnect handling, graceful drain under load.
test-gateway:
	$(PYTHON) -m pytest tests/test_gateway.py -q

# Chaos suite: the 2PC crash matrix (coordinator killed at every WAL
# step boundary), lock-lease/fencing/quarantine coverage, plus the
# seeded chaos harness run twice per seed — same seed must produce the
# same report signature, or the run fails.
test-chaos:
	$(PYTHON) -m pytest tests/test_chaos.py -q
	$(PYTHON) -m repro.chaos --seeds 11,23,47

# Fast CI-friendly run of the hot-path benchmark (small sizes).
bench-smoke:
	$(PYTHON) benchmarks/bench_perf_hotpath.py --smoke

# Full hot-path benchmark; writes BENCH_perf_hotpath.json and asserts
# the acceptance floors (verify >= 5x, reorg >= 10x).
bench-hotpath:
	$(PYTHON) benchmarks/bench_perf_hotpath.py

# Full shard-scaling benchmark; writes BENCH_shard_scaling.json and
# asserts the acceptance floor (>= 2.5x aggregate ingest at 4 shards).
bench-shard:
	$(PYTHON) benchmarks/bench_shard_scaling.py

# Full persistence benchmark; writes BENCH_persist.json and asserts the
# acceptance floor (reopen-from-snapshot >= 5x vs genesis replay).
bench-persist:
	$(PYTHON) benchmarks/bench_persist.py

# Full ingestion benchmark; writes BENCH_ingest.json and asserts the
# acceptance floors (pipelined sustained ingest >= 2x synchronous,
# record group-commit >= 2x per-append).
bench-ingest:
	$(PYTHON) benchmarks/bench_ingest.py

# Full snapshot-sync benchmark; writes BENCH_sync.json and asserts the
# acceptance floor (replica catch-up >= 5x vs genesis replay at 2k
# blocks).
bench-sync:
	$(PYTHON) benchmarks/bench_sync.py

# Full execution-engine benchmark; writes BENCH_exec.json and asserts
# the acceptance floors (process sealing >= min(2.0, 0.9 x this
# machine's raw multiprocessing budget); tiering reclaim >= 30%).
bench-exec:
	$(PYTHON) benchmarks/bench_exec.py

# Full observability-overhead benchmark; writes BENCH_obs.json and
# asserts the acceptance floor (instrumented hot-path submit throughput
# >= 0.95x uninstrumented — telemetry overhead <= 5%).
bench-obs:
	$(PYTHON) benchmarks/bench_obs.py

# Full gateway benchmark; writes BENCH_gateway.json and asserts the
# acceptance floors (1000 socket clients >= 0.5x in-process throughput,
# submit ack p99 within 3x fair share, zero loss under a QueueFull
# storm).
bench-gateway:
	$(PYTHON) benchmarks/bench_gateway.py

# Every BENCH_*.json producer at full size, floors asserted — a perf
# regression anywhere fails this target.
bench-all: bench-hotpath bench-shard bench-persist bench-ingest \
           bench-sync bench-exec bench-obs bench-gateway

# CI-style verification in one command: tier-1 tests, the seeded chaos
# smoke (3 fault plans, each run twice — deterministic per seed), plus a
# smoke pass of each perf benchmark (same code paths, small sizes, no
# floors).
check: test
	$(PYTHON) -m repro.chaos --seeds 11,23,47
	$(PYTHON) benchmarks/bench_perf_hotpath.py --smoke
	$(PYTHON) benchmarks/bench_shard_scaling.py --smoke
	$(PYTHON) benchmarks/bench_persist.py --smoke
	$(PYTHON) benchmarks/bench_ingest.py --smoke
	$(PYTHON) benchmarks/bench_sync.py --smoke
	$(PYTHON) benchmarks/bench_exec.py --smoke
	$(PYTHON) benchmarks/bench_obs.py --smoke
	$(PYTHON) benchmarks/bench_gateway.py --smoke
